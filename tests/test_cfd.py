"""CFDs: construction, semantics, triviality, attribute surgery."""

import pytest

from repro.core.cfd import CFD
from repro.core.fd import FD
from repro.core.values import Const, SPECIAL, WILDCARD


class TestConstruction:
    def test_raw_values_coerced_to_constants(self):
        phi = CFD("R", {"A": "44"}, {"B": "ldn"})
        assert phi.lhs == (("A", Const("44")),)
        assert phi.rhs == (("B", Const("ldn")),)

    def test_underscore_string_is_wildcard(self):
        phi = CFD("R", {"A": "_"}, {"B": "_"})
        assert phi.lhs[0][1] == WILDCARD

    def test_explicit_const_underscore_possible(self):
        phi = CFD("R", {"A": Const("_")}, {"B": "_"})
        assert phi.lhs[0][1] == Const("_")

    def test_attributes_sorted(self):
        phi = CFD("R", {"B": "_", "A": "_"}, {"C": "_"})
        assert phi.lhs_attrs == ("A", "B")

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            CFD("R", {"A": "_"}, {})

    def test_empty_lhs_allowed(self):
        phi = CFD("R", {}, {"A": "a"})
        assert phi.lhs == ()

    def test_special_var_only_in_equality_form(self):
        with pytest.raises(ValueError):
            CFD("R", {"A": SPECIAL, "B": "_"}, {"C": SPECIAL})
        with pytest.raises(ValueError):
            CFD("R", {"A": "_"}, {"C": SPECIAL})

    def test_from_fd(self):
        phi = CFD.from_fd(FD("R", ("A",), ("B", "C")))
        assert phi.lhs == (("A", WILDCARD),)
        assert dict(phi.rhs) == {"B": WILDCARD, "C": WILDCARD}

    def test_equality_constructor(self):
        phi = CFD.equality("R", "A", "B")
        assert phi.is_equality
        assert phi.lhs_attrs == ("A",)
        assert phi.rhs_attrs == ("B",)

    def test_constant_constructor(self):
        phi = CFD.constant("R", "A", "a")
        assert phi.is_constant_cfd()
        assert phi.rhs_entry == Const("a")


class TestAccessors:
    def test_rhs_attr_requires_normal_form(self):
        general = CFD("R", {"A": "_"}, {"B": "_", "C": "_"})
        with pytest.raises(ValueError):
            general.rhs_attr

    def test_embedded_fd(self):
        phi = CFD("R", {"A": "1", "B": "_"}, {"C": "c"})
        assert phi.embedded_fd() == FD("R", ("A", "B"), ("C",))

    def test_lhs_entry(self):
        phi = CFD("R", {"A": "1"}, {"B": "_"})
        assert phi.lhs_entry("A") == Const("1")
        with pytest.raises(KeyError):
            phi.lhs_entry("Z")


class TestNormalization:
    def test_normalize_splits_rhs(self):
        general = CFD("R", {"A": "1"}, {"B": "b", "C": "_"})
        parts = general.normalize()
        assert len(parts) == 2
        assert {p.rhs_attr for p in parts} == {"B", "C"}
        assert all(p.lhs == general.lhs for p in parts)

    def test_normal_form_unchanged(self):
        phi = CFD("R", {"A": "_"}, {"B": "_"})
        assert phi.normalize() == [phi]


class TestTriviality:
    def test_rhs_not_in_lhs_is_nontrivial(self):
        assert not CFD("R", {"A": "_"}, {"B": "_"}).is_trivial()

    def test_plain_self_dependency_trivial(self):
        # (A -> A, (_ || _)): eta1 == eta2.
        assert CFD("R", {"A": "_"}, {"A": "_"}).is_trivial()

    def test_const_to_same_const_trivial(self):
        assert CFD("R", {"A": "a"}, {"A": "a"}).is_trivial()

    def test_const_lhs_wildcard_rhs_trivial(self):
        # (A -> A, (a || _)).
        assert CFD("R", {"A": "a"}, {"A": "_"}).is_trivial()

    def test_wildcard_lhs_const_rhs_not_trivial(self):
        # (A -> A, (_ || a)) forces a constant — the paper's point (b).
        assert not CFD("R", {"A": "_"}, {"A": "a"}).is_trivial()

    def test_const_premise_other_const_conclusion_not_trivial(self):
        # (A -> A, (a || b)) denies the pattern A = a.
        assert not CFD("R", {"A": "a"}, {"A": "b"}).is_trivial()

    def test_equality_trivial_only_when_same_attribute(self):
        assert CFD.equality("R", "A", "A").is_trivial()
        assert not CFD.equality("R", "A", "B").is_trivial()


class TestSimplified:
    def test_self_lhs_wildcard_const_rhs_drops_lhs_occurrence(self):
        phi = CFD("R", {"A": "_", "X": "x1"}, {"A": "a"})
        simplified = phi.simplified()
        assert simplified.lhs_attrs == ("X",)
        assert simplified.rhs_entry == Const("a")

    def test_denial_form_kept(self):
        phi = CFD("R", {"A": "c", "X": "_"}, {"A": "a"})
        assert phi.simplified() == phi

    def test_plain_cfd_unchanged(self):
        phi = CFD("R", {"X": "_"}, {"A": "a"})
        assert phi.simplified() == phi


class TestSatisfaction:
    def test_fd_semantics_pair_violation(self):
        phi = CFD("R", {"A": "_"}, {"B": "_"})
        rows = [{"A": 1, "B": 1}, {"A": 1, "B": 2}]
        assert not phi.holds_on(rows)
        assert phi.holds_on(rows[:1])

    def test_pattern_restricts_scope(self):
        phi = CFD("R", {"A": "1", "B": "_"}, {"C": "_"})
        rows = [
            {"A": "2", "B": "x", "C": "u"},
            {"A": "2", "B": "x", "C": "v"},  # outside the pattern: ignored
        ]
        assert phi.holds_on(rows)

    def test_constant_rhs_single_tuple_semantics(self):
        phi = CFD("R", {"A": "1"}, {"B": "b"})
        assert not phi.holds_on([{"A": "1", "B": "c"}])
        assert phi.holds_on([{"A": "2", "B": "c"}])

    def test_equality_form_semantics(self):
        phi = CFD.equality("R", "A", "B")
        assert phi.holds_on([{"A": 1, "B": 1}])
        assert not phi.holds_on([{"A": 1, "B": 2}])

    def test_violations_yield_witnesses(self):
        phi = CFD("R", {"A": "_"}, {"B": "_"})
        rows = [{"A": 1, "B": 1}, {"A": 1, "B": 2}]
        witnesses = list(phi.violations(rows))
        assert len(witnesses) == 1
        assert len(witnesses[0]) == 2

    def test_single_tuple_violation_witness(self):
        phi = CFD("R", {"A": "1"}, {"B": "b"})
        witnesses = list(phi.violations([{"A": "1", "B": "c"}]))
        assert witnesses == [({"A": "1", "B": "c"},)]

    def test_example_2_2_modified_phi4_violated(self, customer_instance, customer_view):
        """Removing CC from phi4 breaks it on the Figure 1 view.

        (The paper writes the city as "LDN" in Figure 1 but "ldn" in the
        CFDs; we follow the Figure 1 casing for instance-level checks.)
        """
        view_rows = customer_view.evaluate(customer_instance).rows
        modified = CFD("R", {"AC": "20"}, {"city": "LDN"})
        assert not modified.holds_on(view_rows)
        phi4 = CFD("R", {"CC": "44", "AC": "20"}, {"city": "LDN"})
        assert phi4.holds_on(view_rows)


class TestSurgery:
    def test_rename(self):
        phi = CFD("R", {"A": "1"}, {"B": "_"})
        renamed = phi.rename({"A": "t0.A", "B": "t0.B"}, relation="V")
        assert renamed.relation == "V"
        assert renamed.lhs_attrs == ("t0.A",)

    def test_rename_collision_rejected(self):
        phi = CFD("R", {"A": "1", "B": "_"}, {"C": "_"})
        with pytest.raises(ValueError):
            phi.rename({"A": "B"})

    def test_substitute_simple(self):
        phi = CFD("R", {"A": "1"}, {"B": "_"})
        assert phi.substitute("A", "Z").lhs_attrs == ("Z",)

    def test_substitute_merges_with_meet(self):
        phi = CFD("R", {"A": "1", "B": "_"}, {"C": "_"})
        merged = phi.substitute("B", "A")
        assert merged.lhs == (("A", Const("1")),)

    def test_substitute_conflicting_constants_kills_cfd(self):
        phi = CFD("R", {"A": "1", "B": "2"}, {"C": "_"})
        assert phi.substitute("B", "A") is None

    def test_drop_lhs_attribute(self):
        phi = CFD("R", {"A": "1", "B": "_"}, {"C": "_"})
        assert phi.drop_lhs_attribute("A").lhs_attrs == ("B",)

    def test_with_relation(self):
        phi = CFD("R", {"A": "_"}, {"B": "_"})
        assert phi.with_relation("V").relation == "V"
