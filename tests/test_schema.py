"""Relation and database schemas."""

import pytest

from repro.core.domains import BOOL, STRING
from repro.core.schema import Attribute, DatabaseSchema, RelationSchema


class TestRelationSchema:
    def test_string_attributes_coerced(self):
        r = RelationSchema("R", ["A", "B"])
        assert r.attribute_names == ("A", "B")
        assert r.domain_of("A") is STRING

    def test_duplicate_attribute_rejected(self):
        with pytest.raises(ValueError):
            RelationSchema("R", ["A", "A"])

    def test_arity_and_contains(self):
        r = RelationSchema("R", ["A", "B", "C"])
        assert r.arity == 3
        assert "B" in r
        assert "Z" not in r

    def test_attribute_lookup_error_names_schema(self):
        r = RelationSchema("R", ["A"])
        with pytest.raises(KeyError, match="R"):
            r.attribute("Z")

    def test_index_of(self):
        r = RelationSchema("R", ["A", "B"])
        assert r.index_of("B") == 1
        with pytest.raises(KeyError):
            r.index_of("Z")

    def test_finite_domain_detection(self):
        plain = RelationSchema("R", ["A"])
        mixed = RelationSchema("S", [Attribute("A", BOOL), Attribute("B")])
        assert not plain.has_finite_domain_attribute()
        assert mixed.has_finite_domain_attribute()

    def test_renamed_produces_prefixed_names(self):
        r = RelationSchema("R", ["A", "B"])
        renamed, mapping = r.renamed("R1", "t0.")
        assert renamed.attribute_names == ("t0.A", "t0.B")
        assert mapping == {"A": "t0.A", "B": "t0.B"}

    def test_renamed_preserves_domains(self):
        r = RelationSchema("R", [Attribute("A", BOOL)])
        renamed, _ = r.renamed("R1", "x.")
        assert renamed.domain_of("x.A") is BOOL

    def test_project_orders_by_request(self):
        r = RelationSchema("R", ["A", "B", "C"])
        p = r.project(["C", "A"])
        assert p.attribute_names == ("C", "A")

    def test_equality_and_hash(self):
        assert RelationSchema("R", ["A"]) == RelationSchema("R", ["A"])
        assert hash(RelationSchema("R", ["A"])) == hash(RelationSchema("R", ["A"]))
        assert RelationSchema("R", ["A"]) != RelationSchema("R", ["B"])


class TestDatabaseSchema:
    def test_lookup(self):
        db = DatabaseSchema([RelationSchema("R", ["A"]), RelationSchema("S", ["B"])])
        assert db.relation("R").attribute_names == ("A",)
        assert len(db) == 2
        assert "S" in db

    def test_duplicate_relation_rejected(self):
        with pytest.raises(ValueError):
            DatabaseSchema([RelationSchema("R", ["A"]), RelationSchema("R", ["B"])])

    def test_missing_relation_error(self):
        db = DatabaseSchema([RelationSchema("R", ["A"])])
        with pytest.raises(KeyError, match="R"):
            db.relation("Z")

    def test_finite_domain_detection(self):
        db = DatabaseSchema(
            [
                RelationSchema("R", ["A"]),
                RelationSchema("S", [Attribute("B", BOOL)]),
            ]
        )
        assert db.has_finite_domain_attribute()
