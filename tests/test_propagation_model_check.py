"""Cross-validation of the propagation checker against brute force.

``Sigma |=_V phi`` quantifies over ALL source instances; on a tiny
universe (two relations of <= 2 attributes, values from {0, 1}, at most
two rows each) the quantifier can be brute-forced.  A brute-force
counterexample refutes propagation, so on every random workload:

    brute-force finds a violating D  ==>  propagates() returns False
    propagates() returns True        ==>  no violating D exists

(the symbolic checker may legitimately say False when the only
counterexamples need values outside the tiny universe — that direction is
not asserted).  This mirrors the implication cross-check and exercises
selection, projection, product and union paths of the checker.
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    CFD,
    DatabaseInstance,
    DatabaseSchema,
    RelationSchema,
    SPCUView,
    SPCView,
    propagates,
)
from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom

VALUES = ("0", "1")
SCHEMA = DatabaseSchema(
    [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
)


def _random_view(rng: random.Random) -> SPCView:
    atoms = [RelationAtom("R", {"A": "A", "B": "B"})]
    attrs = ["A", "B"]
    if rng.random() < 0.5:
        atoms.append(RelationAtom("S", {"C": "C", "D": "D"}))
        attrs += ["C", "D"]
    selection = []
    if rng.random() < 0.5:
        attr = rng.choice(attrs)
        selection.append(ConstEq(attr, rng.choice(VALUES)))
    if len(atoms) == 2 and rng.random() < 0.5:
        selection.append(AttrEq(rng.choice(["A", "B"]), rng.choice(["C", "D"])))
    projection = sorted(rng.sample(attrs, rng.randint(1, len(attrs))))
    return SPCView("V", SCHEMA, atoms, selection, projection)


def _random_cfd(rng: random.Random, relation: str, attrs) -> CFD:
    attrs = list(attrs)
    rng.shuffle(attrs)
    lhs_attr, rhs_attr = attrs[0], attrs[1]

    def entry():
        return rng.choice(["_", rng.choice(VALUES)])

    return CFD(relation, {lhs_attr: entry()}, {rhs_attr: entry()})


def _all_relations(attrs, max_rows):
    """All instances of one relation with <= max_rows rows over VALUES."""
    rows = [
        dict(zip(attrs, combo))
        for combo in itertools.product(VALUES, repeat=len(attrs))
    ]
    instances = [[]]
    instances += [[r] for r in rows]
    if max_rows >= 2:
        instances += [
            [rows[i], rows[j]]
            for i in range(len(rows))
            for j in range(i + 1, len(rows))
        ]
    return instances


def _brute_force_counterexample(sigma, view, phi) -> bool:
    r_instances = _all_relations(["A", "B"], 2)
    needs_s = any(atom.source == "S" for atom in view.atoms)
    s_instances = _all_relations(["C", "D"], 2) if needs_s else [[]]
    for r_rows in r_instances:
        for s_rows in s_instances:
            db = DatabaseInstance(SCHEMA, {"R": r_rows, "S": s_rows})
            if not db.satisfies_all(sigma):
                continue
            if not view.evaluate(db).satisfies(phi):
                return True
    return False


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=40, deadline=None)
def test_propagation_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    view = _random_view(rng)
    sigma = [
        _random_cfd(rng, "R", ["A", "B"])
        for _ in range(rng.randint(0, 2))
    ]
    if any(atom.source == "S" for atom in view.atoms) and rng.random() < 0.5:
        sigma.append(_random_cfd(rng, "S", ["C", "D"]))
    if len(view.projection) < 2:
        return  # need two attributes for a nontrivial target
    lhs_attr, rhs_attr = rng.sample(view.projection, 2)

    def entry():
        return rng.choice(["_", rng.choice(VALUES)])

    phi = CFD("V", {lhs_attr: entry()}, {rhs_attr: entry()})

    symbolic = propagates(sigma, view, phi)
    brute = _brute_force_counterexample(sigma, view, phi)
    if brute:
        assert not symbolic, (
            f"seed={seed}: brute force refutes propagation of {phi} via "
            f"{view} under {sigma}, but the checker claims it"
        )


@given(st.integers(min_value=0, max_value=1_000_000))
@settings(max_examples=20, deadline=None)
def test_spcu_propagation_agrees_with_brute_force(seed):
    rng = random.Random(seed)
    branch1 = _random_view(rng)
    branch2 = SPCView(
        "V",
        SCHEMA,
        [RelationAtom("R", {"A": "A", "B": "B"})],
        [ConstEq(rng.choice(["A", "B"]), rng.choice(VALUES))],
        branch1.projection if set(branch1.projection) <= {"A", "B"} else None,
    )
    if sorted(branch2.projection) != sorted(branch1.projection):
        return
    view = SPCUView("V", [branch1, branch2])
    sigma = [_random_cfd(rng, "R", ["A", "B"])]
    if len(view.projection) < 2:
        return
    lhs_attr, rhs_attr = rng.sample(list(view.projection), 2)
    phi = CFD("V", {lhs_attr: "_"}, {rhs_attr: "_"})

    symbolic = propagates(sigma, view, phi)

    def brute():
        for r_rows in _all_relations(["A", "B"], 2):
            for s_rows in (
                _all_relations(["C", "D"], 1)
                if any(a.source == "S" for a in branch1.atoms)
                else [[]]
            ):
                db = DatabaseInstance(SCHEMA, {"R": r_rows, "S": s_rows})
                if not db.satisfies_all(sigma):
                    continue
                if not view.evaluate(db).satisfies(phi):
                    return True
        return False

    if brute():
        assert not symbolic, f"seed={seed}: SPCU checker overclaims"
