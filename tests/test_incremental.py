"""Incremental propagation: provenance keys, delta invalidation, sharding.

The PR 4 obligations (see ``docs/incremental.md``):

1. *Delta-vs-cold equivalence* — applying a Sigma diff through
   ``PropagationService.delta_sigma`` answers every subsequent query
   exactly like a cold service built directly on the updated Sigma
   (differentially, for checks, covers and emptiness).
2. *Per-relation invalidation precision* — editing CFDs on one relation
   leaves cache lines of views over other relations warm, in the
   in-memory LRU tiers (same engine) and across real processes through
   the sqlite store (persistent hits > 0, chases = 0), while queries on
   the edited relation recompute (no stale reuse).
3. *Shard-count invariance* — ``shards > 1`` (and ``shard_index``
   scale-out) produce verdicts and covers identical to ``shards = 1``,
   with the per-shard tableau counters merged back into engine stats.

The CI ``shards`` matrix runs this module with ``REPRO_SHARDS=1`` and
``=4``, which parameterizes the engines built by :func:`_engine`.
"""

from __future__ import annotations

import os

import pytest

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.algebra.spcu import SPCUView
from repro.api import (
    CheckRequest,
    CoverRequest,
    EmptinessRequest,
    PropagationService,
    UpdateSigmaRequest,
    Workspace,
)
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.propagation.engine import (
    PropagationEngine,
    combine_verdicts,
    plan_pairs,
    provenance_fingerprint,
    relation_fingerprints,
    scoped_sigma,
    touched_relations,
)

#: The CI shards matrix sets REPRO_SHARDS=4 on one leg; default 1.
SHARDS = int(os.environ.get("REPRO_SHARDS", "1") or "1")

ATTRS = ["A", "B", "C", "D"]


def _engine(**kwargs) -> PropagationEngine:
    kwargs.setdefault("shards", SHARDS)
    return PropagationEngine(**kwargs)


def _schema(relations=("R1", "R2", "R3")) -> DatabaseSchema:
    return DatabaseSchema([RelationSchema(name, ATTRS) for name in relations])


def _projection_view(relation: str, schema: DatabaseSchema) -> SPCView:
    return SPCView(
        f"V{relation}",
        schema,
        [RelationAtom(relation, {a: a for a in ATTRS})],
        projection=["A", "C", "D"],
    )


def _union_view(schema: DatabaseSchema, name: str = "U") -> SPCUView:
    branches = [
        SPCView(
            name,
            schema,
            [RelationAtom(rel, {a: a for a in ATTRS})],
            projection=["A", "B", "CC"],
            constants={"CC": tag},
        )
        for rel, tag in (("R1", "1"), ("R2", "2"), ("R3", "3"))
    ]
    return SPCUView(name, branches)


def _sigma(schema: DatabaseSchema) -> list:
    deps = []
    for rel in schema.relations:
        deps.append(FD(rel, ("A",), ("B",)))
        deps.append(FD(rel, ("B",), ("C",)))
        # A constant-pattern CFD per relation defeats the closure fast
        # path, so warm/cold distinctions show up as chase counts.
        deps.append(CFD(rel, {"A": "1"}, {"D": "9"}))
    return deps


# ----------------------------------------------------------------------
# Provenance keys (unit level).
# ----------------------------------------------------------------------


def test_touched_relations_cover_every_branch_atom():
    schema = _schema()
    assert touched_relations(_projection_view("R2", schema)) == {"R2"}
    assert touched_relations(_union_view(schema)) == {"R1", "R2", "R3"}


def test_relation_fingerprints_are_per_relation_and_stable():
    from repro.propagation.check import _as_cfds

    sigma = _as_cfds(_sigma(_schema()))
    fps = relation_fingerprints(sigma)
    assert set(fps) == {"R1", "R2", "R3"}
    # Editing R1 moves only R1's fingerprint.
    edited = [phi for phi in sigma if phi.relation != "R1"] + _as_cfds(
        [FD("R1", ("A",), ("D",))]
    )
    fps2 = relation_fingerprints(edited)
    assert fps2["R1"] != fps["R1"]
    assert fps2["R2"] == fps["R2"] and fps2["R3"] == fps["R3"]
    # ... and therefore only the provenance of views touching R1.
    t1, t2 = frozenset({"R1"}), frozenset({"R2"})
    assert provenance_fingerprint(
        scoped_sigma(sigma, t1), t1
    ) != provenance_fingerprint(scoped_sigma(edited, t1), t1)
    assert provenance_fingerprint(
        scoped_sigma(sigma, t2), t2
    ) == provenance_fingerprint(scoped_sigma(edited, t2), t2)


def test_provenance_distinguishes_empty_from_untouched():
    """No CFDs on a touched relation is a key state of its own."""
    fd = FD("R1", ("A",), ("B",))
    from repro.propagation.check import _as_cfds

    cfds = _as_cfds([fd])
    only_r1 = frozenset({"R1"})
    both = frozenset({"R1", "R2"})
    assert provenance_fingerprint(cfds, only_r1) != provenance_fingerprint(
        cfds, both
    )
    assert provenance_fingerprint([], only_r1) != provenance_fingerprint(
        cfds, only_r1
    )


def test_plan_pairs_is_deterministic_and_exhaustive():
    for k in (1, 2, 3, 5):
        for shards in (1, 2, 4, k * k, k * k + 3):
            plans = plan_pairs(k, shards)
            assert len(plans) == shards
            flat = [pair for plan in plans for pair in plan]
            assert sorted(flat) == [(i, j) for i in range(k) for j in range(k)]
            assert plans == plan_pairs(k, shards)  # deterministic
            # Diagonal pairs carry the equality-form work; they must
            # land on min(k, shards) distinct shards, never cluster
            # (regression: a row-major stride parks all of them in
            # shard 0 whenever shards divides k + 1, e.g. k=3/shards=4).
            owners = {
                s for s, plan in enumerate(plans) for i, j in plan if i == j
            }
            assert len(owners) == min(k, shards)
    with pytest.raises(ValueError):
        plan_pairs(2, 0)


def test_combine_verdicts_is_a_nor_over_shards():
    assert combine_verdicts([[False, True], [False, False]]) == [True, False]
    assert combine_verdicts([]) == []


# ----------------------------------------------------------------------
# 1. Delta-vs-cold equivalence.
# ----------------------------------------------------------------------


def _workspace(schema: DatabaseSchema, sigma) -> Workspace:
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", list(sigma))
    for rel in ("R1", "R2", "R3"):
        workspace.add_view(f"V{rel}", _projection_view(rel, schema))
    workspace.add_view("U", _union_view(schema))
    return workspace


def _answers(service: PropagationService) -> dict:
    phis = {
        rel: [FD(f"V{rel}", ("A",), ("C",)), FD(f"V{rel}", ("C",), ("A",))]
        for rel in ("R1", "R2", "R3")
    }
    out = {}
    for rel, targets in phis.items():
        out[f"check-{rel}"] = service.check(
            CheckRequest(view=f"V{rel}", targets=targets)
        ).propagated
        out[f"cover-{rel}"] = service.cover(CoverRequest(view=f"V{rel}")).cover
    out["check-U"] = service.check(
        CheckRequest(view="U", targets=[CFD("U", {"CC": "1", "A": "_"}, {"B": "_"})])
    ).propagated
    out["cover-U"] = service.cover(CoverRequest(view="U")).cover
    out["empty-U"] = service.emptiness(EmptinessRequest(view="U")).empty
    return out


def test_delta_sigma_matches_cold_service():
    schema = _schema()
    sigma = _sigma(schema)
    warm = PropagationService(_workspace(schema, sigma), shards=SHARDS)
    warm_before = _answers(warm)

    diff = UpdateSigmaRequest(
        remove=[FD("R1", ("B",), ("C",)), CFD("R1", {"A": "1"}, {"D": "9"})],
        add=[CFD("R1", {"B": "2"}, {"C": "7"}), FD("R1", ("A", "B"), ("D",))],
    )
    update = warm.delta_sigma(diff)
    assert update.affected_relations == ["R1"]
    assert update.size == len(sigma)  # removed 2, added 2
    assert update.retained > 0  # R2/R3 lines stayed warm

    # The cold reference: a fresh service built on the updated Sigma.
    updated_sigma = warm.workspace.sigma("default")
    cold = PropagationService(_workspace(schema, updated_sigma))
    warm_after = _answers(warm)
    assert warm_after == _answers(cold)
    # The delta really changed R1 answers and really spared R2/R3.
    assert warm_after["check-R1"] != warm_before["check-R1"]
    assert warm_after["check-R2"] == warm_before["check-R2"]
    assert warm_after["cover-R3"] == warm_before["cover-R3"]


def test_delta_sigma_remove_matches_fd_embedding():
    """Removing an FD removes the CFD it was registered as, and vice versa."""
    schema = _schema(("R1",))
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", [FD("R1", ("A",), ("B",))])
    service = PropagationService(workspace)
    update = service.delta_sigma(
        UpdateSigmaRequest(remove=[CFD.from_fd(FD("R1", ("A",), ("B",)))])
    )
    assert update.size == 0 and update.affected_relations == ["R1"]


def test_delta_sigma_is_idempotent():
    """A retried diff (wire retry after a dropped response) is a no-op:
    Sigma does not grow, nothing is re-invalidated."""
    schema = _schema()
    sigma = _sigma(schema)
    service = PropagationService(_workspace(schema, sigma))
    _answers(service)  # warm every view
    diff = UpdateSigmaRequest(
        remove=[FD("R1", ("B",), ("C",))],
        add=[CFD("R1", {"B": "2"}, {"C": "7"})],
    )
    first = service.delta_sigma(diff)
    assert first.affected_relations == ["R1"]
    snapshot = list(service.workspace.sigma("default"))
    retry = service.delta_sigma(diff)
    assert retry.size == first.size
    assert retry.affected_relations == []
    assert retry.invalidated == 0
    # The retry also left the registered set itself unchanged.
    assert service.workspace.sigma("default") == snapshot
    again = service.delta_sigma(UpdateSigmaRequest())  # empty diff: no-op
    assert again.size == first.size and again.affected_relations == []


def test_delta_sigma_spares_other_registered_sigmas():
    """Editing registration "a" must not discard warm lines keyed under
    registration "b", even when both mention the affected relation —
    "b"'s keys never moved, so its lines stay reachable and warm."""
    schema = _schema()
    workspace = Workspace()
    workspace.add_schema("default", schema)
    sigma_a = _sigma(schema)
    sigma_b = [FD("R1", ("A",), ("C",)), CFD("R1", {"B": "3"}, {"D": "8"})]
    workspace.add_sigma("a", sigma_a)
    workspace.add_sigma("b", sigma_b)
    workspace.add_view("VR1", _projection_view("R1", schema))
    service = PropagationService(workspace)

    phis = [FD("VR1", ("A",), ("C",)), FD("VR1", ("C",), ("A",))]
    before_b = service.check(CheckRequest(view="VR1", sigma="b", targets=phis))
    assert before_b.stats.chases > 0
    service.check(CheckRequest(view="VR1", sigma="a", targets=phis))

    service.delta_sigma(
        UpdateSigmaRequest(name="a", add=[CFD("R1", {"C": "5"}, {"D": "6"})])
    )
    after_b = service.check(CheckRequest(view="VR1", sigma="b", targets=phis))
    assert after_b.propagated == before_b.propagated
    assert after_b.stats.chases == 0, "sigma 'b' lines must stay warm"
    assert after_b.stats.memo_hits == len(phis)


def test_delta_sigma_spares_other_sigmas_emptiness_memo():
    """The service-side emptiness memo follows the same precise
    staleness rule as the engine tiers: a line warmed under an unedited
    registration survives a delta on another registration."""
    schema = _schema(("R1",))
    workspace = Workspace()
    workspace.add_schema("default", schema)
    sigma_a = [CFD("R1", {"A": "1"}, {"B": "2"}), CFD("R1", {"A": "_"}, {"B": "3"})]
    sigma_b = [CFD("R1", {"A": "1"}, {"B": "2"})]
    workspace.add_sigma("a", sigma_a)
    workspace.add_sigma("b", sigma_b)
    workspace.add_view("VR1", _projection_view("R1", schema))
    service = PropagationService(workspace)

    before = service.emptiness(EmptinessRequest(view="VR1", sigma="b"))
    service.delta_sigma(
        UpdateSigmaRequest(name="a", remove=[CFD("R1", {"A": "_"}, {"B": "3"})])
    )
    # "b"'s memo line survived: the repeat answers without recomputing
    # (memoized emptiness is near-instant; mainly we pin the verdict and
    # that the memo entry still exists).
    assert len(service._empty_memo) == 1
    after = service.emptiness(EmptinessRequest(view="VR1", sigma="b"))
    assert after.empty == before.empty


def test_bad_shards_is_rejected_warm_or_cold():
    """A bad per-request shards value must fail identically whether the
    settings combo maps to a warm pooled engine or a fresh one."""
    from repro.api import ApiError

    schema = _schema(("R1",))
    service = PropagationService(_workspace_small(schema, [FD("R1", ("A",), ("C",))]))
    phi = [FD("VR1", ("A",), ("C",))]
    for bad in (0, -1, "4", True):
        with pytest.raises(ApiError) as err:
            service.check(CheckRequest(view="VR1", targets=phi, shards=bad))
        assert err.value.kind == "bad-request"
    # Warm the default combo, then retry the bad values: same rejection.
    assert service.check(CheckRequest(view="VR1", targets=phi)).propagated
    for bad in (0, "4"):
        with pytest.raises(ApiError):
            service.check(CheckRequest(view="VR1", targets=phi, shards=bad))


def test_delta_sigma_unknown_name_is_not_found():
    from repro.api import ApiError

    service = PropagationService()
    with pytest.raises(ApiError) as err:
        service.delta_sigma(UpdateSigmaRequest(name="nope"))
    assert err.value.kind == "not-found"


# ----------------------------------------------------------------------
# 2. Per-relation invalidation precision.
# ----------------------------------------------------------------------


def test_untouched_relation_lines_stay_warm_in_memory():
    schema = _schema()
    sigma = _sigma(schema)
    v1, v2 = _projection_view("R1", schema), _projection_view("R2", schema)
    phis1 = [FD("VR1", ("A",), ("C",)), FD("VR1", ("C",), ("A",))]
    phis2 = [FD("VR2", ("A",), ("C",)), FD("VR2", ("C",), ("A",))]

    engine = _engine()
    engine.check_many(sigma, v1, phis1)
    expected2 = engine.check_many(sigma, v2, phis2)
    chases = engine.stats.chase_invocations
    assert chases > 0

    edited = [dep for dep in sigma if dep.relation != "R1"] + [
        FD("R1", ("A",), ("D",)),
        CFD("R1", {"B": "2"}, {"D": "9"}),
    ]
    # Same engine, edited Sigma: V2 queries answer from the memory tier.
    assert engine.check_many(edited, v2, phis2) == expected2
    assert engine.stats.chase_invocations == chases
    assert engine.stats.verdict_hits >= len(phis2)
    # V1 queries recompute — provenance includes the edited relation.
    verdicts1 = engine.check_many(edited, v1, phis1)
    assert engine.stats.chase_invocations > chases
    baseline = PropagationEngine(use_cache=False)
    assert baseline.check_many(edited, v1, phis1) == verdicts1
    assert baseline.check_many(edited, v2, phis2) == expected2


def test_untouched_relation_lines_stay_warm_across_processes(tmp_path):
    """The acceptance experiment at engine level: warm store, Sigma edit
    on R1, fresh engine (= another process: nothing shared but the cache
    directory) answers R2 queries with zero chases from persistent hits."""
    schema = _schema()
    sigma = _sigma(schema)
    v1, v2 = _projection_view("R1", schema), _projection_view("R2", schema)
    phis1 = [FD("VR1", ("A",), ("C",)), FD("VR1", ("C",), ("A",))]
    phis2 = [FD("VR2", ("A",), ("C",)), FD("VR2", ("C",), ("A",))]

    with _engine(cache_dir=str(tmp_path)) as warm:
        warm.check_many(sigma, v1, phis1)
        expected2 = warm.check_many(sigma, v2, phis2)
        cover2 = warm.cover(sigma, v2)
        assert warm.stats.persistent_writes > 0

    edited = [dep for dep in sigma if dep.relation != "R1"] + [
        FD("R1", ("A",), ("D",)),
        CFD("R1", {"B": "2"}, {"D": "9"}),
    ]
    with _engine(cache_dir=str(tmp_path)) as fresh:
        assert fresh.check_many(edited, v2, phis2) == expected2
        assert fresh.stats.chase_invocations == 0
        assert fresh.stats.persistent_hits == len(phis2)
        assert fresh.cover(edited, v2) == cover2
        assert fresh.stats.chase_invocations == 0
        assert fresh.stats.rbr.drops == 0  # the cover was not recomputed
        # The edited relation's queries miss the store (no stale reuse).
        hits = fresh.stats.persistent_hits
        verdicts1 = fresh.check_many(edited, v1, phis1)
        assert fresh.stats.persistent_hits == hits
        assert fresh.stats.chase_invocations > 0
    assert PropagationEngine(use_cache=False).check_many(
        edited, v1, phis1
    ) == verdicts1


def test_invalidate_relations_reports_precision():
    schema = _schema()
    sigma = _sigma(schema)
    engine = _engine()
    for rel in ("R1", "R2", "R3"):
        engine.check_many(
            sigma,
            _projection_view(rel, schema),
            [FD(f"V{rel}", ("A",), ("C",))],
        )
    out = engine.invalidate_relations({"R1"})
    assert out == {"invalidated": 1, "retained": 2}
    # Everything goes when every relation is affected.
    out = engine.invalidate_relations({"R1", "R2", "R3"})
    assert out["retained"] == 0


def test_update_sigma_wire_round_trip():
    import json

    from repro.api import handle_request

    schema = _schema(("R1", "R2"))
    sigma = [
        FD("R1", ("A",), ("B",)),
        FD("R2", ("A",), ("B",)),
        CFD("R2", {"A": "1"}, {"D": "9"}),
    ]
    service = PropagationService(_workspace_small(schema, sigma))
    check = {
        "op": "check",
        "view": "VR2",
        "phis": [{"kind": "fd", "relation": "VR2", "lhs": ["A"], "rhs": ["D"]}],
    }
    first = handle_request(check, service)
    assert first["ok"] and first["result"]["stats"]["chases"] > 0
    update = handle_request(
        {
            "op": "update-sigma",
            "remove": [{"kind": "fd", "relation": "R1", "lhs": ["A"], "rhs": ["B"]}],
        },
        service,
    )
    assert update["ok"], update
    assert update["result"]["affected_relations"] == ["R1"]
    assert update["result"]["retained"] >= 1
    second = handle_request(check, service)
    assert second["ok"] and second["result"]["stats"]["chases"] == 0
    assert second["result"]["stats"]["memo_hits"] == 1
    json.dumps([first, update, second])  # documents stay serializable


def _workspace_small(schema, sigma) -> Workspace:
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", list(sigma))
    for rel in schema.relations:
        workspace.add_view(f"V{rel}", _projection_view(rel, schema))
    return workspace


# ----------------------------------------------------------------------
# 3. Shard-count invariance.
# ----------------------------------------------------------------------


def _union_workload(schema):
    view = _union_view(schema)
    sigma = _sigma(schema)
    phis = [
        CFD("U", {"A": "_"}, {"B": "_"}),
        CFD("U", {"CC": "1", "A": "_"}, {"B": "_"}),
        CFD("U", {"CC": "2", "A": "_"}, {"B": "_"}),
        CFD("U", {"A": "_", "B": "_"}, {"CC": "_"}),
        CFD("U", {"CC": "1"}, {"CC": "1"}),
    ]
    return sigma, view, phis


@pytest.mark.parametrize("shards", [2, 4, 9, 16])
def test_sharded_verdicts_match_unsharded(shards):
    schema = _schema()
    sigma, view, phis = _union_workload(schema)
    reference = PropagationEngine(shards=1)
    expected = reference.check_many(sigma, view, phis)
    assert PropagationEngine(use_cache=False).check_many(sigma, view, phis) == expected

    engine = PropagationEngine(shards=shards)
    assert engine.check_many(sigma, view, phis) == expected
    # Per-shard tableau counters merged back: the sharded run did real
    # chase work and the dispatcher can see it.
    assert engine.stats.shard_tasks > 0
    assert engine.stats.chase_invocations > 0
    assert engine.stats.check_queries == reference.stats.check_queries
    # Second ask: pure memory hits, no new shard dispatch.
    tasks = engine.stats.shard_tasks
    assert engine.check_many(sigma, view, phis) == expected
    assert engine.stats.shard_tasks == tasks
    assert engine.stats.verdict_hits >= len(phis)
    engine.close()


def test_sharded_covers_match_unsharded():
    schema = _schema()
    sigma, view, _ = _union_workload(schema)
    expected = PropagationEngine(shards=1).cover(sigma, view)
    for shards, jobs in ((3, 1), (4, 2)):
        engine = PropagationEngine(shards=shards, jobs=jobs)
        assert engine.cover(sigma, view) == expected
        assert engine.stats.shard_tasks > 0
        if jobs > 1:
            assert engine.stats.parallel_tasks > 0
        engine.close()


def test_shard_index_scale_out_combines_to_the_full_verdict():
    """shards engines, one shard each: AND of the partial verdicts equals
    the unsharded answer (the distributed-orchestrator contract)."""
    schema = _schema()
    sigma, view, phis = _union_workload(schema)
    expected = PropagationEngine(shards=1).check_many(sigma, view, phis)
    shards = 3
    workers = [
        PropagationEngine(shards=shards, shard_index=index)
        for index in range(shards)
    ]
    partial = [worker.check_many(sigma, view, phis) for worker in workers]
    combined = [
        all(partial[s][idx] for s in range(shards)) for idx in range(len(phis))
    ]
    assert combined == expected
    for worker in workers:
        worker.close()


def test_shard_index_verdicts_never_persist(tmp_path):
    """Partial shard verdicts must not poison the shared store."""
    schema = _schema()
    sigma, view, phis = _union_workload(schema)
    expected = PropagationEngine(shards=1).check_many(sigma, view, phis)
    with PropagationEngine(
        shards=3, shard_index=0, cache_dir=str(tmp_path)
    ) as partial:
        partial.check_many(sigma, view, phis)
        assert partial.stats.persistent_writes == 0
    with PropagationEngine(cache_dir=str(tmp_path)) as full:
        assert full.check_many(sigma, view, phis) == expected
        assert full.stats.persistent_hits == 0  # nothing partial to reuse


def test_shard_knob_validation():
    with pytest.raises(ValueError):
        PropagationEngine(shards=0)
    with pytest.raises(ValueError):
        PropagationEngine(shards=2, shard_index=2)
    with pytest.raises(ValueError):
        PropagationEngine(shard_index=1)  # shards defaults to 1


def test_shard_index_engine_refuses_covers():
    """Partial shard verdicts are not AND-combinable into a cover, so a
    shard_index-restricted engine must fail loudly instead of returning
    a silently partial one."""
    schema = _schema()
    sigma, view, _ = _union_workload(schema)
    partial = PropagationEngine(shards=3, shard_index=0)
    with pytest.raises(ValueError, match="shard_index"):
        partial.cover(sigma, view)


def test_per_request_shards_share_one_warm_engine():
    """`shards` changes evaluation strategy, not semantics, so requests
    with different shard plans must hit one engine's warm memo tiers."""
    schema = _schema()
    sigma, view, phis = _union_workload(schema)
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", sigma)
    workspace.add_view("U", view)
    service = PropagationService(workspace)

    cold = service.check(CheckRequest(view="U", targets=phis, shards=4))
    assert cold.stats.chases > 0 and cold.stats.shard_tasks > 0
    warm = service.check(CheckRequest(view="U", targets=phis, shards=1))
    assert warm.propagated == cold.propagated
    assert warm.stats.chases == 0
    assert warm.stats.memo_hits == len(set(phis))


def test_provenance_and_legacy_keys_share_one_derivation():
    """keys.verdict_key/cover_key and cache.verdict_persist_key differ
    only in the Sigma field name — and can never collide."""
    from repro.propagation.cache import (
        cover_persist_key,
        query_persist_key,
        verdict_persist_key,
    )
    from repro.propagation.engine import cover_key, verdict_key

    phi = CFD("V", {"A": "_"}, {"B": "_"})
    assert verdict_key("fp", "vfp", phi, None, False) == query_persist_key(
        "verdict", "provenance", "fp", "vfp", phi, None, False
    )
    assert verdict_key("fp", "vfp", phi, None, False) != verdict_persist_key(
        "fp", "vfp", phi, None, False
    )
    assert cover_key("fp", "vfp", None, False) != cover_persist_key(
        "fp", "vfp", None, False
    )


# ----------------------------------------------------------------------
# Bounded tableau caches (satellite).
# ----------------------------------------------------------------------


def test_branch_pair_cache_is_bounded_by_cache_size():
    schema = _schema()
    sigma, view, _ = _union_workload(schema)
    # Many distinct LHS shapes force coupled-skeleton churn.
    phis = [
        CFD("U", {"A": "_", "CC": str(tag)}, {"B": "_"})
        for tag in range(12)
    ] + [CFD("U", {"B": "_", "CC": str(tag)}, {"A": "_"}) for tag in range(12)]
    bounded = PropagationEngine(cache_size=4)
    unbounded = PropagationEngine()
    assert bounded.check_many(sigma, view, phis) == unbounded.check_many(
        sigma, view, phis
    )
    assert bounded.stats.tableau_evictions > 0
    assert unbounded.stats.tableau_evictions == 0
    # Correct after churn, too.
    assert bounded.check_many(sigma, view, phis) == unbounded.check_many(
        sigma, view, phis
    )
