"""End-to-end validation of PropCFD_SPC against concrete data.

The defining property of a propagation cover: for every database instance
satisfying the source CFDs, the evaluated view satisfies every CFD in the
cover.  We test it empirically on randomly generated workloads — random
schema, random CFDs, random SPC view, random satisfying instances — and
additionally check the decision procedure agrees with the cover on a
sample of candidate view CFDs.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CFD, SPCUView, implies, prop_cfd_spc, propagates
from repro.generators import (
    random_cfds,
    random_satisfying_instance,
    random_schema,
    random_spc_view,
)


def _workload(seed: int):
    rng = random.Random(seed)
    schema = random_schema(rng, num_relations=3, min_attributes=3, max_attributes=5)
    sigma = random_cfds(rng, schema, rng.randint(2, 8), max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spc_view(
        rng,
        schema,
        num_projected=rng.randint(3, 6),
        num_selections=rng.randint(0, 3),
        num_atoms=2,
    )
    return rng, schema, sigma, view


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_cover_holds_on_satisfying_instances(seed):
    rng, schema, sigma, view = _workload(seed)
    cover = prop_cfd_spc(sigma, view)
    for _ in range(3):
        db = random_satisfying_instance(rng, schema, sigma, rows_per_relation=8)
        assert db.satisfies_all(sigma)
        view_relation = view.evaluate(db)
        for phi in cover:
            assert view_relation.satisfies(phi), (
                f"seed={seed}: cover CFD {phi} violated on V(D)"
            )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_cover_members_pass_decision_procedure(seed):
    _, _, sigma, view = _workload(seed)
    cover = prop_cfd_spc(sigma, view)
    spcu = SPCUView.from_spc(view)
    for phi in cover[:6]:
        assert propagates(sigma, spcu, phi), (
            f"seed={seed}: {phi} in cover but not propagated"
        )


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=10, deadline=None)
def test_cover_complete_for_renamed_source_cfds(seed):
    """Any source CFD fully visible through the view must follow from
    the cover (it is trivially propagated)."""
    _, _, sigma, view = _workload(seed)
    cover = prop_cfd_spc(sigma, view)
    projected = set(view.projection)
    for candidate in view.rename_source_cfds(sigma):
        if candidate.attributes <= projected and not candidate.is_trivial():
            assert implies(cover, candidate), (
                f"seed={seed}: visible source CFD {candidate} not implied "
                f"by cover {cover}"
            )


def test_example_1_1_single_branch_cover(customer_schema, customer_sigma):
    """PropCFD_SPC on the UK branch alone finds phi1/phi2/phi4 analogues."""
    from repro.algebra.spc import RelationAtom, SPCView

    attrs = ["AC", "phn", "name", "street", "city", "zip"]
    atoms = [RelationAtom("R1", {a: a for a in attrs})]
    view = SPCView(
        "R",
        customer_schema,
        atoms,
        projection=attrs + ["CC"],
        constants={"CC": "44"},
    )
    cover = prop_cfd_spc(customer_sigma, view)
    assert implies(cover, CFD("R", {"zip": "_"}, {"street": "_"}))
    assert implies(cover, CFD("R", {"AC": "_"}, {"city": "_"}))
    assert implies(cover, CFD("R", {"AC": "20"}, {"city": "ldn"}))
    assert implies(cover, CFD.constant("R", "CC", "44"))
    # With CC pinned to 44, the guarded forms follow too.
    assert implies(cover, CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}))
