"""The propagation decision procedure (Theorems 3.1/3.3/3.5)."""

import pytest

from repro import (
    CFD,
    ConstEq,
    AttrEq,
    DatabaseSchema,
    FD,
    Projection,
    RelationRef,
    RelationSchema,
    SPCUView,
    SPCView,
    Selection,
    find_counterexample,
    propagates,
)
from repro.algebra.spc import RelationAtom


class TestExample11:
    """The paper's running example: what propagates and what does not."""

    def test_phi1_zip_street_under_uk(self, customer_sigma, customer_view):
        phi1 = CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"})
        assert propagates(customer_sigma, customer_view, phi1)

    def test_f1_as_plain_fd_fails(self, customer_sigma, customer_view):
        assert not propagates(
            customer_sigma, customer_view, CFD("R", {"zip": "_"}, {"street": "_"})
        )

    def test_phi2_phi3_area_code_city(self, customer_sigma, customer_view):
        for cc in ("44", "31"):
            phi = CFD("R", {"CC": cc, "AC": "_"}, {"city": "_"})
            assert propagates(customer_sigma, customer_view, phi)

    def test_ac_city_without_country_fails(self, customer_sigma, customer_view):
        assert not propagates(
            customer_sigma, customer_view, CFD("R", {"AC": "_"}, {"city": "_"})
        )

    def test_phi4_phi5_constant_patterns(self, customer_sigma, customer_view):
        phi4 = CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"})
        phi5 = CFD("R", {"CC": "31", "AC": "20"}, {"city": "Amsterdam"})
        assert propagates(customer_sigma, customer_view, phi4)
        assert propagates(customer_sigma, customer_view, phi5)

    def test_phi4_without_cc_fails(self, customer_sigma, customer_view):
        modified = CFD("R", {"AC": "20"}, {"city": "ldn"})
        assert not propagates(customer_sigma, customer_view, modified)

    def test_phi6_target_fd_not_propagated(self, customer_sigma, customer_view):
        phi6 = FD("R", ("CC", "AC", "phn"), ("street", "city", "zip"))
        assert not propagates(customer_sigma, customer_view, phi6)

    def test_us_branch_has_no_zip_guarantee(self, customer_sigma, customer_view):
        phi = CFD("R", {"CC": "01", "zip": "_"}, {"street": "_"})
        assert not propagates(customer_sigma, customer_view, phi)


class TestCounterexamples:
    def test_counterexample_is_concrete_and_valid(
        self, customer_sigma, customer_view
    ):
        phi = CFD("R", {"zip": "_"}, {"street": "_"})
        witness = find_counterexample(customer_sigma, customer_view, phi)
        assert witness is not None
        db = witness.database
        assert db.satisfies_all(customer_sigma)
        assert not customer_view.evaluate(db).satisfies(phi)

    def test_no_counterexample_for_propagated(self, customer_sigma, customer_view):
        phi1 = CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"})
        assert find_counterexample(customer_sigma, customer_view, phi1) is None

    def test_branch_pair_recorded(self, customer_sigma, customer_view):
        # AC -> city fails across the UK and NL branches (t1 vs t5).
        phi = CFD("R", {"AC": "_"}, {"city": "_"})
        witness = find_counterexample(customer_sigma, customer_view, phi)
        assert witness is not None
        i, j = witness.branch_pair
        assert i != j  # the violation needs two different countries


class TestSimpleViews:
    @pytest.fixture
    def db(self):
        return DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])

    def test_projection_view_keeps_fd(self, db):
        view = SPCView.from_expr(Projection(RelationRef("R"), ["A", "B"]), db)
        sigma = [FD("R", ("A",), ("B",))]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_projection_view_transitive_shortcut(self, db):
        # A -> B -> C with B projected away: A -> C survives.
        view = SPCView.from_expr(Projection(RelationRef("R"), ["A", "C"]), db)
        sigma = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"C": "_"}))
        assert not propagates(sigma, view, CFD("V", {"C": "_"}, {"A": "_"}))

    def test_selection_strengthens_dependencies(self, db):
        # sigma_{A=a}: the pattern CFD (A=a -> B) becomes a plain FD.
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("A", "a")]), db
        )
        sigma = [CFD("R", {"A": "a"}, {"B": "_"})]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_selection_constant_cfd_on_view(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("A", "a")]), db
        )
        assert propagates([], view, CFD.constant("V", "A", "a"))
        assert not propagates([], view, CFD.constant("V", "B", "a"))

    def test_equality_selection_propagates_equality_cfd(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [AttrEq("A", "B")]), db
        )
        assert propagates([], view, CFD.equality("V", "A", "B"))
        assert not propagates([], view, CFD.equality("V", "A", "C"))

    def test_product_keeps_per_relation_cfds(self):
        db = DatabaseSchema(
            [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
        )
        atoms = [
            RelationAtom("R", {"A": "A", "B": "B"}),
            RelationAtom("S", {"C": "C", "D": "D"}),
        ]
        view = SPCView("V", db, atoms)
        sigma = [FD("R", ("A",), ("B",))]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))
        # ... but nothing links the two sides.
        assert not propagates(sigma, view, CFD("V", {"C": "_"}, {"D": "_"}))

    def test_join_transfers_dependencies_across_atoms(self):
        db = DatabaseSchema(
            [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
        )
        atoms = [
            RelationAtom("R", {"A": "A", "B": "B"}),
            RelationAtom("S", {"C": "C", "D": "D"}),
        ]
        view = SPCView("V", db, atoms, [AttrEq("B", "C")])
        sigma = [FD("R", ("A",), ("B",)), FD("S", ("C",), ("D",))]
        # A -> B = C -> D composes through the join condition.
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"D": "_"}))

    def test_always_empty_view_propagates_everything(self, db):
        # Example 3.1 shape: source pins B=b1, view selects B=b2.
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("B", "b2")]), db
        )
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        assert propagates(sigma, view, CFD("V", {"C": "_"}, {"A": "weird"}))

    def test_missing_view_attribute_raises(self, db):
        view = SPCView.from_expr(Projection(RelationRef("R"), ["A"]), db)
        with pytest.raises(KeyError):
            propagates([], view, CFD("V", {"A": "_"}, {"Z": "_"}))

    def test_trivial_target_always_propagates(self, db):
        view = SPCView.from_expr(Projection(RelationRef("R"), ["A", "B"]), db)
        assert propagates([], view, CFD("V", {"A": "_"}, {"A": "_"}))


class TestUnsupportedViews:
    def test_raw_expression_rejected_with_guidance(self):
        from repro.propagation import UnsupportedViewError

        expr = Projection(RelationRef("R"), ["A"])  # not normalized
        with pytest.raises(UnsupportedViewError, match="undecidable"):
            propagates([], expr, CFD("V", {"A": "_"}, {"B": "_"}))


class TestSPCUInteractions:
    def test_union_requires_all_branches(self):
        """An FD holding on each branch separately can fail across branches."""
        db = DatabaseSchema(
            [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["A", "B"])]
        )
        from repro.algebra.ops import Union

        view = SPCUView.from_expr(
            Union(RelationRef("R"), RelationRef("S")), db
        )
        sigma = [FD("R", ("A",), ("B",)), FD("S", ("A",), ("B",))]
        # Within each branch A -> B holds; across branches it does not.
        assert not propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_disjoint_union_with_tags_propagates(self, customer_sigma, customer_view):
        # Tagged branches cannot cross-pair, so per-country FDs survive
        # exactly when guarded by the tag (phi2/phi3 above); sanity-check
        # the mixed-constant case too.
        phi = CFD("R", {"CC": "01", "AC": "_"}, {"city": "_"})
        assert not propagates(customer_sigma, customer_view, phi)
