"""The command-line interface, driven through temp JSON files."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def workspace(tmp_path):
    """Schema/sigma/view files for the Example 1.1 UK branch."""
    attrs = ["AC", "phn", "name", "street", "city", "zip"]
    schema = {
        "relations": [
            {"name": f"R{i}", "attributes": attrs} for i in (1, 2, 3)
        ]
    }
    sigma = [
        {"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]},
        {"kind": "fd", "relation": "R1", "lhs": ["AC"], "rhs": ["city"]},
        {
            "kind": "cfd",
            "relation": "R1",
            "lhs": {"AC": "20"},
            "rhs": {"city": "ldn"},
        },
    ]
    view = {
        "name": "R",
        "branches": [
            {
                "atoms": [{"source": "R1", "prefix": ""}],
                "projection": attrs + ["CC"],
                "constants": {"CC": "44"},
            },
            {
                "atoms": [{"source": "R2", "prefix": ""}],
                "projection": attrs + ["CC"],
                "constants": {"CC": "01"},
            },
        ],
    }
    paths = {}
    for name, doc in [("schema", schema), ("sigma", sigma), ("view", view)]:
        path = tmp_path / f"{name}.json"
        path.write_text(json.dumps(doc))
        paths[name] = str(path)
    paths["dir"] = tmp_path
    return paths


def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


class TestCheck:
    def test_propagated_exit_zero(self, workspace, capsys):
        phi = _write(
            workspace["dir"],
            "phi.json",
            {
                "kind": "cfd",
                "relation": "R",
                "lhs": {"CC": "44", "zip": "_"},
                "rhs": {"street": "_"},
            },
        )
        code = main(
            ["check", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi]
        )
        assert code == 0
        assert "PROPAGATED" in capsys.readouterr().out

    def test_not_propagated_exit_one_with_witness(self, workspace, capsys):
        phi = _write(
            workspace["dir"],
            "phi.json",
            {
                "kind": "cfd",
                "relation": "R",
                "lhs": {"zip": "_"},
                "rhs": {"street": "_"},
            },
        )
        code = main(
            ["check", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi,
             "--witness"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "not propagated" in out
        assert "R2" in out  # the witness database is printed

    def test_list_of_targets(self, workspace, capsys):
        phi = _write(
            workspace["dir"],
            "phis.json",
            [
                {
                    "kind": "cfd",
                    "relation": "R",
                    "lhs": {"CC": "44", "zip": "_"},
                    "rhs": {"street": "_"},
                },
                {
                    "kind": "cfd",
                    "relation": "R",
                    "lhs": {"zip": "_"},
                    "rhs": {"street": "_"},
                },
            ],
        )
        code = main(
            ["check", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi]
        )
        assert code == 1  # one of the two fails


class TestPropagateBatch:
    TARGETS = [
        {
            "kind": "cfd",
            "relation": "R",
            "lhs": {"CC": "44", "zip": "_"},
            "rhs": {"street": "_"},
        },
        {
            "kind": "cfd",
            "relation": "R",
            "lhs": {"zip": "_"},
            "rhs": {"street": "_"},
        },
        {
            "kind": "cfd",
            "relation": "R",
            "lhs": {"CC": "44", "AC": "_"},
            "rhs": {"city": "_"},
        },
    ]

    def _run(self, workspace, phi_doc, *extra):
        phi = _write(workspace["dir"], "batch.json", phi_doc)
        return main(
            ["propagate-batch", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi,
             *extra]
        )

    def test_batch_verdicts_and_exit_code(self, workspace, capsys):
        code = self._run(workspace, self.TARGETS)
        assert code == 1  # the unconditioned FD fails
        out, err = capsys.readouterr()
        lines = [l for l in out.splitlines() if l]
        assert len(lines) == 3
        assert lines[0].startswith("PROPAGATED")
        assert lines[1].startswith("not propagated")
        assert lines[2].startswith("PROPAGATED")
        assert "2/3 propagated" in err

    def test_all_propagated_exit_zero_with_stats(self, workspace, capsys):
        code = self._run(workspace, [self.TARGETS[0]], "--stats")
        assert code == 0
        assert "EngineStats" in capsys.readouterr().err

    def test_no_cache_matches_cached(self, workspace, capsys):
        cached = self._run(workspace, self.TARGETS)
        out_cached = capsys.readouterr().out
        uncached = self._run(workspace, self.TARGETS, "--no-cache")
        out_uncached = capsys.readouterr().out
        assert cached == uncached
        assert out_cached == out_uncached

    def test_out_file_keeps_propagated_targets(self, workspace, capsys):
        out_path = workspace["dir"] / "survivors.json"
        self._run(workspace, self.TARGETS, "--out", str(out_path))
        survivors = json.loads(out_path.read_text())
        assert len(survivors) == 2


class TestCover:
    def test_cover_written_to_file(self, workspace, capsys):
        out_path = workspace["dir"] / "cover.json"
        code = main(
            ["cover", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"],
             "--out", str(out_path)]
        )
        assert code == 0
        cover = json.loads(out_path.read_text())
        assert cover  # nonempty list of dependency documents
        assert all("kind" in doc for doc in cover)


class TestEmpty:
    def test_nonempty_view(self, workspace, capsys):
        code = main(
            ["empty", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"]]
        )
        assert code == 0
        assert "NONEMPTY" in capsys.readouterr().out


class TestValidateAndRepair:
    @pytest.fixture
    def data_files(self, workspace):
        rules = [
            {"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]},
        ]
        dirty_row = {
            "AC": "20", "phn": "1", "name": "a", "street": "S1",
            "city": "LDN", "zip": "Z",
        }
        dirty_row2 = dict(dirty_row, phn="2", name="b", street="S2")
        data = {"R1": [dirty_row, dirty_row2], "R2": [], "R3": []}
        return (
            _write(workspace["dir"], "rules.json", rules),
            _write(workspace["dir"], "data.json", data),
        )

    def test_validate_reports_violations(self, workspace, data_files, capsys):
        rules, data = data_files
        code = main(
            ["validate", "--schema", workspace["schema"], "--rules", rules,
             "--data", data]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out

    def test_repair_fixes_and_writes(self, workspace, data_files, capsys):
        rules, data = data_files
        out_path = workspace["dir"] / "fixed.json"
        code = main(
            ["repair", "--schema", workspace["schema"], "--rules", rules,
             "--data", data, "--out", str(out_path)]
        )
        assert code == 0
        fixed = json.loads(out_path.read_text())
        streets = {row["street"] for row in fixed["R1"]}
        assert len(streets) == 1  # the conflict was repaired

        code = main(
            ["validate", "--schema", workspace["schema"], "--rules", rules,
             "--data", str(out_path)]
        )
        assert code == 0


class TestErrors:
    """Exit codes follow the stable ApiError taxonomy (docs/api.md)."""

    def test_missing_file_exit_two(self, workspace, capsys):
        code = main(
            ["empty", "--schema", "/nonexistent.json", "--sigma",
             workspace["sigma"], "--view", workspace["view"]]
        )
        assert code == 2
        assert "error[not-found]" in capsys.readouterr().err

    def test_malformed_document_exit_two_with_format_kind(
        self, workspace, capsys
    ):
        bad_sigma = _write(
            workspace["dir"], "bad.json", [{"kind": "who-knows"}]
        )
        code = main(
            ["empty", "--schema", workspace["schema"], "--sigma", bad_sigma,
             "--view", workspace["view"]]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error[format]" in err
        assert len(err.strip().splitlines()) == 1  # one-line message

    def test_unprojected_target_exit_two_with_bad_request_kind(
        self, workspace, capsys
    ):
        phi = _write(
            workspace["dir"],
            "phi.json",
            {"kind": "cfd", "relation": "R", "lhs": {"zip": "_"},
             "rhs": {"nonexistent": "_"}},
        )
        code = main(
            ["check", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi]
        )
        assert code == 2
        assert "error[bad-request]" in capsys.readouterr().err

    def test_every_analysis_subcommand_reports_one_line_errors(
        self, workspace, capsys
    ):
        for command, extra in [
            ("check", ["--phi", workspace["sigma"]]),
            ("propagate-batch", ["--phi", workspace["sigma"]]),
            ("cover", []),
            ("empty", []),
        ]:
            code = main(
                [command, "--schema", "/nonexistent.json", "--sigma",
                 workspace["sigma"], "--view", workspace["view"], *extra]
            )
            assert code == 2, command
            err = capsys.readouterr().err
            assert err.startswith("error[not-found]"), (command, err)
            assert len(err.strip().splitlines()) == 1, command


class TestEndpoints:
    """--endpoint / REPRO_ENDPOINT: any invocation can target a fleet."""

    def _phi(self, workspace):
        return _write(
            workspace["dir"],
            "phi.json",
            {
                "kind": "cfd",
                "relation": "R",
                "lhs": {"CC": "44", "zip": "_"},
                "rhs": {"street": "_"},
            },
        )

    def test_check_against_a_live_endpoint_shares_its_warm_cache(
        self, workspace, capsys
    ):
        from repro.api import PropagationService, background_server

        phi = self._phi(workspace)
        base = [
            "--schema", workspace["schema"], "--sigma", workspace["sigma"],
            "--view", workspace["view"], "--phi", phi,
        ]
        with PropagationService() as service:
            with background_server(service, "tcp") as url:
                first = main(["check", *base, "--endpoint", url])
                second = main(["check", *base, "--endpoint", url])
            assert first == second == 0
            out = capsys.readouterr().out
            assert out.count("PROPAGATED") == 2
            # Both invocations hit one warm server: the second a memo hit.
            assert service.stats.check_queries == 2
            assert service.stats.verdict_hits == 1

    def test_endpoint_env_var_is_honored(self, workspace, capsys, monkeypatch):
        from repro.api import PropagationService, background_server

        phi = self._phi(workspace)
        with PropagationService() as service:
            with background_server(service, "http") as url:
                monkeypatch.setenv("REPRO_ENDPOINT", url)
                code = main(
                    ["check", "--schema", workspace["schema"], "--sigma",
                     workspace["sigma"], "--view", workspace["view"],
                     "--phi", phi]
                )
            assert code == 0
            assert service.stats.check_queries == 1  # really went over HTTP

    def test_invocations_register_under_unique_scopes(self, workspace, capsys):
        """Two invocations on one shared server must not clobber each
        other's registrations (names are per-invocation unique; warmth
        is shared through structural cache keys, not names)."""
        from repro.api import PropagationService, background_server

        phi = self._phi(workspace)
        base = [
            "--schema", workspace["schema"], "--sigma", workspace["sigma"],
            "--view", workspace["view"], "--phi", phi,
        ]
        with PropagationService() as service:
            with background_server(service, "tcp") as url:
                assert main(["check", *base, "--endpoint", url]) == 0
                assert main(["check", *base, "--endpoint", url]) == 0
            names = service.workspace.names()
            assert "default" not in names["sigmas"]
            assert len(names["sigmas"]) == 2  # one scope per invocation
            assert all(name.startswith("cli-") for name in names["sigmas"])
            assert service.stats.verdict_hits == 1  # warmth still shared

    def test_env_endpoint_does_not_break_validate(
        self, workspace, capsys, monkeypatch
    ):
        """An ambient REPRO_ENDPOINT (set for check/cover) must not fail
        the purely-local data commands."""
        rules = _write(
            workspace["dir"],
            "rules.json",
            [{"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]}],
        )
        data = _write(workspace["dir"], "data.json", {"R1": [], "R2": [], "R3": []})
        monkeypatch.setenv("REPRO_ENDPOINT", "tcp://warm-server:9999")
        code = main(
            ["validate", "--schema", workspace["schema"], "--rules", rules,
             "--data", data]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_unreachable_endpoint_exits_five(self, workspace, capsys):
        import socket

        phi = self._phi(workspace)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        code = main(
            ["check", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi,
             "--endpoint", f"tcp://127.0.0.1:{port}"]
        )
        assert code == 5
        assert "error[unavailable]" in capsys.readouterr().err

    def test_unknown_scheme_exits_two(self, workspace, capsys):
        phi = self._phi(workspace)
        code = main(
            ["check", "--schema", workspace["schema"], "--sigma",
             workspace["sigma"], "--view", workspace["view"], "--phi", phi,
             "--endpoint", "gopher://nope:1"]
        )
        assert code == 2
        assert "error[bad-request]" in capsys.readouterr().err

    def test_validate_rejects_remote_endpoints(self, workspace, capsys):
        rules = _write(
            workspace["dir"],
            "rules.json",
            [{"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]}],
        )
        data = _write(workspace["dir"], "data.json", {"R1": [], "R2": [], "R3": []})
        code = main(
            ["validate", "--schema", workspace["schema"], "--rules", rules,
             "--data", data, "--endpoint", "tcp://127.0.0.1:9"]
        )
        assert code == 2
        assert "error[bad-request]" in capsys.readouterr().err


class TestStoreUrl:
    """--store-url / REPRO_STORE_URL: the fleet-shared persistent tier."""

    def _phi(self, workspace):
        return _write(
            workspace["dir"],
            "phi.json",
            {
                "kind": "cfd",
                "relation": "R",
                "lhs": {"CC": "44", "zip": "_"},
                "rhs": {"street": "_"},
            },
        )

    def _base(self, workspace):
        return [
            "--schema", workspace["schema"], "--sigma", workspace["sigma"],
            "--view", workspace["view"], "--phi", self._phi(workspace),
        ]

    def test_unknown_scheme_exits_two_with_format_kind(self, workspace, capsys):
        code = main(
            ["propagate-batch", *self._base(workspace),
             "--store-url", "bogus://somewhere"]
        )
        assert code == 2
        err = capsys.readouterr().err
        assert "error[format]" in err
        assert "bogus" in err
        assert "Traceback" not in err

    def test_malformed_url_exits_two_with_format_kind(self, workspace, capsys):
        code = main(
            ["propagate-batch", *self._base(workspace),
             "--store-url", "not-a-url"]
        )
        assert code == 2
        assert "error[format]" in capsys.readouterr().err

    def test_env_var_is_honored_and_equally_typed(
        self, workspace, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_STORE_URL", "bogus://somewhere")
        code = main(["propagate-batch", *self._base(workspace)])
        assert code == 2
        assert "error[format]" in capsys.readouterr().err

    def test_two_invocations_share_warmth_through_store(
        self, workspace, capsys
    ):
        from repro.store import MemoryStore
        from repro.store.server import background_store_server

        with background_store_server(MemoryStore()) as url:
            base = self._base(workspace)
            assert main(
                ["propagate-batch", *base, "--stats", "--store-url", url]
            ) == 0
            cold = capsys.readouterr().err
            assert main(
                ["propagate-batch", *base, "--stats", "--store-url", url]
            ) == 0
            warm = capsys.readouterr().err
        assert "chase_invocations=0" not in cold
        assert "chase_invocations=0" in warm  # answered from the fleet store

    def test_store_serve_parser_and_backing_conflict(self, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(["store-serve"])
        assert args.command == "store-serve"
        assert args.port == 0 and args.cache_dir is None
        code = main(
            ["store-serve", "--cache-dir", "/tmp/x", "--quota-entries", "5"]
        )
        assert code == 2
        assert "error[bad-request]" in capsys.readouterr().err


class TestServeParser:
    def test_serve_subcommand_exists_with_optional_files(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.command == "serve"
        assert args.schema is None and args.port == 0
        assert args.transport == "ndjson" and args.shard_worker is False

    def test_serve_http_shard_worker_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--transport", "http", "--shard-worker"]
        )
        assert args.transport == "http" and args.shard_worker is True

    def test_no_direct_procedure_imports_left_in_cli(self):
        """cli.py is a thin client: every query routes via repro.api."""
        import inspect

        import repro.cli as cli

        source = inspect.getsource(cli)
        assert "from .propagation" not in source
        assert "propagates(" not in source
        assert "find_counterexample" not in source
        assert "view_is_empty" not in source
        assert "PropagationEngine" not in source
