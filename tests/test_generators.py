"""The Section 5 workload generators: parameter compliance."""

import random

import pytest

from repro.core.cfd import CFD
from repro.core.consistency import is_consistent
from repro.core.values import is_wildcard
from repro.generators import (
    CONSTANT_RANGE,
    case_rng,
    random_cfd,
    random_cfds,
    random_satisfying_instance,
    random_schema,
    random_spc_view,
    random_spcu_view,
)


@pytest.fixture
def schema(rng):
    return random_schema(rng, num_relations=10)


class TestSchemaGenerator:
    def test_relation_count(self, rng):
        schema = random_schema(rng, num_relations=12)
        assert len(schema) == 12

    def test_arity_bounds(self, schema):
        for relation in schema:
            assert 10 <= relation.arity <= 20

    def test_infinite_domains_by_default(self, schema):
        assert not schema.has_finite_domain_attribute()

    def test_finite_domain_fraction(self, rng):
        schema = random_schema(rng, finite_domain_fraction=0.5)
        assert schema.has_finite_domain_attribute()
        for relation in schema:
            finite = sum(a.domain.is_finite for a in relation.attributes)
            assert finite == int(relation.arity * 0.5)

    def test_invalid_parameters(self, rng):
        with pytest.raises(ValueError):
            random_schema(rng, num_relations=0)
        with pytest.raises(ValueError):
            random_schema(rng, finite_domain_fraction=1.5)


class TestCFDGenerator:
    def test_count_and_round_robin(self, rng, schema):
        sigma = random_cfds(rng, schema, 50)
        assert len(sigma) == 50
        per_relation = {}
        for phi in sigma:
            per_relation[phi.relation] = per_relation.get(phi.relation, 0) + 1
        assert max(per_relation.values()) - min(per_relation.values()) <= 1

    def test_lhs_size_bounds(self, rng, schema):
        sigma = random_cfds(rng, schema, 200, max_lhs=9, min_lhs=3)
        for phi in sigma:
            assert 3 <= len(phi.lhs) <= 9

    def test_var_pct_is_deterministic_fraction(self, rng, schema):
        for _ in range(50):
            relation = next(iter(schema))
            phi = random_cfd(rng, relation, max_lhs=5, min_lhs=3, var_pct=0.4)
            positions = len(phi.lhs) + 1
            wild = sum(
                is_wildcard(e) for _, e in phi.lhs
            ) + is_wildcard(phi.rhs_entry)
            assert abs(wild - round(0.4 * positions)) <= 1

    def test_constants_in_paper_range(self, rng, schema):
        sigma = random_cfds(rng, schema, 100, var_pct=0.0)
        lo, hi = CONSTANT_RANGE
        for phi in sigma:
            for _, entry in phi.lhs + phi.rhs:
                if not is_wildcard(entry):
                    assert lo <= entry.value <= hi

    def test_generated_sigma_is_consistent(self, rng, schema):
        # Small LHS sizes are the risky case (global constants).
        sigma = random_cfds(rng, schema, 100, max_lhs=2, min_lhs=1, var_pct=0.5)
        assert is_consistent(sigma)

    def test_normal_form(self, rng, schema):
        sigma = random_cfds(rng, schema, 30)
        assert all(phi.is_normal_form for phi in sigma)


class TestViewGenerator:
    def test_structure_parameters(self, rng, schema):
        view = random_spc_view(
            rng, schema, num_projected=25, num_selections=10, num_atoms=4
        )
        assert len(view.atoms) == 4
        assert len(view.projection) == 25
        assert len(view.selection) <= 10

    def test_no_syntactic_contradiction(self, rng, schema):
        from repro.propagation.eqclasses import BottomEQ, compute_eq

        for _ in range(20):
            view = random_spc_view(
                rng, schema, num_projected=10, num_selections=10, num_atoms=3
            )
            assert not isinstance(compute_eq(view, []), BottomEQ)

    def test_block_projection_exposes_whole_atoms(self, rng, schema):
        view = random_spc_view(
            rng, schema, num_projected=15, num_atoms=3, block_projection=True
        )
        projected = set(view.projection)
        fully_visible = [
            atom
            for atom in view.atoms
            if set(atom.view_attributes) <= projected
        ]
        assert fully_visible  # at least one atom fully projected

    def test_uniform_projection_mode(self, rng, schema):
        view = random_spc_view(
            rng, schema, num_projected=15, num_atoms=3, block_projection=False
        )
        assert len(view.projection) == 15

    def test_projection_capped_at_product_width(self, rng, schema):
        view = random_spc_view(rng, schema, num_projected=10_000, num_atoms=2)
        assert len(view.projection) == len(view.es_attributes())


class TestInstanceGenerator:
    def test_instance_satisfies_sigma(self, rng):
        schema = random_schema(rng, num_relations=3, min_attributes=3, max_attributes=5)
        sigma = random_cfds(rng, schema, 6, max_lhs=2, min_lhs=1, var_pct=0.5)
        db = random_satisfying_instance(rng, schema, sigma, rows_per_relation=15)
        assert db.satisfies_all(sigma)

    def test_row_counts(self, rng):
        schema = random_schema(rng, num_relations=2, min_attributes=3, max_attributes=3)
        db = random_satisfying_instance(rng, schema, [], rows_per_relation=10)
        for relation in schema:
            assert len(db.relation(relation.name)) <= 10  # set semantics

    def test_inconsistent_sigma_raises(self, rng):
        schema = random_schema(rng, num_relations=1, min_attributes=3, max_attributes=3)
        relation = next(iter(schema)).name
        attr = next(iter(schema)).attribute_names[0]
        sigma = [
            CFD.constant(relation, attr, "a"),
            CFD.constant(relation, attr, "b"),
        ]
        with pytest.raises(ValueError):
            random_satisfying_instance(rng, schema, sigma)


class TestSeeding:
    """The ``seed=`` spelling threaded through every ``random_*``."""

    def test_seed_matches_explicit_rng(self):
        assert repr(random_schema(seed=41)) == repr(
            random_schema(random.Random(41))
        )
        schema = random_schema(seed=41)
        assert [repr(d) for d in random_cfds(seed=7, schema=schema, count=6)] == [
            repr(d) for d in random_cfds(random.Random(7), schema, 6)
        ]
        assert repr(random_spc_view(seed=7, schema=schema)) == repr(
            random_spc_view(random.Random(7), schema)
        )
        assert repr(random_spcu_view(seed=7, schema=schema)) == repr(
            random_spcu_view(random.Random(7), schema)
        )

    def test_rng_and_seed_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            random_schema(random.Random(1), seed=1)
        with pytest.raises(ValueError, match="reproducibility"):
            random_schema()

    def test_case_rng_streams_are_private(self):
        first = case_rng(0, 1).random()
        assert case_rng(0, 1).random() == first
        assert case_rng(0, 2).random() != first
        assert case_rng(1, 1).random() != first


class TestDegenerateCorners:
    """The first-class corners the fuzzer profiles rely on."""

    def test_constant_lhs_cfds(self, rng):
        schema = random_schema(rng, num_relations=2, min_attributes=4, max_attributes=5)
        sigma = random_cfds(
            rng, schema, 8, max_lhs=2, min_lhs=1, var_pct=0.5, constant_lhs=True
        )
        assert sigma
        for dep in sigma:
            assert all(not is_wildcard(entry) for _, entry in dep.lhs)

    def test_empty_projection_view(self, rng):
        schema = random_schema(rng, num_relations=2, min_attributes=3, max_attributes=4)
        view = random_spc_view(rng, schema, num_projected=0, num_atoms=2)
        assert view.projection == []
        assert view.view_schema().arity == 0
        assert len(view.dropped_attributes()) == len(view.es_attributes())

    def test_union_of_one_branch(self, rng):
        schema = random_schema(rng, num_relations=2, min_attributes=3, max_attributes=4)
        union = random_spcu_view(rng, schema, num_branches=1, num_projected=2)
        assert len(union.branches) == 1

    def test_union_of_identical_branches(self, rng):
        schema = random_schema(rng, num_relations=2, min_attributes=3, max_attributes=4)
        union = random_spcu_view(
            rng, schema, num_branches=3, num_projected=2, identical_branches=True
        )
        assert len(union.branches) == 3
        first = repr(union.branches[0])
        assert all(repr(branch) == first for branch in union.branches)

    def test_union_branches_are_union_compatible(self, rng):
        schema = random_schema(rng, num_relations=3, min_attributes=3, max_attributes=5)
        union = random_spcu_view(rng, schema, num_branches=3, num_projected=3)
        projections = {tuple(branch.projection) for branch in union.branches}
        assert len(projections) == 1
        assert all(attr.startswith("c") for attr in union.projection)
