"""The README's code blocks must actually run (docs-honesty check).

:func:`_python_blocks` is the shared markdown-block harness —
``test_docs.py`` imports it to run the same check over ``docs/*.md``.
"""

import pathlib
import re

import pytest

README = (pathlib.Path(__file__).parent.parent / "README.md").read_text()


def _python_blocks(text: str) -> list[str]:
    """Every ```python fence in *text*, ready for ``exec``."""
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_has_python_examples():
    assert len(_python_blocks(README)) >= 2


def test_quickstart_block_executes():
    block = _python_blocks(README)[0]
    namespace: dict = {}
    exec(compile(block, "<README quickstart>", "exec"), namespace)
    # The block's claims are encoded in its comments; re-assert them.
    propagates = namespace["propagates"]
    CFD = namespace["CFD"]
    sigma, view = namespace["sigma"], namespace["view"]
    assert not propagates(sigma, view, CFD("R", {"zip": "_"}, {"street": "_"}))
    assert propagates(
        sigma, view, CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"})
    )
    assert namespace["cx"] is not None


def test_every_python_block_executes():
    """Not just the quickstart: all README python blocks must run."""
    for index, block in enumerate(_python_blocks(README)):
        exec(compile(block, f"<README block {index}>", "exec"), {})


def test_cover_block_names_exist():
    """The second block references prop_cfd_spc and implies; both exist."""
    import repro

    assert hasattr(repro, "prop_cfd_spc")
    assert hasattr(repro, "implies")
