"""Differential tests: the batch engine against the single-query paths.

The engine's contract is *verdict-for-verdict equivalence* with the
uncached procedures on every workload — the caches and the closure fast
path are pure optimizations.  Three oracles:

- ``propagates`` / ``find_counterexample`` (the plain chase path),
- the engine with ``use_cache=False`` (the ablation baseline),
- ``closure_projection_cover`` + ``core.fd.equivalent`` on FD-over-
  projection workloads (the textbook method, exact on that fragment).

Workloads come from the Section 5 generators (``repro.generators``) with
fixed seeds, so failures reproduce.
"""

from __future__ import annotations

import random

import pytest

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.fd import equivalent
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.core.values import WILDCARD, is_wildcard
from repro.generators import random_cfds, random_schema, random_spc_view
from repro.propagation import propagates
from repro.propagation.closure_baseline import closure_projection_cover
from repro.propagation.engine import PropagationEngine

SEEDS = [0, 1, 2, 3]


def _random_view_cfds(rng: random.Random, view: SPCView, sigma, count: int):
    """Candidate view CFDs over the projection, biased toward interaction.

    Pattern constants are drawn from the constants occurring in the view's
    selection and in Sigma (plus fresh ones), so couplings, keyed classes
    and constant-RHS rules all get exercised.
    """
    pool = [str(v) for v in range(1, 5)]
    for phi in sigma:
        for _, entry in phi.lhs + phi.rhs:
            if not is_wildcard(entry):
                pool.append(entry.value)
    projection = list(view.projection)
    out = []
    for _ in range(count):
        lhs_size = rng.randint(1, min(2, len(projection) - 1))
        chosen = rng.sample(projection, lhs_size + 1)
        lhs_attrs, rhs_attr = chosen[:-1], chosen[-1]

        def entry():
            return WILDCARD if rng.random() < 0.6 else rng.choice(pool)

        out.append(
            CFD(
                view.name,
                {a: entry() for a in lhs_attrs},
                {rhs_attr: entry()},
            )
        )
    return out


def _workload(seed: int):
    rng = random.Random(8008 + seed)
    schema = random_schema(rng, num_relations=3, min_attributes=4, max_attributes=6)
    sigma = random_cfds(rng, schema, 9, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spc_view(
        rng, schema, num_projected=5, num_selections=2, num_atoms=2
    )
    phis = _random_view_cfds(rng, view, sigma, 10)
    return sigma, view, phis


@pytest.mark.parametrize("seed", SEEDS)
def test_check_many_matches_single_query_path(seed):
    sigma, view, phis = _workload(seed)
    expected = [propagates(sigma, view, phi) for phi in phis]

    engine = PropagationEngine()
    assert engine.check_many(sigma, view, phis) == expected
    # A second pass is served from the verdict memo — still identical.
    assert engine.check_many(sigma, view, phis) == expected
    assert engine.stats.verdict_hits >= len(phis)


@pytest.mark.parametrize("seed", SEEDS)
def test_cached_and_uncached_engines_agree(seed):
    sigma, view, phis = _workload(seed)
    cached = PropagationEngine(use_cache=True)
    uncached = PropagationEngine(use_cache=False)
    assert cached.check_many(sigma, view, phis) == uncached.check_many(
        sigma, view, phis
    )
    assert uncached.stats.closure_fast_path == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_engine_counterexamples_are_genuine(seed):
    """Engine witnesses satisfy Sigma while the view violates phi."""
    sigma, view, phis = _workload(seed)
    engine = PropagationEngine()
    verdicts = engine.check_many(sigma, view, phis)
    refuted = [phi for phi, ok in zip(phis, verdicts) if not ok]
    for phi in refuted[:3]:
        witness = engine.find_counterexample(sigma, view, phi)
        assert witness is not None
        for dep in sigma:
            target = dep if isinstance(dep, CFD) else CFD.from_fd(dep)
            assert target.holds_on(
                witness.database.relation(target.relation).rows
            )
        assert not view.evaluate(witness.database).satisfies(phi)


def test_check_many_on_the_running_example(customer_sigma, customer_view):
    """The Example 1.1 union view: engine == plain path on phi1-phi5."""
    phis = [
        CFD("R", {"zip": "_"}, {"street": "_"}),
        CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
        CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"}),
        CFD("R", {"CC": "31", "AC": "_"}, {"city": "_"}),
        CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"}),
        CFD("R", {"CC": "01", "AC": "_"}, {"city": "_"}),
        FD("R", ("CC", "AC", "phn"), ("street", "city", "zip")),
    ]
    expected = [propagates(customer_sigma, customer_view, phi) for phi in phis]
    assert expected == [False, True, True, True, True, False, False]
    for use_cache in (True, False):
        engine = PropagationEngine(use_cache=use_cache)
        assert engine.check_many(customer_sigma, customer_view, phis) == expected


# ----------------------------------------------------------------------
# Cover differential on the FD-over-projection fragment.
# ----------------------------------------------------------------------


def _fd_projection_workload(seed: int):
    rng = random.Random(4242 + seed)
    num_attrs = rng.randint(5, 7)
    attrs = [f"A{i}" for i in range(num_attrs)]
    fds = []
    for _ in range(num_attrs):
        lhs = rng.sample(attrs, rng.randint(1, 2))
        rhs = rng.choice([a for a in attrs if a not in lhs])
        fds.append(FD("R", lhs, (rhs,)))
    projection = sorted(rng.sample(attrs, num_attrs - 2))
    schema = DatabaseSchema([RelationSchema("R", attrs)])
    view = SPCView(
        "V",
        schema,
        [RelationAtom("R", {a: a for a in attrs})],
        projection=projection,
    )
    return attrs, fds, projection, view


@pytest.mark.parametrize("seed", SEEDS)
def test_cover_equivalent_to_closure_baseline(seed):
    """``engine.cover`` == textbook closure-and-project, as FD theories."""
    attrs, fds, projection, view = _fd_projection_workload(seed)
    engine = PropagationEngine()
    cover = engine.cover(fds, view)

    assert all(
        all(is_wildcard(e) for _, e in phi.lhs + phi.rhs) for phi in cover
    ), "FD sources through a projection view must yield plain-FD covers"
    engine_fds = [FD("V", phi.lhs_attrs, phi.rhs_attrs) for phi in cover]

    baseline = closure_projection_cover(fds, "R", attrs, projection)
    baseline_fds = [FD("V", f.lhs, f.rhs) for f in baseline]
    assert equivalent(engine_fds, baseline_fds)

    # And every cover member is individually propagated per the checker.
    for phi in cover:
        assert propagates(fds, view, phi)


@pytest.mark.parametrize("seed", SEEDS)
def test_cover_many_shares_and_agrees(seed):
    """``cover_many`` equals per-view covers; repeats hit the memo."""
    attrs, fds, projection, view = _fd_projection_workload(seed)
    rng = random.Random(99 + seed)
    other_projection = sorted(rng.sample(attrs, len(attrs) - 1))
    schema = DatabaseSchema([RelationSchema("R", attrs)])
    other = SPCView(
        "V",
        schema,
        [RelationAtom("R", {a: a for a in attrs})],
        projection=other_projection,
    )

    engine = PropagationEngine()
    covers = engine.cover_many(fds, [view, other, view])
    assert [sorted(map(repr, c)) for c in covers[:2]] == [
        sorted(map(repr, engine.cover(fds, v))) for v in (view, other)
    ]
    assert sorted(map(repr, covers[2])) == sorted(map(repr, covers[0]))
    assert engine.stats.cover_hits >= 2  # the repeat + the re-queries


def test_spcu_cover_parity_under_assume_infinite(customer_sigma, customer_view):
    """Cached and uncached covers agree even with non-default settings.

    The SPCU candidate-verification checker must honor the engine's
    ``assume_infinite``/``max_instantiations`` in both modes — a cached
    engine silently verifying with different semantics than the uncached
    one would break every ablation comparison.
    """
    for assume_infinite in (False, True):
        covers = [
            PropagationEngine(
                use_cache=use_cache, assume_infinite=assume_infinite
            ).cover(customer_sigma, customer_view)
            for use_cache in (True, False)
        ]
        assert sorted(map(repr, covers[0])) == sorted(map(repr, covers[1]))


def test_fast_path_verdicts_match_chase(seed=7):
    """Force both routes on one workload: fast path vs raw chase."""
    attrs, fds, projection, view = _fd_projection_workload(seed)
    rng = random.Random(seed)
    queries = []
    for _ in range(20):
        lhs = tuple(rng.sample(projection, rng.randint(1, 2)))
        rhs = rng.choice(projection)
        queries.append(FD("V", lhs, (rhs,)))

    engine = PropagationEngine()
    verdicts = engine.check_many(fds, view, queries)
    assert engine.stats.closure_fast_path > 0
    assert engine.stats.chase_invocations == 0
    assert verdicts == [propagates(fds, view, q) for q in queries]
