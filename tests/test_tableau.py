"""Tableau representations of SPC views."""

import pytest

from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.chase import SymbolicInstance, SymVar, VarFactory
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.tableau import Tableau, materialize_branch


@pytest.fixture
def db():
    return DatabaseSchema(
        [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
    )


class TestMaterializeBranch:
    def test_one_row_per_atom(self, db):
        atoms = [
            RelationAtom("R", {"A": "a", "B": "b"}),
            RelationAtom("S", {"C": "c", "D": "d"}),
        ]
        view = SPCView("V", db, atoms)
        instance = SymbolicInstance()
        cells = materialize_branch(view, instance, VarFactory())
        assert len(instance.rows("R")) == 1
        assert len(instance.rows("S")) == 1
        assert set(cells) == {"a", "b", "c", "d"}

    def test_const_selection_binds_cell(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, [ConstEq("a", 7)])
        instance = SymbolicInstance()
        cells = materialize_branch(view, instance, VarFactory())
        assert instance.resolve(cells["a"]) == 7

    def test_attr_eq_unifies_cells(self, db):
        atoms = [
            RelationAtom("R", {"A": "a", "B": "b"}),
            RelationAtom("S", {"C": "c", "D": "d"}),
        ]
        view = SPCView("V", db, atoms, [AttrEq("b", "c")])
        instance = SymbolicInstance()
        cells = materialize_branch(view, instance, VarFactory())
        assert instance.resolve(cells["b"]) == instance.resolve(cells["c"])

    def test_contradictory_selection_returns_none(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, [ConstEq("a", 1), ConstEq("a", 2)])
        assert materialize_branch(view, SymbolicInstance(), VarFactory()) is None

    def test_unsatisfiable_flag_returns_none(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, unsatisfiable=True)
        assert materialize_branch(view, SymbolicInstance(), VarFactory()) is None

    def test_constants_in_cells(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView(
            "V", db, atoms, projection=["a", "CC"], constants={"CC": "44"}
        )
        instance = SymbolicInstance()
        cells = materialize_branch(view, instance, VarFactory())
        assert cells["CC"] == "44"

    def test_same_relation_twice_gives_two_rows(self, db):
        atoms = [
            RelationAtom("R", {"A": "x.A", "B": "x.B"}),
            RelationAtom("R", {"A": "y.A", "B": "y.B"}),
        ]
        view = SPCView("V", db, atoms)
        instance = SymbolicInstance()
        materialize_branch(view, instance, VarFactory())
        assert len(instance.rows("R")) == 2

    def test_finite_domains_flow_to_variables(self):
        from repro.core.domains import BOOL
        from repro.core.schema import Attribute

        db = DatabaseSchema([RelationSchema("R", [Attribute("A", BOOL)])])
        view = SPCView("V", db, [RelationAtom("R", {"A": "a"})])
        instance = SymbolicInstance()
        cells = materialize_branch(view, instance, VarFactory())
        var = instance.resolve(cells["a"])
        assert isinstance(var, SymVar) and var.domain.is_finite


class TestTableau:
    def test_of_view_summary_covers_projection(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, projection=["a"])
        tableau = Tableau.of_view(view)
        assert set(tableau.summary) == {"a"}
        assert "R" in tableau.tables

    def test_empty_view_tableau(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, [ConstEq("a", 1), ConstEq("a", 2)])
        assert Tableau.of_view(view).is_empty_view

    def test_distinguished_variable_appears_in_table(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, projection=["a"])
        tableau = Tableau.of_view(view)
        summary_value = tableau.summary["a"]
        assert summary_value in tableau.tables["R"][0].values()
