"""General-setting propagation covers (finite-domain case analysis)."""

import pytest

from repro import CFD, DatabaseSchema, FD, RelationSchema, SPCView, implies
from repro.algebra.spc import RelationAtom
from repro.core.domains import BOOL, finite
from repro.core.schema import Attribute
from repro.propagation import (
    prop_cfd_spc,
    prop_cfd_spc_general,
    propagates_general,
)


def _identity_view(db):
    relation = next(iter(db))
    atoms = [RelationAtom(relation.name, {a: a for a in relation.attribute_names})]
    return SPCView("V", db, atoms)


class TestCaseAnalysis:
    @pytest.fixture
    def bool_db(self):
        return DatabaseSchema(
            [
                RelationSchema(
                    "R", [Attribute("A", BOOL), Attribute("B"), Attribute("C")]
                )
            ]
        )

    def test_boolean_exhaustion_found(self, bool_db):
        view = _identity_view(bool_db)
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
        ]
        base = prop_cfd_spc(sigma, view)
        general = prop_cfd_spc_general(sigma, view)
        target = CFD.constant("V", "B", "b")
        assert not implies(base, target)       # invisible to the base algorithm
        assert implies(general, target)        # found by case analysis
        assert propagates_general(sigma, view, target)

    def test_partial_exhaustion_not_claimed(self, bool_db):
        view = _identity_view(bool_db)
        sigma = [CFD("R", {"A": False}, {"B": "b"})]
        general = prop_cfd_spc_general(sigma, view)
        assert not implies(general, CFD.constant("V", "B", "b"))

    def test_pair_facts_do_not_case_split(self, bool_db):
        """C -> B holding on each slice A=F / A=T does NOT make it hold
        globally: a violating pair can span the two slices.  The harvest
        must not admit it (the exact verifier rejects the candidate)."""
        view = _identity_view(bool_db)
        sigma = [
            CFD("R", {"A": False, "C": "_"}, {"B": "_"}),
            CFD("R", {"A": True, "C": "_"}, {"B": "_"}),
        ]
        target = CFD("V", {"C": "_"}, {"B": "_"})
        assert not propagates_general(sigma, view, target)
        general = prop_cfd_spc_general(sigma, view)
        assert not implies(general, target)

    def test_constant_facts_case_split_soundly(self, bool_db):
        """Constant-RHS facts have single-tuple semantics, so slice-wise
        derivation IS sound: every tuple has A in {F, T}."""
        view = _identity_view(bool_db)
        sigma = [
            CFD("R", {"A": False, "C": "c"}, {"B": "b"}),
            CFD("R", {"A": True, "C": "c"}, {"B": "b"}),
        ]
        target = CFD("V", {"C": "c"}, {"B": "b"})
        assert propagates_general(sigma, view, target)
        general = prop_cfd_spc_general(sigma, view)
        assert implies(general, target)
        assert not implies(prop_cfd_spc(sigma, view), target)

    def test_three_valued_domain(self):
        dom3 = finite("d3", ["x", "y", "z"])
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", dom3), Attribute("B")])]
        )
        view = _identity_view(db)
        sigma = [
            CFD("R", {"A": v}, {"B": "b"}) for v in ("x", "y", "z")
        ]
        general = prop_cfd_spc_general(sigma, view)
        assert implies(general, CFD.constant("V", "B", "b"))

    def test_domain_size_bound_respected(self):
        big = finite("big", [f"v{i}" for i in range(10)])
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", big), Attribute("B")])]
        )
        view = _identity_view(db)
        sigma = [CFD("R", {"A": f"v{i}"}, {"B": "b"}) for i in range(10)]
        # Domain bigger than the bound: the split is skipped (sound, less
        # complete) and the base cover is returned.
        general = prop_cfd_spc_general(sigma, view, max_domain_size=4)
        assert not implies(general, CFD.constant("V", "B", "b"))
        full = prop_cfd_spc_general(sigma, view, max_domain_size=10)
        assert implies(full, CFD.constant("V", "B", "b"))

    def test_infinite_schema_reduces_to_base(self):
        db = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
        view = _identity_view(db)
        sigma = [FD("R", ("A",), ("B",))]
        from repro.core.implication import equivalent

        assert equivalent(
            prop_cfd_spc_general(sigma, view), prop_cfd_spc(sigma, view)
        )

    def test_every_member_passes_general_check(self, bool_db):
        view = _identity_view(bool_db)
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
            FD("R", ("C",), ("A",)),
        ]
        general = prop_cfd_spc_general(sigma, view)
        for phi in general:
            assert propagates_general(sigma, view, phi), f"{phi} unsound"
