"""Data cleaning: violation detection and greedy repair."""

import pytest

from repro import CFD, DatabaseInstance, DatabaseSchema, FD, RelationSchema
from repro.cleaning import (
    RepairFailed,
    detect,
    detect_in_rows,
    repair,
    summarize,
)


@pytest.fixture
def db():
    schema = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
    return DatabaseInstance(
        schema,
        {
            "R": [
                {"A": 1, "B": "x", "C": "p"},
                {"A": 1, "B": "y", "C": "p"},  # conflicts on B given A
                {"A": 2, "B": "z", "C": "q"},
            ]
        },
    )


class TestDetect:
    def test_conflict_violation(self, db):
        violations = detect([FD("R", ("A",), ("B",))], db)
        assert len(violations) == 1
        assert violations[0].kind == "conflict"
        assert len(violations[0].tuples) == 2

    def test_constant_violation(self, db):
        rule = CFD("R", {"A": 2}, {"C": "qq"})
        violations = detect([rule], db)
        assert len(violations) == 1
        assert violations[0].kind == "constant"

    def test_equality_violation(self, db):
        rule = CFD.equality("R", "B", "C")
        violations = detect([rule], db)
        assert len(violations) == 3
        assert all(v.kind == "equality" for v in violations)

    def test_clean_data_no_violations(self, db):
        assert detect([FD("R", ("A", "B"), ("C",))], db) == []

    def test_unknown_relation_raises(self, db):
        with pytest.raises(KeyError):
            detect([FD("S", ("A",), ("B",))], db)

    def test_detect_in_rows(self):
        rows = [{"A": 1, "B": 1}, {"A": 1, "B": 2}]
        violations = detect_in_rows([CFD("R", {"A": "_"}, {"B": "_"})], rows)
        assert len(violations) == 1

    def test_general_form_rules_normalized(self, db):
        rule = CFD("R", {"A": "_"}, {"B": "_", "C": "_"})
        violations = detect([rule], db)
        # B conflicts; C agrees — exactly one normalized rule fires.
        assert len(violations) == 1
        assert violations[0].rule.rhs_attr == "B"


class TestSummarize:
    def test_aggregates_by_rule(self, db):
        rules = [FD("R", ("A",), ("B",)), CFD("R", {"A": 2}, {"C": "qq"})]
        summaries = summarize(detect(rules, db))
        assert len(summaries) == 2
        totals = {s.rule.rhs_attr: s.total for s in summaries}
        assert totals == {"B": 1, "C": 1}

    def test_dirty_tuples_deduplicated(self, db):
        summaries = summarize(detect([FD("R", ("A",), ("B",))], db))
        assert summaries[0].dirty_tuples == 2

    def test_sorted_by_total(self, db):
        rules = [
            CFD.equality("R", "B", "C"),  # 3 violations
            FD("R", ("A",), ("B",)),      # 1 violation
        ]
        summaries = summarize(detect(rules, db))
        assert summaries[0].total >= summaries[-1].total


class TestRepair:
    def test_repair_produces_clean_instance(self, db):
        rules = [FD("R", ("A",), ("B",)), CFD("R", {"A": 2}, {"C": "qq"})]
        fixed, edits = repair(rules, db)
        assert detect(rules, fixed) == []
        assert len(edits) >= 2

    def test_original_untouched(self, db):
        rules = [FD("R", ("A",), ("B",))]
        before = [dict(r) for r in db.relation("R").rows]
        repair(rules, db)
        assert db.relation("R").rows == before

    def test_edit_log_records_values(self, db):
        rules = [CFD("R", {"A": 2}, {"C": "qq"})]
        _, edits = repair(rules, db)
        assert len(edits) == 1
        assert edits[0].attribute == "C"
        assert edits[0].old_value == "q"
        assert edits[0].new_value == "qq"

    def test_cascading_rules_converge(self, db):
        rules = [
            FD("R", ("A",), ("B",)),
            FD("R", ("B",), ("C",)),
        ]
        fixed, _ = repair(rules, db)
        assert detect(rules, fixed) == []

    def test_equality_rule_repaired(self, db):
        rules = [CFD.equality("R", "B", "C")]
        fixed, _ = repair(rules, db)
        assert detect(rules, fixed) == []
        for row in fixed.relation("R"):
            assert row["B"] == row["C"]

    def test_unsatisfiable_rules_raise(self, db):
        rules = [
            CFD.constant("R", "C", "v1"),
            CFD.constant("R", "C", "v2"),
        ]
        with pytest.raises(RepairFailed):
            repair(rules, db, max_rounds=10)

    def test_clean_input_needs_no_edits(self, db):
        rules = [FD("R", ("A", "B"), ("C",))]
        fixed, edits = repair(rules, db)
        assert edits == []
        assert len(fixed.relation("R")) == len(db.relation("R"))
