"""Propagation covers for SPCU views (the union extension)."""

import pytest

from repro import (
    CFD,
    DatabaseSchema,
    FD,
    RelationRef,
    RelationSchema,
    SPCUView,
    Union,
    implies,
    propagates,
)
from repro.propagation import branch_guards, prop_cfd_spcu


class TestExample11Cover:
    def test_recovers_phi1_through_phi5(self, customer_sigma, customer_view):
        cover = prop_cfd_spcu(customer_sigma, customer_view)
        expected = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),     # phi1
            CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"}),        # phi2
            CFD("R", {"CC": "31", "AC": "_"}, {"city": "_"}),        # phi3
            CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"}),     # phi4
            CFD("R", {"CC": "31", "AC": "20"}, {"city": "Amsterdam"}),  # phi5
        ]
        for phi in expected:
            assert implies(cover, phi), f"{phi} not derivable from cover"

    def test_does_not_overclaim(self, customer_sigma, customer_view):
        cover = prop_cfd_spcu(customer_sigma, customer_view)
        bad = [
            CFD("R", {"zip": "_"}, {"street": "_"}),      # f1 unguarded
            CFD("R", {"AC": "_"}, {"city": "_"}),         # cross-country
            CFD("R", {"CC": "01", "zip": "_"}, {"street": "_"}),  # US zip
        ]
        for phi in bad:
            assert not implies(cover, phi), f"{phi} wrongly derivable"

    def test_cover_members_sound(self, customer_sigma, customer_view):
        cover = prop_cfd_spcu(customer_sigma, customer_view)
        for phi in cover:
            assert propagates(customer_sigma, customer_view, phi)


class TestBranchGuards:
    def test_constant_tags_detected(self, customer_view):
        guards = [branch_guards(b) for b in customer_view.branches]
        assert {"CC": "44"} in guards
        assert {"CC": "01"} in guards
        assert {"CC": "31"} in guards

    def test_unguarded_branch(self):
        db = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        from repro.algebra.spc import RelationAtom, SPCView

        view = SPCView("V", db, [RelationAtom("R", {"A": "A", "B": "B"})])
        assert branch_guards(view) == {}


class TestPlainUnions:
    def test_same_relation_twice_keeps_dependency(self):
        db = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        view = SPCUView.from_expr(
            Union(RelationRef("R"), RelationRef("R")), db
        )
        cover = prop_cfd_spcu([FD("R", ("A",), ("B",))], view)
        assert implies(cover, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_untagged_disjoint_relations_lose_dependency(self):
        db = DatabaseSchema(
            [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["A", "B"])]
        )
        view = SPCUView.from_expr(Union(RelationRef("R"), RelationRef("S")), db)
        sigma = [FD("R", ("A",), ("B",)), FD("S", ("A",), ("B",))]
        cover = prop_cfd_spcu(sigma, view)
        # Without distinguishing tags the FD cannot be guarded back in.
        assert not implies(cover, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_single_branch_matches_spc_cover(self):
        from repro.propagation import prop_cfd_spc
        from repro.core.implication import equivalent

        db = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
        from repro.algebra.ops import Projection

        spcu = SPCUView.from_expr(
            Projection(RelationRef("R"), ["A", "C"]), db
        )
        sigma = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        union_cover = prop_cfd_spcu(sigma, spcu)
        spc_cover = prop_cfd_spc(sigma, spcu.branches[0])
        assert equivalent(union_cover, spc_cover)
