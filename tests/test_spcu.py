"""SPCU normal form: union lifting and evaluation."""

import pytest

from repro.algebra.eval import evaluate
from repro.algebra.instance import DatabaseInstance
from repro.algebra.ops import (
    ConstantRelation,
    Product,
    Projection,
    RelationRef,
    Selection,
    Union,
    ConstEq,
)
from repro.algebra.spc import SPCView
from repro.algebra.spcu import SPCUView, _lift_unions
from repro.core.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    return DatabaseSchema(
        [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["A", "B"])]
    )


@pytest.fixture
def instance(db):
    return DatabaseInstance(
        db,
        {
            "R": [{"A": 1, "B": 2}],
            "S": [{"A": 3, "B": 4}, {"A": 1, "B": 2}],
        },
    )


def _rows(relation):
    return sorted(tuple(sorted(r.items())) for r in relation.rows)


class TestLifting:
    def test_union_of_relations(self, db):
        expr = Union(RelationRef("R"), RelationRef("S"))
        assert len(_lift_unions(expr)) == 2

    def test_selection_distributes(self, db):
        expr = Selection(Union(RelationRef("R"), RelationRef("S")), [ConstEq("A", 1)])
        branches = _lift_unions(expr)
        assert len(branches) == 2
        assert all(isinstance(b, Selection) for b in branches)

    def test_product_distributes_pairwise(self, db):
        u = Union(RelationRef("R"), RelationRef("S"))
        expr = Product(ConstantRelation({"CC": "x"}), u)
        assert len(_lift_unions(expr)) == 2

    def test_nested_unions_flatten(self, db):
        expr = Union(Union(RelationRef("R"), RelationRef("S")), RelationRef("R"))
        assert len(_lift_unions(expr)) == 3


class TestSPCUView:
    def test_union_compatibility_enforced(self, db):
        v1 = SPCView.from_expr(Projection(RelationRef("R"), ["A"]), db)
        v2 = SPCView.from_expr(Projection(RelationRef("S"), ["B"]), db)
        with pytest.raises(ValueError):
            SPCUView("V", [v1, v2])

    def test_at_least_one_branch(self):
        with pytest.raises(ValueError):
            SPCUView("V", [])

    def test_evaluation_removes_duplicates(self, db, instance):
        expr = Union(RelationRef("R"), RelationRef("S"))
        view = SPCUView.from_expr(expr, db)
        assert len(view.evaluate(instance)) == 2  # (1,2) appears in both

    def test_evaluation_matches_direct_eval(self, db, instance):
        expr = Selection(
            Union(RelationRef("R"), RelationRef("S")), [ConstEq("B", 2)]
        )
        view = SPCUView.from_expr(expr, db)
        assert _rows(view.evaluate(instance)) == _rows(
            evaluate(expr, instance, "V")
        )

    def test_from_spc_wraps_single_branch(self, db):
        v = SPCView.from_expr(Projection(RelationRef("R"), ["A"]), db)
        wrapped = SPCUView.from_spc(v)
        assert len(wrapped.branches) == 1
        assert wrapped.projection == ["A"]

    def test_example_1_1_shape(self, customer_view):
        assert len(customer_view.branches) == 3
        assert "CC" in customer_view.projection
