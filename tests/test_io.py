"""JSON serialization round trips."""

import pytest

from repro import (
    CFD,
    DatabaseInstance,
    DatabaseSchema,
    FD,
    RelationSchema,
    SPCView,
    SPCUView,
)
from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom
from repro.core.domains import BOOL, STRING, finite
from repro.core.schema import Attribute
from repro import io as repro_io


class TestDomains:
    def test_builtin_round_trip(self):
        for name in ("string", "int", "real", "bool"):
            domain = repro_io.domain_from_json(name)
            assert repro_io.domain_to_json(domain) == name

    def test_custom_finite_round_trip(self):
        doc = {"name": "status", "values": ["open", "closed"]}
        domain = repro_io.domain_from_json(doc)
        assert domain.is_finite and domain.size == 2
        assert repro_io.domain_to_json(domain) == doc

    def test_unknown_builtin_rejected(self):
        with pytest.raises(repro_io.FormatError):
            repro_io.domain_from_json("quux")


class TestSchema:
    def test_round_trip(self):
        schema = DatabaseSchema(
            [
                RelationSchema(
                    "R", [Attribute("A", STRING), Attribute("B", BOOL)]
                ),
                RelationSchema("S", [Attribute("C", finite("f2", [1, 2]))]),
            ]
        )
        doc = repro_io.schema_to_json(schema)
        back = repro_io.schema_from_json(doc)
        assert back.relation("R").domain_of("B").is_finite
        assert back.relation("S").domain_of("C").size == 2

    def test_bare_string_attributes(self):
        schema = repro_io.schema_from_json(
            {"relations": [{"name": "R", "attributes": ["A", "B"]}]}
        )
        assert schema.relation("R").attribute_names == ("A", "B")


class TestDependencies:
    @pytest.mark.parametrize(
        "dep",
        [
            FD("R", ("A", "B"), ("C",)),
            CFD("R", {"A": "44", "B": "_"}, {"C": "_"}),
            CFD("R", {"A": "_"}, {"B": "b", "C": "_"}),
            CFD.equality("R", "A", "B"),
            CFD.constant("R", "A", "x"),
        ],
    )
    def test_round_trip(self, dep):
        doc = repro_io.dependency_to_json(dep)
        assert repro_io.dependency_from_json(doc) == dep

    def test_literal_underscore_constant(self):
        from repro.core.values import Const

        dep = CFD("R", {"A": Const("_")}, {"B": "_"})
        doc = repro_io.dependency_to_json(dep)
        assert doc["lhs"]["A"] == {"const": "_"}
        assert repro_io.dependency_from_json(doc) == dep

    def test_unknown_kind_rejected(self):
        with pytest.raises(repro_io.FormatError):
            repro_io.dependency_from_json({"kind": "nope", "relation": "R"})

    def test_list_round_trip(self):
        deps = [FD("R", ("A",), ("B",)), CFD("R", {"A": "1"}, {"B": "2"})]
        docs = repro_io.dependencies_to_json(deps)
        assert repro_io.dependencies_from_json(docs) == deps


class TestViews:
    @pytest.fixture
    def schema(self):
        return DatabaseSchema(
            [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
        )

    def test_spc_round_trip(self, schema):
        view = SPCView(
            "V",
            schema,
            [
                RelationAtom("R", {"A": "x.A", "B": "x.B"}),
                RelationAtom("S", {"C": "y.C", "D": "y.D"}),
            ],
            [AttrEq("x.B", "y.C"), ConstEq("x.A", 5)],
            ["x.A", "y.D", "CC"],
            {"CC": "44"},
        )
        doc = repro_io.spc_view_to_json(view)
        back = repro_io.spc_view_from_json(doc, schema)
        assert back.projection == view.projection
        assert back.selection == view.selection
        assert back.constants == view.constants
        assert [a.mapping for a in back.atoms] == [a.mapping for a in view.atoms]

    def test_prefix_shorthand(self, schema):
        doc = {
            "name": "V",
            "atoms": [{"source": "R", "prefix": "t0."}],
            "projection": ["t0.A"],
        }
        view = repro_io.spc_view_from_json(doc, schema)
        assert view.atoms[0].mapping_dict == {"A": "t0.A", "B": "t0.B"}

    def test_spcu_round_trip(self, schema):
        branches = [
            SPCView("V", schema, [RelationAtom("R", {"A": "A", "B": "B"})]),
            SPCView("V", schema, [RelationAtom("R", {"A": "A", "B": "B"})],
                    [ConstEq("A", 1)]),
        ]
        view = SPCUView("V", branches)
        doc = repro_io.view_to_json(view)
        back = repro_io.view_from_json(doc, schema)
        assert isinstance(back, SPCUView)
        assert len(back.branches) == 2

    def test_view_dispatch(self, schema):
        spc_doc = {"name": "V", "atoms": [{"source": "R", "prefix": ""}]}
        assert isinstance(repro_io.view_from_json(spc_doc, schema), SPCView)


class TestInstances:
    def test_round_trip(self):
        schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        db = DatabaseInstance(schema, {"R": [{"A": 1, "B": 2}]})
        doc = repro_io.instance_to_json(db)
        back = repro_io.instance_from_json(doc, schema)
        assert back.relation("R").rows == [{"A": 1, "B": 2}]


class TestFiles:
    def test_load_dump(self, tmp_path):
        path = tmp_path / "doc.json"
        repro_io.dump_json({"hello": [1, 2]}, path)
        assert repro_io.load_json(path) == {"hello": [1, 2]}
