"""The asyncio server: in-process TCP round trips and a real subprocess.

Two layers of evidence:

1. *In-process TCP* — an asyncio client drives a
   :class:`repro.api.PropagationServer` over a real socket inside one
   event loop: register, check, cover, empty, batch, stats, protocol
   errors, shutdown.
2. *End-to-end subprocess* — ``repro serve`` launched exactly as a user
   would, answering the Example 4.1 batch over stdio.  The acceptance
   assertion lives here: the **second** identical batch is served from
   the warm engine with **zero chases**, and the verdicts match the
   in-process service answers.
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path

from repro import io as repro_io
from repro.api import (
    CheckRequest,
    PROTOCOL_VERSION,
    PropagationServer,
    PropagationService,
    Workspace,
)
from repro.propagation.closure_baseline import (
    example_41_workload,
    exponential_family_schema,
)

_SRC = str(Path(__file__).resolve().parent.parent / "src")

#: The CI server matrix sets REPRO_JOBS=2 on one leg; default sequential.
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")

SCHEMA_DOC = {"relations": [{"name": "R", "attributes": ["A", "B", "C", "D"]}]}
SIGMA_DOC = [
    {"kind": "fd", "relation": "R", "lhs": ["A"], "rhs": ["B"]},
    {"kind": "fd", "relation": "R", "lhs": ["B"], "rhs": ["C"]},
]
VIEW_DOC = {
    "name": "V",
    "atoms": [{"source": "R", "prefix": ""}],
    "projection": ["A", "C", "D"],
}
PHI_DOCS = [
    {"kind": "fd", "relation": "V", "lhs": ["A"], "rhs": ["C"]},
    {"kind": "fd", "relation": "V", "lhs": ["C"], "rhs": ["A"]},
]


# ----------------------------------------------------------------------
# In-process asyncio TCP.
# ----------------------------------------------------------------------


class _TcpClient:
    def __init__(self, reader, writer):
        self.reader, self.writer = reader, writer

    async def call(self, doc: dict) -> dict:
        self.writer.write((json.dumps(doc) + "\n").encode())
        await self.writer.drain()
        line = await asyncio.wait_for(self.reader.readline(), timeout=30)
        return json.loads(line)


async def _with_tcp_server(scenario):
    with PropagationService(Workspace(), jobs=JOBS) as service:
        server = PropagationServer(service)
        tcp = await asyncio.start_server(server.handle_connection, "127.0.0.1", 0)
        port = tcp.sockets[0].getsockname()[1]
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            return await scenario(_TcpClient(reader, writer), service)
        finally:
            writer.close()
            tcp.close()
            await tcp.wait_closed()


def test_tcp_round_trip_matches_in_process_answers():
    async def scenario(client, service):
        pong = (await client.call({"id": 0, "op": "ping"}))["result"]
        assert pong["pong"] is True
        assert pong["protocol"] == PROTOCOL_VERSION
        assert pong["shard_worker"] is False  # not started with --shard-worker
        for kind, name, doc in [
            ("schema", "default", SCHEMA_DOC),
            ("sigma", "default", SIGMA_DOC),
            ("view", "V", VIEW_DOC),
        ]:
            reply = await client.call(
                {"id": 1, "op": "register", "kind": kind, "name": name, "doc": doc}
            )
            assert reply["ok"], reply

        reply = await client.call(
            {"id": 2, "op": "check", "view": "V", "phis": PHI_DOCS}
        )
        assert reply["ok"] and reply["id"] == 2
        expected = service.check(
            CheckRequest(
                view="V", targets=repro_io.dependencies_from_json(PHI_DOCS)
            )
        )
        assert reply["result"]["propagated"] == expected.propagated == [True, False]
        assert reply["result"]["route"] == expected.route

        reply = await client.call({"id": 3, "op": "cover", "view": "V"})
        assert reply["ok"]
        assert reply["result"]["cover"]  # nonempty dependency documents

        reply = await client.call({"id": 4, "op": "empty", "view": "V"})
        assert reply["ok"] and reply["result"]["empty"] is False

        reply = await client.call(
            {
                "id": 5,
                "op": "batch",
                "requests": [
                    {"op": "check", "view": "V", "phis": PHI_DOCS},
                    {"op": "empty", "view": "V"},
                ],
            }
        )
        assert reply["ok"]
        assert reply["result"]["results"][0]["propagated"] == [True, False]
        assert reply["result"]["results"][0]["stats"]["memo_hits"] == 2  # warm

        reply = await client.call({"id": 6, "op": "stats"})
        assert "EngineStats" in reply["result"]["engine"]
        assert reply["result"]["workspace"]["views"] == ["V"]

    asyncio.run(_with_tcp_server(scenario))


def test_tcp_protocol_errors_are_documents_not_disconnects():
    async def scenario(client, service):
        reply = await client.call({"id": 9, "op": "no-such-op"})
        assert reply == {
            "id": 9,
            "op": "no-such-op",
            "ok": False,
            "error": {"kind": "bad-request", "message": "unknown op 'no-such-op'"},
        }

        reply = await client.call({"id": 10, "op": "check", "view": "ghost"})
        assert not reply["ok"]
        assert reply["error"]["kind"] == "not-found"

        # Invalid JSON: the connection survives and answers the next call.
        client.writer.write(b"{nonsense\n")
        await client.writer.drain()
        line = await asyncio.wait_for(client.reader.readline(), timeout=30)
        broken = json.loads(line)
        assert not broken["ok"] and broken["error"]["kind"] == "bad-request"
        assert (await client.call({"op": "ping"}))["ok"]

        # Malformed dependency documents map to the format kind.
        reply = await client.call(
            {
                "op": "register",
                "kind": "sigma",
                "name": "bad",
                "doc": [{"kind": "who-knows"}],
            }
        )
        assert not reply["ok"] and reply["error"]["kind"] == "format"

    asyncio.run(_with_tcp_server(scenario))


def test_inline_view_and_sigma_documents():
    async def scenario(client, service):
        await client.call(
            {"op": "register", "kind": "schema", "name": "default", "doc": SCHEMA_DOC}
        )
        reply = await client.call(
            {
                "op": "check",
                "view": VIEW_DOC,  # inline, parsed against the named schema
                "sigma": SIGMA_DOC,  # inline dependency list
                "phis": PHI_DOCS,
            }
        )
        assert reply["ok"], reply
        assert reply["result"]["propagated"] == [True, False]

    asyncio.run(_with_tcp_server(scenario))


# ----------------------------------------------------------------------
# End-to-end: the real CLI subprocess over stdio.
# ----------------------------------------------------------------------


def _serve_files(tmp_path: Path, n: int) -> tuple[list[str], list[dict]]:
    """Write the Example 4.1 workload files; returns (args, phi docs)."""
    view, sigma, queries = example_41_workload(n, defeat_fast_path=True)
    paths = {
        "schema": tmp_path / "schema.json",
        "sigma": tmp_path / "sigma.json",
        "view": tmp_path / "view.json",
    }
    repro_io.dump_json(
        repro_io.schema_to_json(exponential_family_schema(n)), paths["schema"]
    )
    repro_io.dump_json(repro_io.dependencies_to_json(sigma), paths["sigma"])
    repro_io.dump_json(repro_io.spc_view_to_json(view), paths["view"])
    args = [
        "--schema", str(paths["schema"]),
        "--sigma", str(paths["sigma"]),
        "--view", str(paths["view"]),
        "--jobs", str(JOBS),
    ]
    return args, repro_io.dependencies_to_json(queries)


def _run_serve(args: list[str], request_lines: list[dict], timeout=120):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", *args],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )
    payload = "\n".join(json.dumps(doc) for doc in request_lines) + "\n"
    out, err = proc.communicate(payload, timeout=timeout)
    assert proc.returncode == 0, err
    return [json.loads(line) for line in out.splitlines() if line.strip()]


def test_serve_answers_warm_example_41_batch_with_zero_chases(tmp_path):
    """The acceptance experiment: one warm engine across repeated batches."""
    args, phis = _serve_files(tmp_path, 3)
    batch = {"op": "check", "view": "V", "phis": phis}
    replies = _run_serve(
        args,
        [
            {"id": "cold", **batch},
            {"id": "warm", **batch},
            {"id": "bye", "op": "shutdown"},
        ],
    )
    cold, warm, bye = replies
    assert cold["ok"] and warm["ok"] and bye["ok"]

    # The in-process service is the oracle for the verdicts.
    view, sigma, queries = example_41_workload(3, defeat_fast_path=True)
    workspace = Workspace()
    workspace.add_view("V", view)
    workspace.add_sigma("default", sigma)
    with PropagationService(workspace, jobs=JOBS) as service:
        expected = service.check(CheckRequest(view="V", targets=queries))
    assert cold["result"]["propagated"] == expected.propagated
    assert warm["result"]["propagated"] == expected.propagated

    assert cold["result"]["stats"]["chases"] > 0
    assert warm["result"]["stats"]["chases"] == 0  # the warm leg
    assert warm["result"]["stats"]["memo_hits"] == len(phis)


# ----------------------------------------------------------------------
# Per-engine-pool locks: different settings no longer serialize.
# ----------------------------------------------------------------------


def test_requests_on_different_engine_pools_run_concurrently():
    """A request stalled on one engine pool must not block requests
    routed to another pool (the old single request-granularity lock
    would deadlock this scenario; per-pool locks let the default-pool
    request finish while the no-cache pool is stuck)."""
    import threading

    release = threading.Event()
    entered = threading.Event()

    class StallingService(PropagationService):
        def check(self, request):
            if request.use_cache is False:  # the slow pool
                entered.set()
                assert release.wait(timeout=30), "never released"
            return super().check(request)

    async def scenario():
        with StallingService(Workspace()) as service:
            for kind, name, doc in [
                ("schema", "default", SCHEMA_DOC),
                ("sigma", "default", SIGMA_DOC),
                ("view", "V", VIEW_DOC),
            ]:
                getattr(service.workspace, f"add_{kind}")(name, doc)
            server = PropagationServer(service)
            tcp = await asyncio.start_server(
                server.handle_connection, "127.0.0.1", 0
            )
            port = tcp.sockets[0].getsockname()[1]
            slow = _TcpClient(*await asyncio.open_connection("127.0.0.1", port))
            fast = _TcpClient(*await asyncio.open_connection("127.0.0.1", port))
            try:
                # The slow request enters its pool and stalls there.
                slow.writer.write(
                    (
                        json.dumps(
                            {
                                "id": "slow",
                                "op": "check",
                                "view": "V",
                                "phis": PHI_DOCS,
                                "use_cache": False,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                await slow.writer.drain()
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait, 30
                )
                assert entered.is_set()

                # A default-pool request completes while the other pool
                # is still stuck — the per-pool locks at work.
                reply = await asyncio.wait_for(
                    fast.call(
                        {"id": "fast", "op": "check", "view": "V", "phis": PHI_DOCS}
                    ),
                    timeout=30,
                )
                assert reply["ok"] and reply["id"] == "fast"
                assert not release.is_set()

                release.set()
                line = await asyncio.wait_for(slow.reader.readline(), timeout=30)
                stalled = json.loads(line)
                assert stalled["ok"] and stalled["id"] == "slow"
                assert stalled["result"]["propagated"] == reply["result"]["propagated"]
            finally:
                release.set()
                slow.writer.close()
                fast.writer.close()
                tcp.close()
                await tcp.wait_closed()

    asyncio.run(scenario())


def test_workspace_mutations_are_exclusive_across_pools():
    """register waits for in-flight requests on *every* pool and blocks
    new ones, so a mutation never interleaves with a running query."""
    import threading

    release = threading.Event()
    entered = threading.Event()

    class StallingService(PropagationService):
        def check(self, request):
            if request.use_cache is False:
                entered.set()
                assert release.wait(timeout=30), "never released"
            return super().check(request)

    async def scenario():
        with StallingService(Workspace()) as service:
            for kind, name, doc in [
                ("schema", "default", SCHEMA_DOC),
                ("sigma", "default", SIGMA_DOC),
                ("view", "V", VIEW_DOC),
            ]:
                getattr(service.workspace, f"add_{kind}")(name, doc)
            server = PropagationServer(service)
            tcp = await asyncio.start_server(
                server.handle_connection, "127.0.0.1", 0
            )
            port = tcp.sockets[0].getsockname()[1]
            slow = _TcpClient(*await asyncio.open_connection("127.0.0.1", port))
            writer_client = _TcpClient(
                *await asyncio.open_connection("127.0.0.1", port)
            )
            try:
                slow.writer.write(
                    (
                        json.dumps(
                            {
                                "id": "slow",
                                "op": "check",
                                "view": "V",
                                "phis": PHI_DOCS,
                                "use_cache": False,
                            }
                        )
                        + "\n"
                    ).encode()
                )
                await slow.writer.drain()
                await asyncio.get_running_loop().run_in_executor(
                    None, entered.wait, 30
                )

                # The register is queued behind the stalled pool...
                register_future = asyncio.ensure_future(
                    writer_client.call(
                        {
                            "id": "reg",
                            "op": "register",
                            "kind": "sigma",
                            "name": "more",
                            "doc": SIGMA_DOC,
                        }
                    )
                )
                await asyncio.sleep(0.1)
                assert not register_future.done()  # exclusivity held

                release.set()  # ... and completes once the pool drains.
                reply = await asyncio.wait_for(register_future, timeout=30)
                assert reply["ok"] and reply["id"] == "reg"
                line = await asyncio.wait_for(slow.reader.readline(), timeout=30)
                assert json.loads(line)["ok"]
            finally:
                release.set()
                slow.writer.close()
                writer_client.writer.close()
                tcp.close()
                await tcp.wait_closed()

    asyncio.run(scenario())


def test_serve_persistent_store_warms_across_processes(tmp_path):
    """Two server processes sharing --cache-dir: the second starts warm."""
    args, phis = _serve_files(tmp_path, 3)
    args += ["--cache-dir", str(tmp_path / "cache")]
    batch = {"id": 1, "op": "check", "view": "V", "phis": phis}
    first = _run_serve(args, [batch, {"op": "shutdown"}])
    assert first[0]["result"]["stats"]["chases"] > 0

    second = _run_serve(args, [batch, {"op": "shutdown"}])
    assert second[0]["result"]["propagated"] == first[0]["result"]["propagated"]
    assert second[0]["result"]["stats"]["chases"] == 0
    assert second[0]["result"]["stats"]["persistent_hits"] == len(phis)
