"""RA expression trees: schemas, validation, fragment classification."""

import pytest

from repro.algebra.ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Difference,
    Product,
    Projection,
    RelationRef,
    Renaming,
    Selection,
    Union,
    classify,
    operators,
)
from repro.core.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    return DatabaseSchema(
        [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
    )


class TestSchemas:
    def test_relation_ref(self, db):
        assert RelationRef("R").schema(db).attribute_names == ("A", "B")

    def test_projection(self, db):
        expr = Projection(RelationRef("R"), ["B"])
        assert expr.schema(db).attribute_names == ("B",)

    def test_projection_unknown_attribute(self, db):
        with pytest.raises(KeyError):
            Projection(RelationRef("R"), ["Z"]).schema(db)

    def test_selection_keeps_schema(self, db):
        expr = Selection(RelationRef("R"), [AttrEq("A", "B")])
        assert expr.schema(db).attribute_names == ("A", "B")

    def test_selection_unknown_attribute(self, db):
        with pytest.raises(KeyError):
            Selection(RelationRef("R"), [ConstEq("Z", 1)]).schema(db)

    def test_product_concatenates(self, db):
        expr = Product(RelationRef("R"), RelationRef("S"))
        assert expr.schema(db).attribute_names == ("A", "B", "C", "D")

    def test_product_overlap_rejected(self, db):
        with pytest.raises(ValueError):
            Product(RelationRef("R"), RelationRef("R")).schema(db)

    def test_renaming(self, db):
        expr = Renaming(RelationRef("R"), {"A": "X"})
        assert expr.schema(db).attribute_names == ("X", "B")

    def test_renaming_collision_rejected(self, db):
        with pytest.raises(ValueError):
            Renaming(RelationRef("R"), {"A": "B"}).schema(db)

    def test_union_compatibility(self, db):
        Union(RelationRef("R"), RelationRef("R")).schema(db)
        with pytest.raises(ValueError):
            Union(RelationRef("R"), RelationRef("S")).schema(db)

    def test_difference_compatibility(self, db):
        Difference(RelationRef("R"), RelationRef("R")).schema(db)
        with pytest.raises(ValueError):
            Difference(RelationRef("R"), RelationRef("S")).schema(db)

    def test_constant_relation(self, db):
        expr = ConstantRelation({"CC": "44"})
        assert expr.schema(db).attribute_names == ("CC",)
        assert expr.as_dict() == {"CC": "44"}


class TestClassification:
    def test_identity(self):
        assert classify(RelationRef("R")) == "identity"
        assert classify(Renaming(RelationRef("R"), {"A": "X"})) == "identity"

    def test_single_operators(self):
        assert classify(Selection(RelationRef("R"), [])) == "S"
        assert classify(Projection(RelationRef("R"), ["A"])) == "P"
        assert classify(Product(RelationRef("R"), RelationRef("S"))) == "C"

    def test_constant_relation_counts_as_c(self):
        # Q1 of Example 1.1 is a C query: {(CC: 44)} x R1.
        expr = Product(ConstantRelation({"CC": "44"}), RelationRef("R1"))
        assert classify(expr) == "C"

    def test_composites(self):
        sp = Projection(Selection(RelationRef("R"), []), ["A"])
        assert classify(sp) == "SP"
        sc = Selection(Product(RelationRef("R"), RelationRef("S")), [])
        assert classify(sc) == "SC"
        pc = Projection(Product(RelationRef("R"), RelationRef("S")), ["A"])
        assert classify(pc) == "PC"
        spc = Projection(sc, ["A"])
        assert classify(spc) == "SPC"

    def test_union_lifts_to_spcu(self):
        expr = Union(RelationRef("R"), RelationRef("R"))
        assert classify(expr) == "SPCU"

    def test_difference_lifts_to_ra(self):
        expr = Difference(RelationRef("R"), RelationRef("R"))
        assert classify(expr) == "RA"

    def test_operators_set(self):
        expr = Projection(Selection(RelationRef("R"), []), ["A"])
        assert operators(expr) == {"S", "P"}
