"""The textbook closure baseline and the Example 4.1 exponential family."""

import pytest

from repro.core.cfd import CFD
from repro.core.fd import FD, implies as fd_implies
from repro.core.implication import equivalent
from repro.propagation.closure_baseline import (
    closure_projection_cover,
    exponential_family,
)
from repro.propagation.rbr import rbr


class TestClosureCover:
    ATTRS = ("A", "B", "C", "D")

    def test_transitive_shortcut_found(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        cover = closure_projection_cover(fds, "R", self.ATTRS, ("A", "C"))
        assert fd_implies(cover, FD("R", ("A",), ("C",)))
        assert not fd_implies(cover, FD("R", ("C",), ("A",)))

    def test_projection_drops_hidden_fds(self):
        fds = [FD("R", ("A",), ("B",))]
        cover = closure_projection_cover(fds, "R", self.ATTRS, ("C", "D"))
        assert cover == []

    def test_unminimized_output_option(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        raw = closure_projection_cover(
            fds, "R", self.ATTRS, ("A", "B", "C"), minimize=False
        )
        minimized = closure_projection_cover(fds, "R", self.ATTRS, ("A", "B", "C"))
        assert len(raw) >= len(minimized)


class TestExponentialFamily:
    def test_schema_shape(self):
        schema, fds, projection = exponential_family(3)
        assert schema.arity == 3 * 3 + 1
        assert len(fds) == 2 * 3 + 1
        assert len(projection) == 2 * 3 + 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            exponential_family(0)

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_cover_is_exponential(self, n):
        """Every cover contains all 2^n substituted dependencies."""
        schema, fds, projection = exponential_family(n)
        cover = closure_projection_cover(
            fds, "R", schema.attribute_names, projection
        )
        # Count the FDs deriving D: there must be >= 2^n of them.
        deriving_d = [f for f in cover if "D" in f.rhs]
        assert len(deriving_d) >= 2**n

    @pytest.mark.parametrize("n", [1, 2])
    def test_rbr_agrees_with_baseline(self, n):
        schema, fds, projection = exponential_family(n)
        dropped = [a for a in schema.attribute_names if a not in projection]
        via_rbr = rbr([CFD.from_fd(f) for f in fds], dropped)
        baseline = closure_projection_cover(
            fds, "R", schema.attribute_names, projection
        )
        assert equivalent(via_rbr, [CFD.from_fd(f) for f in baseline])
