"""MinCover: minimal covers of CFD sets."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.implication import equivalent, implies
from repro.core.mincover import min_cover, partitioned_min_cover


class TestBasics:
    def test_removes_redundant_cfd(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
            CFD("R", {"A": "_"}, {"C": "_"}),
        ]
        cover = min_cover(sigma)
        assert len(cover) == 2
        assert equivalent(cover, sigma)

    def test_removes_trivial(self):
        assert min_cover([CFD("R", {"A": "_"}, {"A": "_"})]) == []

    def test_keeps_constant_forcing_self_cfd(self):
        phi = CFD("R", {"A": "_"}, {"A": "a"})
        cover = min_cover([phi])
        assert len(cover) == 1
        assert equivalent(cover, [phi])

    def test_normalizes_general_form(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_", "C": "_"})]
        cover = min_cover(sigma)
        assert all(phi.is_normal_form for phi in cover)
        assert len(cover) == 2

    def test_trims_redundant_lhs_attribute(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"A": "_", "B": "_"}, {"C": "_"}),
        ]
        cover = min_cover(sigma)
        assert equivalent(cover, sigma)
        trimmed = [phi for phi in cover if phi.rhs_attr == "C"]
        assert trimmed and len(trimmed[0].lhs) == 1

    def test_trims_lhs_via_constant_self_pairing(self):
        # (A1, A2=c -> A=a): A1 is redundant by self-pairing.
        sigma = [CFD("R", {"A1": "_", "A2": "c"}, {"A": "a"})]
        cover = min_cover(sigma)
        assert cover == [CFD("R", {"A2": "c"}, {"A": "a"})]

    def test_duplicate_cfds_collapse(self):
        phi = CFD("R", {"A": "_"}, {"B": "_"})
        assert len(min_cover([phi, phi, phi])) == 1

    def test_pattern_subsumed_cfd_removed(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"A": "1"}, {"B": "_"}),
        ]
        cover = min_cover(sigma)
        assert cover == [CFD("R", {"A": "_"}, {"B": "_"})]

    def test_multiple_relations_kept_apart(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("S", {"A": "_"}, {"B": "_"}),
        ]
        assert len(min_cover(sigma)) == 2

    def test_equality_cfds_supported(self):
        sigma = [
            CFD.equality("R", "A", "B"),
            CFD.equality("R", "A", "B"),
        ]
        assert len(min_cover(sigma)) == 1

    def test_deterministic(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
            CFD("R", {"A": "_"}, {"C": "_"}),
        ]
        assert min_cover(sigma) == min_cover(list(reversed(sigma)))


ATTRS = ("A", "B", "C", "D")


def _random_cfd(rng: random.Random) -> CFD:
    size = rng.randint(1, 2)
    chosen = rng.sample(ATTRS, size + 1)

    def entry():
        return rng.choice(["_", rng.choice(("0", "1"))])

    return CFD("R", {a: entry() for a in chosen[:-1]}, {chosen[-1]: entry()})


class TestProperties:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_cover_equivalent_to_input(self, seed):
        rng = random.Random(seed)
        sigma = [_random_cfd(rng) for _ in range(rng.randint(1, 6))]
        cover = min_cover(sigma)
        assert equivalent(cover, sigma)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_cover_never_larger_than_normalized_input(self, seed):
        rng = random.Random(seed)
        sigma = [_random_cfd(rng) for _ in range(rng.randint(1, 6))]
        cover = min_cover(sigma)
        normalized = [p for d in sigma for p in d.normalize() if not p.is_trivial()]
        assert len(cover) <= len(set(normalized))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_no_member_implied_by_rest(self, seed):
        rng = random.Random(seed)
        sigma = [_random_cfd(rng) for _ in range(rng.randint(1, 5))]
        cover = min_cover(sigma)
        for phi in cover:
            rest = [other for other in cover if other != phi]
            assert not implies(rest, phi)


class TestPartitioned:
    def test_partition_size_validated(self):
        with pytest.raises(ValueError):
            partitioned_min_cover([], 0)

    def test_partitioned_is_equivalent(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
        ]
        cover = partitioned_min_cover(sigma, 2)
        assert equivalent(cover, sigma)
        assert len(cover) == 2

    def test_partitioned_may_keep_cross_block_redundancy(self):
        # Redundancy spanning blocks is not removed — that is the point
        # of the bounded-cost variant.
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
            CFD("R", {"A": "_"}, {"C": "_"}),
        ]
        cover = partitioned_min_cover(sigma, 1)
        assert len(cover) == 3
