"""CoverReport diagnostics and the growth-triggered intermediate MinCover."""

import pytest

from repro import CFD, DatabaseSchema, FD, RelationSchema, SPCView
from repro.algebra.spc import RelationAtom
from repro.core.implication import equivalent
from repro.propagation import prop_cfd_spc, prop_cfd_spc_report
from repro.propagation.rbr import rbr


@pytest.fixture
def workload():
    db = DatabaseSchema([RelationSchema("R", ["A", "B", "C", "D", "E"])])
    atoms = [RelationAtom("R", {a: a for a in "ABCDE"})]
    view = SPCView("V", db, atoms, projection=["A", "D", "E"])
    sigma = [
        FD("R", ("A",), ("B",)),
        FD("R", ("B",), ("C",)),
        FD("R", ("C",), ("D",)),
        FD("R", ("A",), ("E",)),
    ]
    return sigma, view


class TestTimings:
    def test_phase_timings_populated(self, workload):
        sigma, view = workload
        report = prop_cfd_spc_report(sigma, view)
        assert report.seconds_input_mincover >= 0
        assert report.seconds_rbr >= 0
        assert report.seconds_view_dependent >= report.seconds_rbr

    def test_no_input_mincover_time_when_disabled(self, workload):
        sigma, view = workload
        report = prop_cfd_spc_report(sigma, view, minimize_input=False)
        assert report.seconds_input_mincover < 0.01

    def test_inconsistent_report_still_carries_input_time(self):
        db = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        atoms = [RelationAtom("R", {"A": "A", "B": "B"})]
        from repro.algebra.ops import ConstEq

        view = SPCView("V", db, atoms, [ConstEq("B", "x")])
        sigma = [CFD("R", {"A": "_"}, {"B": "y"})]
        report = prop_cfd_spc_report(sigma, view)
        assert report.inconsistent
        assert report.seconds_input_mincover >= 0


class TestGrowthTriggeredMinCover:
    def test_rbr_growth_trigger_preserves_equivalence(self):
        """The lazy intermediate MinCover never changes the semantics."""
        gamma = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"Y": "_"}, {"A": "_"}),
            CFD("R", {"A": "_", "Z": "_"}, {"B": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
        ]
        eager = rbr(gamma, ["A", "B"], partition_size=1)
        lazy = rbr(gamma, ["A", "B"], partition_size=40)
        off = rbr(gamma, ["A", "B"], partition_size=None)
        assert equivalent(eager, lazy)
        assert equivalent(lazy, off)

    def test_shrinking_gamma_skips_minimization(self, workload):
        """When drops only shrink Gamma, the result matches the
        optimization-free run exactly (no resolvent growth to curb)."""
        sigma, view = workload
        with_opt = prop_cfd_spc(sigma, view, partition_size=40)
        without = prop_cfd_spc(sigma, view, partition_size=None)
        assert equivalent(with_opt, without)
        # The transitive chain A -> B -> C -> D must have survived both.
        from repro import implies

        assert implies(with_opt, CFD("V", {"A": "_"}, {"D": "_"}))
