"""The blob-store subsystem: backends, URL registry, server, single-flight.

Covers the :mod:`repro.store` package end to end:

- :class:`MemoryStore` quotas (entry caps, TTL) and lease semantics;
- the URL scheme registry (``open_store`` / ``validate_store_url``) and
  its typed ``format`` errors on unknown/malformed URLs;
- sqlite leases (cross-connection, TTL takeover) and the multi-process
  hammer proving WAL + busy_timeout hold under write contention;
- the ``store://`` NDJSON server and :class:`RemoteStore` client,
  including error classification and degradation when the server dies;
- fleet warm-sharing: a second engine pointed at the same network store
  answers with zero chases;
- cross-process single-flight: N concurrent workers missing one
  fingerprint perform exactly one chase;
- the stdlib RESP client against an in-process fake Redis.
"""

from __future__ import annotations

import json
import socket
import subprocess
import sys
import threading
import time

import pytest

import repro.io as rio
from repro.api import ApiError, CheckRequest, PropagationService, Workspace
from repro.propagation.engine import PropagationEngine
from repro.store import (
    MemoryStore,
    SCHEMA_VERSION,
    SqliteStore,
    open_store,
    validate_store_url,
)
from repro.store.remote import RemoteStore
from repro.store.server import (
    STORE_PROTOCOL_VERSION,
    BlobStoreServer,
    background_store_server,
)

ATTRS = ["AC", "phn", "city", "zip"]


def small_problem():
    """One constant-bearing branch (defeats the closure fast path), one FD."""
    schema = rio.schema_from_json(
        {"relations": [{"name": "R1", "attributes": ATTRS}]}
    )
    view = rio.view_from_json(
        {
            "name": "V",
            "branches": [
                {
                    "atoms": [{"source": "R1", "prefix": ""}],
                    "projection": ATTRS + ["CC"],
                    "constants": {"CC": "44"},
                }
            ],
        },
        schema,
    )
    sigma = rio.dependencies_from_json(
        [{"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["city"]}]
    )
    phi = rio.dependency_from_json(
        {
            "kind": "cfd",
            "relation": "V",
            "lhs": {"CC": "44", "zip": "_"},
            "rhs": {"city": "_"},
        }
    )
    return schema, view, sigma, phi


# ----------------------------------------------------------------------
# MemoryStore: quotas and leases.
# ----------------------------------------------------------------------


class TestMemoryStore:
    def test_round_trip_and_counters(self):
        store = MemoryStore()
        assert store.get("verdicts", "k") is None
        store.put("verdicts", "k", "1")
        assert store.get("verdicts", "k") == "1"
        assert store.count("verdicts") == 1
        assert store.count("covers") == 0
        counters = store.counters()
        assert counters["hits"] == 1
        assert counters["misses"] == 1
        assert counters["writes"] == 1

    def test_unknown_table_rejected(self):
        store = MemoryStore()
        with pytest.raises(ValueError, match="unknown store table"):
            store.get("nope", "k")

    def test_entry_quota_evicts_lru(self):
        store = MemoryStore(max_entries=2)
        store.put("verdicts", "a", "1")
        store.put("verdicts", "b", "2")
        assert store.get("verdicts", "a") == "1"  # refresh a
        store.put("verdicts", "c", "3")  # evicts b
        assert store.get("verdicts", "b") is None
        assert store.get("verdicts", "a") == "1"
        assert store.get("verdicts", "c") == "3"
        assert store.counters()["evictions"] == 1

    def test_ttl_quota_expires(self):
        store = MemoryStore(ttl_s=0.05)
        store.put("verdicts", "k", "1")
        assert store.get("verdicts", "k") == "1"
        time.sleep(0.08)
        assert store.get("verdicts", "k") is None
        assert store.count("verdicts") == 0
        assert store.counters()["expirations"] >= 1

    def test_bad_quota_values_rejected(self):
        with pytest.raises(ValueError):
            MemoryStore(max_entries=0)
        with pytest.raises(ValueError):
            MemoryStore(ttl_s=-1.0)

    def test_lease_grant_deny_release(self):
        store = MemoryStore()
        assert store.acquire_lease("verdicts", "k", 5.0) is True
        assert store.acquire_lease("verdicts", "k", 5.0) is False
        store.release_lease("verdicts", "k")
        assert store.acquire_lease("verdicts", "k", 5.0) is True
        counters = store.counters()
        assert counters["leases_granted"] == 2
        assert counters["leases_denied"] == 1

    def test_lease_expires_after_ttl(self):
        store = MemoryStore()
        assert store.acquire_lease("verdicts", "k", 0.05) is True
        assert store.acquire_lease("verdicts", "k", 0.05) is False
        time.sleep(0.08)
        assert store.acquire_lease("verdicts", "k", 5.0) is True

    def test_wait_for_sees_concurrent_write(self):
        store = MemoryStore()
        timer = threading.Timer(0.05, store.put, ("verdicts", "k", "42"))
        timer.start()
        try:
            assert store.wait_for("verdicts", "k", 5.0) == "42"
        finally:
            timer.cancel()

    def test_wait_for_times_out(self):
        store = MemoryStore()
        started = time.monotonic()
        assert store.wait_for("verdicts", "k", 0.08) is None
        assert time.monotonic() - started >= 0.08


# ----------------------------------------------------------------------
# The URL scheme registry.
# ----------------------------------------------------------------------


class TestOpenStore:
    def test_sqlite_scheme_opens_cache_dir(self, tmp_path):
        with open_store(f"sqlite://{tmp_path}") as store:
            assert isinstance(store, SqliteStore)
            store.put("verdicts", "k", "1")
        with open_store(f"sqlite://{tmp_path}") as store:
            assert store.get("verdicts", "k") == "1"

    def test_memory_scheme(self):
        with open_store("memory://") as store:
            assert isinstance(store, MemoryStore)

    def test_unknown_scheme_is_typed_format_error(self):
        with pytest.raises(ApiError) as err:
            open_store("bogus://somewhere")
        assert err.value.kind == "format"
        assert "bogus" in err.value.message

    def test_missing_scheme_is_typed_format_error(self):
        with pytest.raises(ApiError) as err:
            open_store("/just/a/path")
        assert err.value.kind == "format"

    def test_sqlite_without_directory_rejected(self):
        with pytest.raises(ApiError) as err:
            open_store("sqlite://")
        assert err.value.kind == "format"

    def test_store_scheme_requires_host_port(self):
        with pytest.raises(ApiError) as err:
            open_store("store://justahost")
        assert err.value.kind == "format"

    def test_redis_scheme_bad_db_rejected(self):
        with pytest.raises(ApiError) as err:
            open_store("redis://h:6379/notanumber")
        assert err.value.kind == "format"

    def test_validate_checks_without_connecting(self):
        # No server behind this address; validation is parse-only.
        assert validate_store_url("store://127.0.0.1:1") == "store://127.0.0.1:1"
        with pytest.raises(ApiError) as err:
            validate_store_url("bogus://x")
        assert err.value.kind == "format"

    def test_service_rejects_bad_store_url_at_construction(self):
        with pytest.raises(ApiError) as err:
            PropagationService(Workspace(), store_url="bogus://x")
        assert err.value.kind == "format"


# ----------------------------------------------------------------------
# Sqlite leases and multi-process contention.
# ----------------------------------------------------------------------


class TestSqliteLeases:
    def test_grant_deny_release(self, tmp_path):
        with SqliteStore.open_dir(tmp_path) as store:
            assert store.acquire_lease("verdicts", "k", 5.0) is True
            assert store.acquire_lease("verdicts", "k", 5.0) is False
            store.release_lease("verdicts", "k")
            assert store.acquire_lease("verdicts", "k", 5.0) is True

    def test_lease_visible_across_connections(self, tmp_path):
        with SqliteStore.open_dir(tmp_path) as a, SqliteStore.open_dir(
            tmp_path
        ) as b:
            assert a.acquire_lease("verdicts", "k", 5.0) is True
            assert b.acquire_lease("verdicts", "k", 5.0) is False
            a.release_lease("verdicts", "k")
            assert b.acquire_lease("verdicts", "k", 5.0) is True

    def test_expired_lease_taken_over(self, tmp_path):
        with SqliteStore.open_dir(tmp_path) as a, SqliteStore.open_dir(
            tmp_path
        ) as b:
            assert a.acquire_lease("verdicts", "k", 0.05) is True
            time.sleep(0.08)
            # The original owner died silently; the TTL frees the key.
            assert b.acquire_lease("verdicts", "k", 5.0) is True

    def test_version_reset_drops_leases(self, tmp_path, monkeypatch):
        with SqliteStore.open_dir(tmp_path) as store:
            assert store.acquire_lease("verdicts", "k", 3600.0) is True
        import repro.propagation.store as store_mod

        monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
        with SqliteStore.open_dir(tmp_path) as store:
            assert store.acquire_lease("verdicts", "k", 5.0) is True


_HAMMER = """
import sys
sys.path.insert(0, {src!r})
from repro.store import SqliteStore

with SqliteStore.open_dir({cache_dir!r}) as store:
    me = int(sys.argv[1])
    for i in range(120):
        store.put("verdicts", f"w{{me}}-k{{i % 8}}", str(i))
        store.get("verdicts", f"w{{1 - me}}-k{{i % 8}}")
        if i % 16 == 0:
            store.acquire_lease("verdicts", f"contended-{{i % 4}}", 0.01)
print("rows", store and 0 or 0)
"""


def test_sqlite_store_survives_multiprocess_hammer(tmp_path):
    """Two processes hammering one cache dir: WAL + busy_timeout hold.

    The regression this pins: without ``PRAGMA busy_timeout`` a writer
    colliding with another process's write transaction raises
    ``sqlite3.OperationalError: database is locked`` instead of waiting.
    """
    import repro

    src = str(repro.__file__).rsplit("/repro/", 1)[0]
    script = _HAMMER.format(src=src, cache_dir=str(tmp_path))
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(i)],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for i in range(2)
    ]
    for proc in procs:
        _, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err
        assert "database is locked" not in err
    with SqliteStore.open_dir(tmp_path) as store:
        assert store.count("verdicts") == 16  # 2 workers x 8 keys


# ----------------------------------------------------------------------
# The store:// server and RemoteStore client.
# ----------------------------------------------------------------------


class TestStoreServer:
    def test_round_trip_and_stats(self):
        with background_store_server(MemoryStore()) as url:
            host, port = url.removeprefix("store://").rsplit(":", 1)
            with RemoteStore(host, int(port)) as remote:
                pong = remote.ping()
                assert pong["pong"] is True
                assert pong["protocol"] == STORE_PROTOCOL_VERSION
                assert remote.get("verdicts", "k") is None
                remote.put("verdicts", "k", "1")
                assert remote.get("verdicts", "k") == "1"
                assert remote.count("verdicts") == 1
                assert remote.acquire_lease("verdicts", "fp", 5.0) is True
                assert remote.acquire_lease("verdicts", "fp", 5.0) is False
                remote.release_lease("verdicts", "fp")
                stats = remote.stats()
                assert stats["backend"] == "MemoryStore"
                assert stats["supports_leases"] is True
                assert stats["tables"]["verdicts"] == 1
                assert stats["counters"]["leases_denied"] == 1

    def test_unknown_table_is_bad_request(self):
        with background_store_server(MemoryStore()) as url:
            with open_store(url) as remote:
                with pytest.raises(ApiError) as err:
                    remote.get("nope", "k")
                assert err.value.kind == "bad-request"

    def test_malformed_line_answers_format_error_and_survives(self):
        with background_store_server(MemoryStore()) as url:
            host, port = url.removeprefix("store://").rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=10) as sock:
                fh = sock.makefile("rwb")
                fh.write(b"this is not json\n")
                fh.flush()
                doc = json.loads(fh.readline())
                assert doc["ok"] is False
                assert doc["error"]["kind"] == "format"
                # Same connection still serves well-formed requests.
                fh.write(b'{"id": 1, "op": "ping"}\n')
                fh.flush()
                doc = json.loads(fh.readline())
                assert doc["ok"] is True and doc["result"]["pong"] is True

    def test_server_quota_enforced_behind_wire(self):
        with background_store_server(MemoryStore(max_entries=2)) as url:
            with open_store(url) as remote:
                remote.put("verdicts", "a", "1")
                remote.put("verdicts", "b", "2")
                remote.put("verdicts", "c", "3")
                assert remote.count("verdicts") == 2
                assert remote.get("verdicts", "a") is None

    def test_dead_server_is_unavailable(self):
        with background_store_server(MemoryStore()) as url:
            pass  # context exit shuts the server down
        host, port = url.removeprefix("store://").rsplit(":", 1)
        with RemoteStore(host, int(port), timeout=2.0) as remote:
            with pytest.raises(ApiError) as err:
                remote.get("verdicts", "k")
            assert err.value.kind == "unavailable"

    def test_handle_doc_envelope_shapes(self):
        server = BlobStoreServer(MemoryStore())
        server._shutdown = __import__("asyncio").Event()
        ok = server.handle_doc({"id": 7, "op": "ping"})
        assert ok["id"] == 7 and ok["ok"] is True
        bad = server.handle_doc({"id": 8, "op": "frobnicate"})
        assert bad["ok"] is False and bad["error"]["kind"] == "bad-request"
        notdoc = server.handle_doc(["not", "an", "object"])
        assert notdoc["ok"] is False and notdoc["error"]["kind"] == "bad-request"


# ----------------------------------------------------------------------
# Fleet behavior: warm sharing, degradation, single-flight.
# ----------------------------------------------------------------------


class TestFleetSharing:
    def test_second_engine_answers_from_shared_store(self):
        _, view, sigma, phi = small_problem()
        with background_store_server(MemoryStore()) as url:
            with PropagationEngine(store_url=url) as first:
                assert first.check_many(sigma, view, [phi]) == [True]
                assert first.stats.chase_invocations > 0
                assert first.stats.persistent_writes > 0
            # A cold worker joining the fleet: no chases, store hits.
            with PropagationEngine(store_url=url) as joiner:
                assert joiner.check_many(sigma, view, [phi]) == [True]
                assert joiner.stats.chase_invocations == 0
                assert joiner.stats.persistent_hits > 0

    def test_dead_store_degrades_to_cache_miss(self):
        _, view, sigma, phi = small_problem()
        with background_store_server(MemoryStore()) as url:
            pass  # server gone; workers must still answer
        with PropagationEngine(store_url=url) as engine:
            assert engine.check_many(sigma, view, [phi]) == [True]
            assert engine.stats.store_errors > 0
            assert engine.stats.chase_invocations > 0

    def test_single_flight_one_chase_across_workers(self):
        """N workers miss one fingerprint concurrently -> exactly 1 chase."""
        _, view, sigma, phi = small_problem()
        with PropagationEngine() as reference:
            reference.check_many(sigma, view, [phi])
            baseline_chases = reference.stats.chase_invocations
        assert baseline_chases > 0
        with background_store_server(MemoryStore()) as url:
            workers = 4
            engines = [PropagationEngine(store_url=url) for _ in range(workers)]
            barrier = threading.Barrier(workers)
            verdicts = [None] * workers
            errors = []

            def run(i):
                try:
                    barrier.wait(timeout=30)
                    verdicts[i] = engines[i].check_many(sigma, view, [phi])
                except Exception as exc:  # pragma: no cover - diagnostics
                    errors.append(exc)

            threads = [
                threading.Thread(target=run, args=(i,)) for i in range(workers)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60)
            total_chases = sum(e.stats.chase_invocations for e in engines)
            total_waits = sum(e.stats.single_flight_waits for e in engines)
            total_hits = sum(e.stats.persistent_hits for e in engines)
            for engine in engines:
                engine.close()
            assert not errors
            assert verdicts == [[True]] * workers
            # The stampede collapsed to one flight: one worker chased,
            # every other answered from its wait or a store hit.
            assert total_chases == baseline_chases
            assert total_waits + total_hits >= workers - 1

    def test_lease_waiter_computes_locally_when_owner_dies(self):
        # Another worker holds the lease but never writes (it crashed);
        # our worker must wait out the short TTL and compute locally.
        _, view, sigma, phi = small_problem()
        with PropagationEngine(store_url="memory://", lease_ttl=0.2) as probe:
            store = probe._store
            denied = []
            original = store.acquire_lease

            def deny_first(table, key, ttl_s):
                if not denied:
                    denied.append(key)
                    return False
                return original(table, key, ttl_s)

            store.acquire_lease = deny_first
            started = time.monotonic()
            assert probe.check_many(sigma, view, [phi]) == [True]
            assert time.monotonic() - started < 10
            assert denied  # the single-flight path was actually exercised
            assert probe.stats.chase_invocations > 0  # computed it itself
            assert probe.stats.single_flight_waits == 0


def test_stats_surface_fleet_counters():
    """The wire `stats` op carries the persistent-tier counters."""
    from repro.api.wire import handle_request

    _, view, sigma, phi = small_problem()
    with background_store_server(MemoryStore()) as url:
        workspace = Workspace()
        service = PropagationService(workspace, store_url=url)
        with service:
            service.workspace.add_schema(
                "default",
                rio.schema_from_json(
                    {"relations": [{"name": "R1", "attributes": ATTRS}]}
                ),
            )
            service.workspace.add_sigma("default", sigma)
            service.workspace.add_view("default", view, schema="default")
            service.check(
                CheckRequest(view="default", sigma="default", targets=[phi])
            )
            doc = handle_request({"op": "stats"}, service)
            counters = doc["result"]["counters"]
            for name in (
                "persistent_hits",
                "persistent_misses",
                "persistent_writes",
                "evictions",
                "single_flight_waits",
                "store_errors",
            ):
                assert name in counters
            assert doc["result"]["counters"]["persistent_writes"] > 0
            assert "single_flight_waits=" in doc["result"]["engine"]


# ----------------------------------------------------------------------
# The stdlib RESP client against a fake Redis.
# ----------------------------------------------------------------------


class FakeRedis:
    """Just enough RESP2 to exercise RedisStore: GET/SET/DEL/SCAN/SELECT."""

    def __init__(self):
        self.data: dict[str, str] = {}
        self.expiry: dict[str, float] = {}
        self.sock = socket.socket()
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(4)
        self.port = self.sock.getsockname()[1]
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _alive(self, key: str) -> bool:
        deadline = self.expiry.get(key)
        if deadline is not None and time.monotonic() >= deadline:
            self.data.pop(key, None)
            self.expiry.pop(key, None)
            return False
        return key in self.data

    def _execute(self, args: list[str]):
        cmd = args[0].upper()
        if cmd == "SELECT":
            return "+OK"
        if cmd == "GET":
            return self.data.get(args[1]) if self._alive(args[1]) else None
        if cmd == "SET":
            key, value, rest = args[1], args[2], [a.upper() for a in args[3:]]
            if "NX" in rest and self._alive(key):
                return None
            self.data[key] = value
            if "PX" in rest:
                ms = int(args[3 + rest.index("PX") + 1])
                self.expiry[key] = time.monotonic() + ms / 1000.0
            else:
                self.expiry.pop(key, None)
            return "+OK"
        if cmd == "DEL":
            removed = int(self._alive(args[1]))
            self.data.pop(args[1], None)
            return removed
        if cmd == "SCAN":
            import fnmatch

            pattern = args[args.index("MATCH") + 1]
            keys = [k for k in list(self.data) if self._alive(k)]
            return ["0", [k for k in keys if fnmatch.fnmatch(k, pattern)]]
        return Exception(f"ERR unknown command {cmd}")

    @staticmethod
    def _encode(reply) -> bytes:
        if isinstance(reply, str) and reply.startswith("+"):
            return f"{reply}\r\n".encode()
        if reply is None:
            return b"$-1\r\n"
        if isinstance(reply, int):
            return f":{reply}\r\n".encode()
        if isinstance(reply, str):
            data = reply.encode()
            return b"$%d\r\n%s\r\n" % (len(data), data)
        if isinstance(reply, list):
            return b"*%d\r\n%s" % (
                len(reply),
                b"".join(FakeRedis._encode(item) for item in reply),
            )
        message = str(reply).encode()
        return b"-%s\r\n" % message

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except OSError:
                return
            threading.Thread(
                target=self._serve_conn, args=(conn,), daemon=True
            ).start()

    def _serve_conn(self, conn):
        fh = conn.makefile("rwb")
        try:
            while True:
                line = fh.readline()
                if not line:
                    return
                count = int(line[1:].strip())
                args = []
                for _ in range(count):
                    length = int(fh.readline()[1:].strip())
                    args.append(fh.read(length + 2)[:-2].decode())
                fh.write(self._encode(self._execute(args)))
                fh.flush()
        except (OSError, ValueError):
            pass
        finally:
            conn.close()

    def close(self):
        self._stop.set()
        self.sock.close()


@pytest.fixture
def fake_redis():
    server = FakeRedis()
    yield server
    server.close()


class TestRedisStore:
    def test_round_trip_schema_versioned_keys(self, fake_redis):
        with open_store(f"redis://127.0.0.1:{fake_redis.port}") as store:
            assert store.get("verdicts", "fp") is None
            store.put("verdicts", "fp", "1")
            assert store.get("verdicts", "fp") == "1"
            assert store.count("verdicts") == 1
            assert store.count("covers") == 0
        assert f":v{SCHEMA_VERSION}:verdicts:fp" in "".join(fake_redis.data)

    def test_leases_via_set_nx_px(self, fake_redis):
        with open_store(f"redis://127.0.0.1:{fake_redis.port}") as store:
            assert store.acquire_lease("verdicts", "fp", 5.0) is True
            assert store.acquire_lease("verdicts", "fp", 5.0) is False
            store.release_lease("verdicts", "fp")
            assert store.acquire_lease("verdicts", "fp", 0.05) is True
            time.sleep(0.08)
            assert store.acquire_lease("verdicts", "fp", 5.0) is True

    def test_server_error_is_bad_request(self, fake_redis):
        from repro.store.redis_backend import RedisStore

        with RedisStore("127.0.0.1", fake_redis.port) as store:
            with pytest.raises(ApiError) as err:
                store._command("FROBNICATE")
            assert err.value.kind == "bad-request"

    def test_connection_refused_is_unavailable(self):
        from repro.store.redis_backend import RedisStore

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            dead_port = probe.getsockname()[1]
        with RedisStore("127.0.0.1", dead_port, timeout=2.0) as store:
            with pytest.raises(ApiError) as err:
                store.get("verdicts", "k")
            assert err.value.kind == "unavailable"

    def test_engine_runs_warm_through_redis(self, fake_redis):
        _, view, sigma, phi = small_problem()
        url = f"redis://127.0.0.1:{fake_redis.port}"
        with PropagationEngine(store_url=url) as first:
            assert first.check_many(sigma, view, [phi]) == [True]
            assert first.stats.persistent_writes > 0
        with PropagationEngine(store_url=url) as joiner:
            assert joiner.check_many(sigma, view, [phi]) == [True]
            assert joiner.stats.chase_invocations == 0
            assert joiner.stats.persistent_hits > 0
