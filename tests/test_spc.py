"""The SPC normal form: construction, normalization, evaluation."""

import pytest

from repro.algebra.instance import DatabaseInstance
from repro.algebra.eval import evaluate
from repro.algebra.ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Product,
    Projection,
    RelationRef,
    Renaming,
    Selection,
    Union,
)
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.cfd import CFD
from repro.core.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    return DatabaseSchema(
        [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["C", "D"])]
    )


@pytest.fixture
def instance(db):
    return DatabaseInstance(
        db,
        {
            "R": [{"A": 1, "B": 2}, {"A": 3, "B": 2}],
            "S": [{"C": 2, "D": 9}, {"C": 5, "D": 9}],
        },
    )


def _rows(relation):
    return sorted(tuple(sorted(r.items())) for r in relation.rows)


class TestConstruction:
    def test_atom_must_rename_all_attributes(self, db):
        with pytest.raises(ValueError):
            SPCView("V", db, [RelationAtom("R", {"A": "x.A"})])

    def test_atom_attribute_collision_rejected(self, db):
        atoms = [
            RelationAtom("R", {"A": "x", "B": "y"}),
            RelationAtom("S", {"C": "x", "D": "z"}),
        ]
        with pytest.raises(ValueError):
            SPCView("V", db, atoms)

    def test_unknown_source_relation(self, db):
        with pytest.raises(KeyError):
            SPCView("V", db, [RelationAtom("Z", {"A": "x"})])

    def test_selection_attribute_must_exist(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        with pytest.raises(KeyError):
            SPCView("V", db, atoms, [ConstEq("z", 1)])

    def test_projection_must_be_produced(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        with pytest.raises(KeyError):
            SPCView("V", db, atoms, projection=["z"])

    def test_constants_must_be_projected(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        with pytest.raises(ValueError):
            SPCView("V", db, atoms, projection=["a"], constants={"CC": "44"})

    def test_default_projection_covers_everything(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, constants={"CC": "44"})
        assert set(view.projection) == {"a", "b", "CC"}

    def test_dropped_attributes(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, projection=["a"])
        assert view.dropped_attributes() == ["b"]


class TestEvaluation:
    def test_projection_and_constants(self, db, instance):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, projection=["a", "CC"], constants={"CC": "44"})
        rows = view.evaluate(instance).rows
        assert sorted(r["a"] for r in rows) == [1, 3]
        assert all(r["CC"] == "44" for r in rows)

    def test_join_via_selection(self, db, instance):
        atoms = [
            RelationAtom("R", {"A": "a", "B": "b"}),
            RelationAtom("S", {"C": "c", "D": "d"}),
        ]
        view = SPCView("V", db, atoms, [AttrEq("b", "c")], ["a", "d"])
        rows = view.evaluate(instance).rows
        assert sorted(r["a"] for r in rows) == [1, 3]
        assert all(r["d"] == 9 for r in rows)

    def test_const_selection(self, db, instance):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, [ConstEq("a", 1)], ["a", "b"])
        assert [r["a"] for r in view.evaluate(instance).rows] == [1]

    def test_unsatisfiable_view_is_empty(self, db, instance):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms, [], ["a"], unsatisfiable=True)
        assert len(view.evaluate(instance)) == 0


class TestNormalization:
    def test_simple_projection(self, db, instance):
        expr = Projection(RelationRef("R"), ["B"])
        view = SPCView.from_expr(expr, db)
        assert view.projection == ["B"]
        assert _rows(view.evaluate(instance)) == _rows(evaluate(expr, instance, "V"))

    def test_selection_projection_product(self, db, instance):
        expr = Projection(
            Selection(
                Product(RelationRef("R"), RelationRef("S")),
                [AttrEq("B", "C")],
            ),
            ["A", "D"],
        )
        view = SPCView.from_expr(expr, db)
        assert _rows(view.evaluate(instance)) == _rows(evaluate(expr, instance, "V"))

    def test_constant_relation_becomes_rc(self, db, instance):
        expr = Product(ConstantRelation({"CC": "44"}), RelationRef("R"))
        view = SPCView.from_expr(expr, db)
        assert view.constants == {"CC": "44"}
        assert _rows(view.evaluate(instance)) == _rows(evaluate(expr, instance, "V"))

    def test_renaming_flows_through(self, db, instance):
        expr = Projection(Renaming(RelationRef("R"), {"A": "X"}), ["X"])
        view = SPCView.from_expr(expr, db)
        assert view.projection == ["X"]
        assert _rows(view.evaluate(instance)) == _rows(evaluate(expr, instance, "V"))

    def test_selection_on_constant_column_folds(self, db, instance):
        expr = Selection(
            Product(ConstantRelation({"CC": "44"}), RelationRef("R")),
            [ConstEq("CC", "44")],
        )
        view = SPCView.from_expr(expr, db)
        assert not view.unsatisfiable
        assert len(view.evaluate(instance)) == 2

    def test_contradictory_constant_selection(self, db, instance):
        expr = Selection(
            Product(ConstantRelation({"CC": "44"}), RelationRef("R")),
            [ConstEq("CC", "31")],
        )
        view = SPCView.from_expr(expr, db)
        assert view.unsatisfiable
        assert len(view.evaluate(instance)) == 0

    def test_nested_projections_compose(self, db, instance):
        expr = Projection(Projection(RelationRef("R"), ["A", "B"]), ["B"])
        view = SPCView.from_expr(expr, db)
        assert view.projection == ["B"]

    def test_selection_between_column_and_literal(self, db, instance):
        expr = Selection(
            Product(ConstantRelation({"K": 2}), RelationRef("R")),
            [AttrEq("B", "K")],
        )
        view = SPCView.from_expr(expr, db)
        assert _rows(view.evaluate(instance)) == _rows(evaluate(expr, instance, "V"))

    def test_union_rejected(self, db):
        with pytest.raises(ValueError):
            SPCView.from_expr(Union(RelationRef("R"), RelationRef("R")), db)

    def test_as_expr_round_trip(self, db, instance):
        atoms = [
            RelationAtom("R", {"A": "a", "B": "b"}),
            RelationAtom("S", {"C": "c", "D": "d"}),
        ]
        view = SPCView(
            "V", db, atoms, [AttrEq("b", "c")], ["a", "d", "CC"], {"CC": "44"}
        )
        expr = view.as_expr()
        assert _rows(view.evaluate(instance)) == _rows(evaluate(expr, instance, "V"))


class TestSourceCFDRenaming:
    def test_rename_per_atom(self, db):
        atoms = [
            RelationAtom("R", {"A": "x.A", "B": "x.B"}),
            RelationAtom("R", {"A": "y.A", "B": "y.B"}),
        ]
        view = SPCView("V", db, atoms)
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        renamed = view.rename_source_cfds(sigma)
        assert len(renamed) == 2
        assert {tuple(phi.lhs_attrs) for phi in renamed} == {("x.A",), ("y.A",)}
        assert all(phi.relation == "V" for phi in renamed)

    def test_other_relations_skipped(self, db):
        atoms = [RelationAtom("R", {"A": "a", "B": "b"})]
        view = SPCView("V", db, atoms)
        assert view.rename_source_cfds([CFD("S", {"C": "_"}, {"D": "_"})]) == []
