"""Streaming Sigma: the delta-vs-cold byte-identity contract.

The PR 10 obligations (see ``docs/incremental.md``, "Streaming Sigma"):

1. *Delta-aware recompute is byte-identical to cold* — after any
   ``delta_sigma`` edit, verdicts and covers from the warm service (pair
   memo, branch-cover memo, verify-first cover seeds) equal those of a
   fresh service built on the edited Sigma: over generated edit traces,
   over every committed fuzz-corpus case, and over Example 4.1 through a
   50-edit trace.
2. *Edits are idempotent and precise* — a repeated or no-op edit
   invalidates nothing; after an edit, queries whose provenance avoids
   the edited relation still answer with ``chases == 0``, and union
   checks re-chase strictly fewer than the full ``k^2`` branch pairs.
3. *The trace format replays* — ``generate_trace`` is deterministic per
   seed, round-trips through save/load, and a `StreamingSession` over a
   live service reports per-edit warmth and the new engine counters.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.algebra.spcu import SPCUView
from repro.api import (
    CheckRequest,
    CoverRequest,
    PropagationService,
    RequestStats,
    UpdateSigmaRequest,
    Workspace,
)
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.fuzz.cases import parse_case
from repro.propagation.closure_baseline import example_41_workload
from repro.streaming import (
    ColdReference,
    StreamingSession,
    canonical_cover,
    canonical_verdicts,
    generate_trace,
    load_trace,
    parse_trace,
    save_trace,
    warmth_fraction,
)

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))

ATTRS = ["A", "B", "C", "D"]


def _schema(relations=("R1", "R2", "R3")) -> DatabaseSchema:
    return DatabaseSchema([RelationSchema(name, ATTRS) for name in relations])


def _union_view(schema: DatabaseSchema, name: str = "U") -> SPCUView:
    branches = [
        SPCView(
            name,
            schema,
            [RelationAtom(rel, {a: a for a in ATTRS})],
            projection=["A", "B", "C"],
        )
        for rel in ("R1", "R2", "R3")
    ]
    return SPCUView(name, branches)


def _sigma(schema: DatabaseSchema) -> list:
    deps = []
    for rel in schema.relations:
        deps.append(FD(rel, ("A",), ("B",)))
        deps.append(FD(rel, ("B",), ("C",)))
        # A constant-pattern CFD defeats the closure fast path so
        # warm/cold distinctions show up as chase counts.
        deps.append(CFD(rel, {"A": "1"}, {"D": "9"}))
    return deps


def _service(schema, sigma, views, **options) -> PropagationService:
    workspace = Workspace()
    workspace.add_schema("default", schema)
    workspace.add_sigma("default", list(sigma))
    for name, view in views.items():
        workspace.add_view(name, view)
    options.setdefault("use_cache", True)
    return PropagationService(workspace, **options)


def _cold_answers(schema, sigma, view, targets) -> tuple[str, str]:
    """Canonical (check, cover) answers from a fresh cold service."""
    with _service(schema, sigma, {view.name: view}, use_cache=False) as cold:
        verdicts = cold.check(
            CheckRequest(view=view.name, targets=list(targets))
        ).propagated
        cover = cold.cover(CoverRequest(view=view.name)).cover
    return canonical_verdicts(verdicts), canonical_cover(cover)


# ----------------------------------------------------------------------
# The trace format.
# ----------------------------------------------------------------------


def test_generate_trace_is_deterministic():
    one = generate_trace(seed=11, edits=10, ops_per_edit=2)
    two = generate_trace(seed=11, edits=10, ops_per_edit=2)
    assert json.dumps(one, sort_keys=True) == json.dumps(two, sort_keys=True)
    other = generate_trace(seed=12, edits=10, ops_per_edit=2)
    assert json.dumps(one, sort_keys=True) != json.dumps(
        other, sort_keys=True
    )


def test_trace_edits_interleave_with_ops():
    trace = generate_trace(seed=3, edits=6, ops_per_edit=3)
    kinds = [op["op"] for op in trace["ops"]]
    assert kinds.count("edit") == 6
    assert len(kinds) == 6 * 4  # each edit followed by 3 query ops
    for op in trace["ops"]:
        if op["op"] == "edit":
            assert op["kind"] in ("add", "drop", "tighten")
            assert isinstance(op["relation"], str)
        else:
            assert op["op"] in ("check", "cover")
            assert op["view"] == "U"


def test_trace_save_load_round_trip(tmp_path):
    trace = generate_trace(seed=5, edits=4)
    path = tmp_path / "t.json"
    save_trace(trace, path)
    assert json.dumps(load_trace(path), sort_keys=True) == json.dumps(
        trace, sort_keys=True
    )
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"format": "something-else"}))
    with pytest.raises(ValueError, match="repro-trace/1"):
        load_trace(bad)
    with pytest.raises(ValueError, match="repro-trace/1"):
        parse_trace({"format": None})


# ----------------------------------------------------------------------
# Delta-vs-cold byte identity.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("seed", [1, 7, 9])
def test_session_matches_cold_reference(seed):
    """Every answer over a generated edit trace equals a cold recompute
    (the session raises DeltaMismatch on the first divergence)."""
    trace = generate_trace(seed=seed, edits=12, ops_per_edit=2)
    with PropagationService(use_cache=True) as service:
        report = StreamingSession(
            service, trace, verify=ColdReference(trace)
        ).run()
    assert report.edits == 12
    assert report.queries == 24
    assert len(report.answers) == 24
    assert 0.0 <= report.mean_warmth <= 1.0


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_case_stays_cold_identical_under_edits(path):
    """Replay a committed fuzz case through a short edit trace: after
    every edit the warm service's answers are byte-identical to a fresh
    cold service built on its own registered (post-edit) Sigma."""
    case = json.loads(path.read_text())["case"]
    schema, sigma, view, targets = parse_case(case)
    warm = _service(schema, sigma, {view.name: view})
    relations = sorted({atom.source for b in getattr(view, "branches", [view]) for atom in b.atoms})
    with warm:
        for step in range(6):
            relation = relations[step % len(relations)]
            attrs = list(schema.relation(relation).attribute_names)
            edit = CFD(
                relation,
                {attrs[0]: str(900000 + step)},
                {attrs[-1]: str(910000 + step)},
            )
            if step % 3 == 2:
                diff = UpdateSigmaRequest(remove=[edit_prev])  # noqa: F821
            else:
                diff = UpdateSigmaRequest(add=[edit])
                edit_prev = edit
            warm.delta_sigma(diff)
            live = list(warm.workspace.sigma("default"))
            warm_check = canonical_verdicts(
                warm.check(
                    CheckRequest(view=view.name, targets=list(targets))
                ).propagated
            )
            warm_cover = canonical_cover(
                warm.cover(CoverRequest(view=view.name)).cover
            )
            cold_check, cold_cover = _cold_answers(
                schema, live, view, targets
            )
            assert warm_check == cold_check, f"check diverged at edit {step}"
            assert warm_cover == cold_cover, f"cover diverged at edit {step}"


def test_example_41_through_50_edit_trace():
    """Example 4.1 under 50 interleaved edits: the warm delta service
    answers the eta-combination batch and the cover byte-identically to
    a cold service at every step."""
    from repro.propagation.closure_baseline import exponential_family_schema

    view, sigma, queries = example_41_workload(3, defeat_fast_path=True)
    schema = exponential_family_schema(3)
    warm = _service(schema, sigma, {view.name: view})
    live = list(sigma)
    with warm:
        for step in range(50):
            edit = CFD(
                "R", {"A1": str(500000 + step)}, {"D": str(510000 + step)}
            )
            if step % 2 == 0:
                warm.delta_sigma(UpdateSigmaRequest(add=[edit]))
            else:
                previous = CFD(
                    "R",
                    {"A1": str(500000 + step - 1)},
                    {"D": str(510000 + step - 1)},
                )
                warm.delta_sigma(UpdateSigmaRequest(remove=[previous]))
            live = list(warm.workspace.sigma("default"))
            warm_check = canonical_verdicts(
                warm.check(
                    CheckRequest(view=view.name, targets=list(queries))
                ).propagated
            )
            warm_cover = canonical_cover(
                warm.cover(CoverRequest(view=view.name)).cover
            )
            cold_check, cold_cover = _cold_answers(
                schema, live, view, queries
            )
            assert warm_check == cold_check, f"check diverged at edit {step}"
            assert warm_cover == cold_cover, f"cover diverged at edit {step}"


# ----------------------------------------------------------------------
# Idempotence and precision.
# ----------------------------------------------------------------------


def test_delta_sigma_idempotent_on_repeated_and_noop_edits():
    schema = _schema()
    views = {"U": _union_view(schema)}
    with _service(schema, _sigma(schema), views) as service:
        service.check(
            CheckRequest(view="U", targets=[FD("U", ("A",), ("B",))])
        )
        service.cover(CoverRequest(view="U"))
        diff = UpdateSigmaRequest(
            remove=[FD("R1", ("B",), ("C",))],
            add=[CFD("R1", {"B": "2"}, {"C": "7"})],
        )
        first = service.delta_sigma(diff)
        assert first.affected_relations == ["R1"]
        retry = service.delta_sigma(diff)
        assert retry.affected_relations == []
        assert retry.invalidated == 0
        assert warmth_fraction(retry) == 1.0
        noop = service.delta_sigma(UpdateSigmaRequest())
        assert noop.affected_relations == [] and noop.invalidated == 0


def test_untouched_relation_lines_answer_with_zero_chases():
    """After an R1 edit, a view reading only R2 answers entirely warm."""
    schema = _schema()
    v2 = SPCView(
        "V2",
        schema,
        [RelationAtom("R2", {a: a for a in ATTRS})],
        projection=["A", "C", "D"],
    )
    views = {"U": _union_view(schema), "V2": v2}
    with _service(schema, _sigma(schema), views) as service:
        target = FD("V2", ("A",), ("C",))
        service.check(CheckRequest(view="V2", targets=[target]))
        service.cover(CoverRequest(view="V2"))
        update = service.delta_sigma(
            UpdateSigmaRequest(add=[CFD("R1", {"B": "3"}, {"D": "8"})])
        )
        assert update.affected_relations == ["R1"]
        assert update.retained > 0
        verdict = service.check(CheckRequest(view="V2", targets=[target]))
        assert verdict.stats.chases == 0
        cover = service.cover(CoverRequest(view="V2"))
        assert cover.stats.chases == 0


def test_pair_chases_stay_under_k_squared_after_single_relation_edit():
    """A 3-branch union re-checked after an R1 edit re-chases only the
    pairs whose provenance meets R1 — strictly fewer than all k^2 = 9."""
    schema = _schema()
    # Every branch tags CC with the same constant, so an A -> CC target
    # propagates and the check visits all 9 branch pairs (a failing
    # target would early-exit at the first counterexample pair).
    branches = [
        SPCView(
            "U",
            schema,
            [RelationAtom(rel, {a: a for a in ATTRS})],
            projection=["A", "B", "CC"],
            constants={"CC": "9"},
        )
        for rel in ("R1", "R2", "R3")
    ]
    views = {"U": SPCUView("U", branches)}
    with _service(schema, _sigma(schema), views) as service:
        target = FD("U", ("A",), ("CC",))
        warm_up = service.check(CheckRequest(view="U", targets=[target]))
        assert warm_up.propagated == [True]
        assert warm_up.stats.pair_chases == 9  # all pairs, cold
        service.delta_sigma(
            UpdateSigmaRequest(add=[CFD("R1", {"B": "3"}, {"D": "8"})])
        )
        verdict = service.check(CheckRequest(view="U", targets=[target]))
        # Only pairs whose provenance meets R1 re-chase: 5 of 9.
        assert verdict.propagated == [True]
        assert verdict.stats.pair_chases == 5


def test_cover_seeds_hit_when_the_old_cover_survives():
    """Editing one relation re-derives the union cover by verifying the
    previous cover first; the engine reports the seed as a hit and the
    emitted cover still equals the cold recompute."""
    schema = _schema()
    # The shared CC constant keeps the union cover non-empty (an empty
    # previous cover is never stashed as a seed).
    branches = [
        SPCView(
            "U",
            schema,
            [RelationAtom(rel, {a: a for a in ATTRS})],
            projection=["A", "B", "CC"],
            constants={"CC": "9"},
        )
        for rel in ("R1", "R2", "R3")
    ]
    views = {"U": SPCUView("U", branches)}
    sigma = _sigma(schema)
    with _service(schema, sigma, views) as service:
        before = service.cover(CoverRequest(view="U"))
        assert before.stats.cover_seed_hits == 0
        service.delta_sigma(
            UpdateSigmaRequest(add=[CFD("R1", {"B": "3"}, {"D": "8"})])
        )
        after = service.cover(CoverRequest(view="U"))
        assert (
            after.stats.cover_seed_hits + after.stats.cover_seed_misses == 1
        )
        live = list(service.workspace.sigma("default"))
        _, cold_cover = _cold_answers(
            schema, live, views["U"], []
        )
        assert canonical_cover(after.cover) == cold_cover


# ----------------------------------------------------------------------
# Sessions, reports, stats surfacing.
# ----------------------------------------------------------------------


def test_streaming_report_shape_and_counters():
    trace = generate_trace(seed=1, edits=10, ops_per_edit=2)
    with PropagationService(use_cache=True) as service:
        report = StreamingSession(service, trace).run()
        engine_stats = service.stats
    doc = report.to_json()
    assert doc["edits"] == 10 and doc["queries"] == 20
    assert len(doc["records"]) == 10
    assert doc["steady_state_ms"] >= 0.0
    assert 0.0 <= doc["mean_warmth"] <= 1.0
    record = doc["records"][0]
    for key in (
        "kind",
        "relation",
        "invalidated",
        "retained",
        "warmth",
        "chases",
        "pair_chases",
        "cover_seed_hits",
        "cover_seed_misses",
    ):
        assert key in record
    # The per-record counters reconcile with the engine totals.
    assert (
        sum(r["pair_chases"] for r in doc["records"])
        <= engine_stats.pair_chases
    )


def test_request_stats_total_sums_streaming_counters():
    parts = [
        RequestStats(pair_chases=2, cover_seed_hits=1, cover_seed_misses=3),
        RequestStats(pair_chases=5, cover_seed_hits=0, cover_seed_misses=1),
    ]
    total = RequestStats.total(parts, elapsed_ms=1.0)
    assert total.pair_chases == 7
    assert total.cover_seed_hits == 1
    assert total.cover_seed_misses == 4


def test_cli_stream_runs_verified(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "report.json"
    trace_path = tmp_path / "trace.json"
    code = main(
        [
            "stream",
            "--seed",
            "2",
            "--edits",
            "4",
            "--verify",
            "--save-trace",
            str(trace_path),
            "--out",
            str(out),
        ]
    )
    assert code == 0
    report = json.loads(out.read_text())
    assert report["edits"] == 4 and report["trace"]["verified"] is True
    replay = main(["stream", "--trace", str(trace_path)])
    assert replay == 0
    replayed = json.loads(capsys.readouterr().out)
    assert replayed["edits"] == 4
