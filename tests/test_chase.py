"""The chase engine: equalization, CFD rules, instantiation, enumeration."""

import pytest

from repro.core.cfd import CFD
from repro.core.chase import (
    ChaseStatus,
    SymbolicInstance,
    SymVar,
    VarFactory,
    chase,
    chase_with_instantiations,
    finite_domain_assignments,
    premise_positions,
)
from repro.core.domains import BOOL, STRING, finite


@pytest.fixture
def factory():
    return VarFactory()


class TestSymbolicInstance:
    def test_resolve_follows_bindings(self, factory):
        inst = SymbolicInstance()
        a, b = factory.fresh(STRING), factory.fresh(STRING)
        inst.bind(a, b)
        inst.bind(b, "c")
        assert inst.resolve(a) == "c"

    def test_equate_vars_merges_toward_smaller(self, factory):
        inst = SymbolicInstance()
        a, b = factory.fresh(STRING), factory.fresh(STRING)
        assert inst.equate(b, a)
        assert inst.resolve(b) == a

    def test_equate_var_with_constant(self, factory):
        inst = SymbolicInstance()
        a = factory.fresh(STRING)
        assert inst.equate(a, "x")
        assert inst.resolve(a) == "x"

    def test_equate_distinct_constants_fails(self, factory):
        inst = SymbolicInstance()
        assert not inst.equate("x", "y")
        assert inst.equate("x", "x")

    def test_variables_lists_live_representatives(self, factory):
        inst = SymbolicInstance()
        a, b = factory.fresh(STRING), factory.fresh(STRING)
        inst.add_tuple("R", {"A": a, "B": b})
        inst.equate(a, b)
        assert inst.variables() == [a]

    def test_instantiate_gives_distinct_fresh_constants(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(STRING), "B": factory.fresh(STRING)})
        concrete = inst.instantiate().concrete()
        row = concrete["R"][0]
        assert row["A"] != row["B"]

    def test_copy_is_independent(self, factory):
        inst = SymbolicInstance()
        a = factory.fresh(STRING)
        inst.add_tuple("R", {"A": a})
        clone = inst.copy()
        clone.bind(a, "x")
        assert isinstance(inst.resolve(a), SymVar)


class TestChaseRules:
    def test_pair_rule_merges_rhs(self, factory):
        inst = SymbolicInstance()
        shared = factory.fresh(STRING)
        b1, b2 = factory.fresh(STRING), factory.fresh(STRING)
        inst.add_tuple("R", {"A": shared, "B": b1})
        inst.add_tuple("R", {"A": shared, "B": b2})
        result = chase(inst, [CFD("R", {"A": "_"}, {"B": "_"})])
        assert result.status is ChaseStatus.SATISFIABLE
        assert inst.resolve(b1) == inst.resolve(b2)

    def test_pair_rule_fails_on_distinct_constants(self, factory):
        inst = SymbolicInstance()
        shared = factory.fresh(STRING)
        inst.add_tuple("R", {"A": shared, "B": "x"})
        inst.add_tuple("R", {"A": shared, "B": "y"})
        result = chase(inst, [CFD("R", {"A": "_"}, {"B": "_"})])
        assert result.status is ChaseStatus.UNDEFINED

    def test_pair_rule_needs_forced_equality(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(STRING), "B": "x"})
        inst.add_tuple("R", {"A": factory.fresh(STRING), "B": "y"})
        result = chase(inst, [CFD("R", {"A": "_"}, {"B": "_"})])
        assert result.status is ChaseStatus.SATISFIABLE  # distinct vars

    def test_constant_rule_binds_variable(self, factory):
        inst = SymbolicInstance()
        b = factory.fresh(STRING)
        inst.add_tuple("R", {"A": "1", "B": b})
        chase(inst, [CFD("R", {"A": "1"}, {"B": "b"})])
        assert inst.resolve(b) == "b"

    def test_constant_rule_fails_on_conflict(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": "1", "B": "c"})
        result = chase(inst, [CFD("R", {"A": "1"}, {"B": "b"})])
        assert result.status is ChaseStatus.UNDEFINED

    def test_variable_does_not_match_constant_premise(self, factory):
        inst = SymbolicInstance()
        b = factory.fresh(STRING)
        inst.add_tuple("R", {"A": factory.fresh(STRING), "B": b})
        chase(inst, [CFD("R", {"A": "1"}, {"B": "b"})])
        assert isinstance(inst.resolve(b), SymVar)  # rule must not fire

    def test_equality_cfd_merges_columns(self, factory):
        inst = SymbolicInstance()
        a, b = factory.fresh(STRING), factory.fresh(STRING)
        inst.add_tuple("R", {"A": a, "B": b})
        chase(inst, [CFD.equality("R", "A", "B")])
        assert inst.resolve(a) == inst.resolve(b)

    def test_transitive_merging_across_rules(self, factory):
        inst = SymbolicInstance()
        shared = factory.fresh(STRING)
        rows = [
            {"A": shared, "B": factory.fresh(STRING), "C": factory.fresh(STRING)},
            {"A": shared, "B": factory.fresh(STRING), "C": factory.fresh(STRING)},
        ]
        for row in rows:
            inst.add_tuple("R", dict(row))
        sigma = [CFD("R", {"A": "_"}, {"B": "_"}), CFD("R", {"B": "_"}, {"C": "_"})]
        chase(inst, sigma)
        assert inst.resolve(rows[0]["C"]) == inst.resolve(rows[1]["C"])

    def test_general_form_normalized(self, factory):
        inst = SymbolicInstance()
        shared = factory.fresh(STRING)
        rows = [
            {"A": shared, "B": factory.fresh(STRING), "C": factory.fresh(STRING)},
            {"A": shared, "B": factory.fresh(STRING), "C": factory.fresh(STRING)},
        ]
        for row in rows:
            inst.add_tuple("R", dict(row))
        chase(inst, [CFD("R", {"A": "_"}, {"B": "_", "C": "_"})])
        assert inst.resolve(rows[0]["B"]) == inst.resolve(rows[1]["B"])
        assert inst.resolve(rows[0]["C"]) == inst.resolve(rows[1]["C"])


class TestPremisePositions:
    def test_lhs_attributes_collected(self):
        sigma = [CFD("R", {"A": "_", "B": "1"}, {"C": "_"})]
        assert premise_positions(sigma) == {"R": {"A", "B"}}

    def test_equality_counts_both_sides(self):
        sigma = [CFD.equality("R", "A", "B")]
        assert premise_positions(sigma) == {"R": {"A", "B"}}

    def test_multiple_relations(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("S", {"C": "_"}, {"D": "_"}),
        ]
        positions = premise_positions(sigma)
        assert positions["R"] == {"A"} and positions["S"] == {"C"}


class TestFiniteEnumeration:
    def test_assignments_cover_product(self):
        v1 = SymVar(0, BOOL)
        v2 = SymVar(1, finite("abc", ["a", "b", "c"]))
        assignments = list(finite_domain_assignments([v1, v2]))
        assert len(assignments) == 6

    def test_assignment_limit(self):
        v1 = SymVar(0, BOOL)
        assert len(list(finite_domain_assignments([v1], limit=1))) == 1

    def test_no_finite_vars_single_run(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(STRING)})
        results = list(chase_with_instantiations(inst, []))
        assert len(results) == 1

    def test_finite_vars_enumerated(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(BOOL)})
        results = list(chase_with_instantiations(inst, []))
        assert len(results) == 2
        values = {r.instance.resolve(r.instance.rows("R")[0]["A"]) for r in results}
        assert values == {False, True}

    def test_failed_branches_pruned(self, factory):
        # (A=True -> B=b) conflicts with B='c' baked in; only A=False survives.
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(BOOL), "B": "c"})
        sigma = [CFD("R", {"A": True}, {"B": "b"})]
        results = list(chase_with_instantiations(inst, sigma))
        assert len(results) == 1
        assert results[0].instance.resolve(results[0].instance.rows("R")[0]["A"]) is False

    def test_positions_skip_irrelevant_finite_vars(self, factory):
        # B is never read by a premise: it must not be branched on.
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(STRING), "B": factory.fresh(BOOL)})
        sigma = [CFD("R", {"A": "_"}, {"C": "_"})]
        inst.rows("R")[0]["C"] = factory.fresh(STRING)
        results = list(
            chase_with_instantiations(
                inst, sigma, positions=premise_positions(sigma)
            )
        )
        assert len(results) == 1  # no branching happened

    def test_extra_values_force_branching(self, factory):
        inst = SymbolicInstance()
        b = factory.fresh(BOOL)
        inst.add_tuple("R", {"A": factory.fresh(STRING), "B": b})
        results = list(
            chase_with_instantiations(inst, [], positions={}, extra_values=(b,))
        )
        assert len(results) == 2

    def test_limit_caps_yielded_results(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": factory.fresh(BOOL), "B": factory.fresh(BOOL)})
        results = list(chase_with_instantiations(inst, [], limit=3))
        assert len(results) == 3


class TestTermination:
    def test_chase_reports_steps(self, factory):
        inst = SymbolicInstance()
        inst.add_tuple("R", {"A": "1", "B": factory.fresh(STRING)})
        result = chase(inst, [CFD("R", {"A": "1"}, {"B": "b"})])
        assert result.steps >= 1

    def test_large_chain_terminates(self, factory):
        # A chain A0 -> A1 -> ... -> A30 over a pair of tuples.
        inst = SymbolicInstance()
        shared = factory.fresh(STRING)
        n = 30
        rows = []
        for _ in range(2):
            row = {"A0": shared}
            row.update({f"A{i}": factory.fresh(STRING) for i in range(1, n + 1)})
            rows.append(row)
            inst.add_tuple("R", row)
        sigma = [
            CFD("R", {f"A{i}": "_"}, {f"A{i+1}": "_"}) for i in range(n)
        ]
        result = chase(inst, sigma)
        assert result.status is ChaseStatus.SATISFIABLE
        assert inst.resolve(rows[0][f"A{n}"]) == inst.resolve(rows[1][f"A{n}"])
