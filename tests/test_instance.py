"""Concrete relations and database instances."""

import pytest

from repro.algebra.instance import DatabaseInstance, Relation
from repro.core.cfd import CFD
from repro.core.domains import BOOL
from repro.core.fd import FD
from repro.core.schema import Attribute, DatabaseSchema, RelationSchema


@pytest.fixture
def schema():
    return RelationSchema("R", ["A", "B"])


class TestRelation:
    def test_add_and_iterate(self, schema):
        rel = Relation(schema, [{"A": 1, "B": 2}])
        assert len(rel) == 1
        assert {"A": 1, "B": 2} in rel

    def test_set_semantics(self, schema):
        rel = Relation(schema, [{"A": 1, "B": 2}, {"A": 1, "B": 2}])
        assert len(rel) == 1

    def test_wrong_attributes_rejected(self, schema):
        with pytest.raises(ValueError):
            Relation(schema, [{"A": 1}])
        with pytest.raises(ValueError):
            Relation(schema, [{"A": 1, "B": 2, "C": 3}])

    def test_domain_validation(self):
        schema = RelationSchema("R", [Attribute("A", BOOL)])
        with pytest.raises(ValueError):
            Relation(schema, [{"A": "not-bool"}])
        Relation(schema, [{"A": True}])  # fine

    def test_satisfies_cfd(self, schema):
        rel = Relation(schema, [{"A": 1, "B": 1}, {"A": 1, "B": 2}])
        assert not rel.satisfies(CFD("R", {"A": "_"}, {"B": "_"}))

    def test_satisfies_fd(self, schema):
        rel = Relation(schema, [{"A": 1, "B": 1}])
        assert rel.satisfies(FD("R", ("A",), ("B",)))

    def test_relation_mismatch_rejected(self, schema):
        rel = Relation(schema, [])
        with pytest.raises(ValueError):
            rel.satisfies(CFD("S", {"A": "_"}, {"B": "_"}))


class TestDatabaseInstance:
    def test_construction_with_rows(self):
        db_schema = DatabaseSchema(
            [RelationSchema("R", ["A"]), RelationSchema("S", ["B"])]
        )
        db = DatabaseInstance(db_schema, {"R": [{"A": 1}]})
        assert len(db.relation("R")) == 1
        assert len(db.relation("S")) == 0

    def test_add(self):
        db_schema = DatabaseSchema([RelationSchema("R", ["A"])])
        db = DatabaseInstance(db_schema)
        db.add("R", {"A": 1})
        assert len(db.relation("R")) == 1

    def test_missing_relation(self):
        db_schema = DatabaseSchema([RelationSchema("R", ["A"])])
        db = DatabaseInstance(db_schema)
        with pytest.raises(KeyError):
            db.relation("Z")

    def test_satisfies_all(self):
        db_schema = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        db = DatabaseInstance(db_schema, {"R": [{"A": 1, "B": 1}]})
        deps = [FD("R", ("A",), ("B",)), CFD("R", {"A": "_"}, {"B": "_"})]
        assert db.satisfies_all(deps)
        db.add("R", {"A": 1, "B": 2})
        assert not db.satisfies_all(deps)
