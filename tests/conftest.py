"""Shared fixtures: the paper's running example and small helpers."""

from __future__ import annotations

import random

import pytest

from repro import (
    CFD,
    ConstantRelation,
    DatabaseInstance,
    DatabaseSchema,
    FD,
    Product,
    RelationRef,
    RelationSchema,
    SPCUView,
    Union,
)

CUSTOMER_ATTRS = ["AC", "phn", "name", "street", "city", "zip"]


@pytest.fixture
def customer_schema() -> DatabaseSchema:
    """The three customer sources of Example 1.1."""
    return DatabaseSchema(
        [RelationSchema(f"R{i}", CUSTOMER_ATTRS) for i in (1, 2, 3)]
    )


@pytest.fixture
def customer_view(customer_schema) -> SPCUView:
    """The SPCU integration view V = Q1 U Q2 U Q3 with country codes."""

    def q(i: int, cc: str):
        return Product(ConstantRelation({"CC": cc}), RelationRef(f"R{i}"))

    expr = Union(Union(q(1, "44"), q(2, "01")), q(3, "31"))
    return SPCUView.from_expr(expr, customer_schema, name="R")


@pytest.fixture
def customer_sigma() -> list:
    """f1-f3 and cfd1-cfd2 of Section 1."""
    return [
        FD("R1", ("zip",), ("street",)),
        FD("R1", ("AC",), ("city",)),
        FD("R3", ("AC",), ("city",)),
        CFD("R1", {"AC": "20"}, {"city": "ldn"}),
        CFD("R3", {"AC": "20"}, {"city": "Amsterdam"}),
    ]


@pytest.fixture
def customer_instance(customer_schema) -> DatabaseInstance:
    """The instances D1, D2, D3 of Figure 1."""
    return DatabaseInstance(
        customer_schema,
        {
            "R1": [
                _cust("20", "1234567", "Mike", "Portland", "LDN", "W1B 1JL"),
                _cust("20", "3456789", "Rick", "Portland", "LDN", "W1B 1JL"),
            ],
            "R2": [
                _cust("610", "3456789", "Joe", "Copley", "Darby", "19082"),
                _cust("610", "1234567", "Mary", "Walnut", "Darby", "19082"),
            ],
            "R3": [
                _cust("20", "3456789", "Marx", "Kruise", "Amsterdam", "1096"),
                _cust("36", "1234567", "Bart", "Grote", "Almere", "1316"),
            ],
        },
    )


def _cust(ac, phn, name, street, city, zip_):
    return {
        "AC": ac,
        "phn": phn,
        "name": name,
        "street": street,
        "city": city,
        "zip": zip_,
    }


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20080824)  # VLDB'08 started August 24.
