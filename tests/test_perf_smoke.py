"""Perf-regression smoke tests for the batch engine (marked ``slow``).

These bound *work counters*, not wall-clock time: the engine's contract
on batched workloads is that chase invocations scale with the number of
**unique closures / LHS shapes**, not with the number of queries.  The
workload is the Example 4.1 family (``exponential_family``), whose
``2^n`` eta-combination candidates are the paper's canonical stress for
closure-based reasoning.

Run with ``PYTHONPATH=src python -m pytest -m slow tests/test_perf_smoke.py``.
"""

from __future__ import annotations

import pytest

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.schema import DatabaseSchema
from repro.propagation import propagates
from repro.propagation.closure_baseline import exponential_family
from repro.propagation.engine import PropagationEngine

pytestmark = pytest.mark.slow

REPEATS = 3


def _family_view(n: int):
    schema, fds, projection = exponential_family(n)
    view = SPCView(
        "V",
        DatabaseSchema([schema]),
        [RelationAtom("R", {a: a for a in schema.attribute_names})],
        projection=projection,
    )
    return fds, view


def _eta_lhs(n: int, mask: int) -> tuple[str, ...]:
    return tuple(
        (f"A{i + 1}" if mask & (1 << i) else f"B{i + 1}") for i in range(n)
    )


def test_check_many_is_bounded_by_unique_closures():
    """FD workload: 2^8 unique LHS shapes x 2 RHS x 3 repeats.

    Every query is served by the memoized attribute closure (the fast
    path) — at most one closure per unique LHS and *zero* chases, where
    the uncached path runs one chase per nontrivial query.
    """
    n = 8
    fds, view = _family_view(n)
    queries = []
    for mask in range(2 ** n):
        lhs = _eta_lhs(n, mask)
        queries.append(FD("V", lhs, ("D",)))
        queries.append(FD("V", lhs, ("A1",)))
    queries = queries * REPEATS
    unique_lhs = 2 ** n

    engine = PropagationEngine()
    verdicts = engine.check_many(fds, view, queries)

    assert engine.stats.chase_invocations <= unique_lhs
    assert engine.stats.check_queries == len(queries)
    # Repeats never recompute: at least the two repeat rounds hit the memo.
    assert engine.stats.verdict_hits >= 2 * 2 * unique_lhs

    # Spot-check semantics against the plain path on a sample.
    assert all(verdicts[0::2]), "every eta combination must reach D"
    sample = [0, 1, 2 ** n - 1, 2 ** n]
    for index in sample:
        assert verdicts[index] == propagates(fds, view, queries[index])


def test_chased_skeleton_sharing_without_the_fast_path():
    """CFD workload (fast path off): chases bounded by unique LHS shapes.

    A constant-pattern CFD in Sigma disables the closure fast path, so
    every verdict goes through the chase — but all queries with one LHS
    shape share a single chased skeleton, so ``2^n x 2`` nontrivial
    queries (x 3 repeats) cost at most ``2^n`` chases.
    """
    n = 5
    fds, view = _family_view(n)
    sigma = fds + [CFD("R", {"A1": "1"}, {"D": "9"})]
    queries = []
    for mask in range(2 ** n):
        lhs = _eta_lhs(n, mask)
        queries.append(FD("V", lhs, ("D",)))
        queries.append(FD("V", lhs, ("A1",)))
    queries = queries * REPEATS
    unique_lhs = 2 ** n

    engine = PropagationEngine()
    verdicts = engine.check_many(sigma, view, queries)
    assert engine.stats.closure_fast_path == 0
    assert engine.stats.chase_invocations <= unique_lhs
    assert engine.stats.chased_hits > 0

    # The uncached baseline pays one chase per nontrivial unique query
    # and re-pays it on every repeat — strictly more work.
    baseline = PropagationEngine(use_cache=False)
    assert baseline.check_many(sigma, view, queries) == verdicts
    assert baseline.stats.chase_invocations > engine.stats.chase_invocations
    assert baseline.stats.chase_invocations >= unique_lhs * REPEATS


def test_cover_many_shares_the_input_mincover():
    """Batched covers re-minimize Sigma once, not once per view."""
    n = 6
    fds, view = _family_view(n)
    schema, _, projection = exponential_family(n)
    views = [view]
    for k in (1, 2):
        views.append(
            SPCView(
                "V",
                DatabaseSchema([schema]),
                [RelationAtom("R", {a: a for a in schema.attribute_names})],
                projection=projection[:-k] + ["D"],
            )
        )
    engine = PropagationEngine()
    covers = engine.cover_many(fds, views)
    assert len(covers) == len(views)
    for cover, v in zip(covers, views):
        for phi in cover:
            assert propagates(fds, v, phi)
    # Asking again is free (cover memo).
    before = engine.stats.rbr.drops
    engine.cover_many(fds, views)
    assert engine.stats.rbr.drops == before
    assert engine.stats.cover_hits >= len(views)
