"""Every example script must run cleanly (they double as documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    assert len(EXAMPLES) >= 4  # quickstart + three scenario scripts + CLI
