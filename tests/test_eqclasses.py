"""ComputeEQ and EQ2CFD (Figure 2 line 2 / Figure 4)."""

import pytest

from repro import CFD, DatabaseSchema, RelationSchema, SPCView
from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom
from repro.propagation.eqclasses import (
    BottomEQ,
    EquivalenceClasses,
    compute_eq,
    eq2cfd,
)


@pytest.fixture
def db():
    return DatabaseSchema([RelationSchema("R", ["A", "B", "C", "D"])])


def _view(db, selection=(), projection=None, constants=None):
    atoms = [RelationAtom("R", {a: a for a in "ABCD"})]
    return SPCView(
        "V", db, atoms, selection, projection, constants=constants or {}
    )


class TestUnionFind:
    def test_union_and_same(self):
        eq = EquivalenceClasses(["A", "B", "C"])
        assert eq.union("A", "B") is None
        assert eq.same("A", "B")
        assert not eq.same("A", "C")

    def test_keys_propagate_through_unions(self):
        eq = EquivalenceClasses(["A", "B"])
        eq.set_key("A", 1)
        eq.union("A", "B")
        assert eq.key("B") == 1

    def test_conflicting_keys_on_union(self):
        eq = EquivalenceClasses(["A", "B"])
        eq.set_key("A", 1)
        eq.set_key("B", 2)
        assert isinstance(eq.union("A", "B"), BottomEQ)

    def test_conflicting_key_assignment(self):
        eq = EquivalenceClasses(["A"])
        eq.set_key("A", 1)
        assert isinstance(eq.set_key("A", 2), BottomEQ)
        assert eq.set_key("A", 1) is None  # same value is fine

    def test_classes_listing(self):
        eq = EquivalenceClasses(["A", "B", "C"])
        eq.union("A", "B")
        classes = eq.classes()
        assert ["A", "B"] in classes and ["C"] in classes

    def test_representative_prefers_projection(self):
        eq = EquivalenceClasses(["A", "B"])
        eq.union("A", "B")
        assert eq.representative("A", prefer=["B"]) == "B"
        assert eq.representative("A", prefer=[]) == "A"


class TestComputeEQ:
    def test_selection_atoms_build_classes(self, db):
        view = _view(db, [AttrEq("A", "B"), ConstEq("C", 5)])
        eq = compute_eq(view, [])
        assert eq.same("A", "B")
        assert eq.key("C") == 5

    def test_constant_relation_seeds_keys(self, db):
        atoms = [RelationAtom("R", {a: a for a in "ABCD"})]
        view = SPCView(
            "V", db, atoms, projection=["A", "CC"], constants={"CC": "44"}
        )
        eq = compute_eq(view, [])
        assert eq.key("CC") == "44"

    def test_conflicting_selection_is_bottom(self, db):
        view = _view(db, [ConstEq("A", 1), ConstEq("A", 2)])
        assert isinstance(compute_eq(view, []), BottomEQ)

    def test_conflict_through_equality_chain(self, db):
        view = _view(db, [ConstEq("A", 1), AttrEq("A", "B"), ConstEq("B", 2)])
        assert isinstance(compute_eq(view, []), BottomEQ)

    def test_globally_firing_cfd_sets_key(self, db):
        # Example 3.1: source CFD pins B = b1 on every tuple.
        view = _view(db, [ConstEq("B", "b2")])
        sigma_v = [CFD("V", {"A": "_"}, {"B": "b1"})]
        assert isinstance(compute_eq(view, sigma_v), BottomEQ)

    def test_globally_firing_cfd_consistent_key(self, db):
        view = _view(db, [ConstEq("B", "b1")])
        sigma_v = [CFD("V", {"A": "_"}, {"B": "b1"})]
        eq = compute_eq(view, sigma_v)
        assert not isinstance(eq, BottomEQ)
        assert eq.key("B") == "b1"

    def test_fixpoint_chains_keys(self, db):
        # A=1 via selection; CFD (A=1 -> B=2); CFD (B=2 -> C=3).
        view = _view(db, [ConstEq("A", 1)])
        sigma_v = [
            CFD("V", {"A": 1}, {"B": 2}),
            CFD("V", {"B": 2}, {"C": 3}),
        ]
        eq = compute_eq(view, sigma_v)
        assert eq.key("B") == 2
        assert eq.key("C") == 3

    def test_non_matching_pattern_does_not_fire(self, db):
        view = _view(db, [ConstEq("A", 1)])
        sigma_v = [CFD("V", {"A": 9}, {"B": 2})]
        eq = compute_eq(view, sigma_v)
        assert not eq.has_key("B")

    def test_unsatisfiable_view_is_bottom(self, db):
        atoms = [RelationAtom("R", {a: a for a in "ABCD"})]
        view = SPCView("V", db, atoms, unsatisfiable=True)
        assert isinstance(compute_eq(view, []), BottomEQ)


class TestEQ2CFD:
    def test_keyed_class_yields_constant_cfds(self, db):
        view = _view(db, [ConstEq("A", 1), AttrEq("A", "B")])
        eq = compute_eq(view, [])
        cfds = eq2cfd(eq, view)
        assert CFD.constant("V", "A", 1) in cfds
        assert CFD.constant("V", "B", 1) in cfds

    def test_unkeyed_class_yields_equality_cfds(self, db):
        view = _view(db, [AttrEq("A", "B")])
        cfds = eq2cfd(compute_eq(view, []), view)
        assert CFD.equality("V", "A", "B") in cfds

    def test_singleton_classes_yield_nothing(self, db):
        view = _view(db)
        assert eq2cfd(compute_eq(view, []), view) == []

    def test_projection_restriction(self, db):
        # B is not projected: the A=B constraint produces no view CFD.
        view = _view(db, [AttrEq("A", "B")], projection=["A", "C", "D"])
        cfds = eq2cfd(compute_eq(view, []), view)
        assert cfds == []

    def test_keyed_class_partially_projected(self, db):
        view = _view(db, [ConstEq("A", 1), AttrEq("A", "B")], projection=["B"])
        cfds = eq2cfd(compute_eq(view, []), view)
        assert cfds == [CFD.constant("V", "B", 1)]

    def test_three_member_class_pairs(self, db):
        view = _view(db, [AttrEq("A", "B"), AttrEq("B", "C")])
        cfds = eq2cfd(compute_eq(view, []), view)
        assert len(cfds) == 3  # (A,B), (A,C), (B,C)
