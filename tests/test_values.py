"""Pattern-value algebra: the match relation, the order, the meet."""

import pytest
from hypothesis import given, strategies as st

from repro.core.values import (
    Const,
    SPECIAL,
    WILDCARD,
    const,
    is_const,
    is_special,
    is_wildcard,
    leq,
    matches,
    meet,
    value_matches,
)

entries = st.one_of(
    st.just(WILDCARD),
    st.integers(min_value=0, max_value=5).map(const),
)


class TestPredicates:
    def test_const_wraps_value(self):
        assert const("a") == Const("a")
        assert is_const(const("a"))

    def test_wildcard_singleton_equality(self):
        from repro.core.values import Wildcard

        assert WILDCARD == Wildcard()
        assert is_wildcard(WILDCARD)

    def test_special_is_not_wildcard(self):
        assert is_special(SPECIAL)
        assert not is_wildcard(SPECIAL)
        assert not is_const(SPECIAL)

    def test_consts_with_distinct_values_differ(self):
        assert const(1) != const(2)
        assert const(1) != const("1")


class TestMatches:
    def test_equal_constants_match(self):
        assert matches(const("a"), const("a"))

    def test_distinct_constants_do_not_match(self):
        assert not matches(const("a"), const("b"))

    def test_wildcard_matches_everything(self):
        assert matches(WILDCARD, const("a"))
        assert matches(const("a"), WILDCARD)
        assert matches(WILDCARD, WILDCARD)
        assert matches(WILDCARD, SPECIAL)

    def test_paper_example(self):
        # (Portland, ldn) matches (_, ldn) but not (_, nyc).
        assert matches(const("Portland"), WILDCARD) and matches(
            const("ldn"), const("ldn")
        )
        assert not matches(const("ldn"), const("nyc"))

    @given(entries, entries)
    def test_matches_is_symmetric(self, a, b):
        assert matches(a, b) == matches(b, a)


class TestLeq:
    def test_constant_below_wildcard(self):
        assert leq(const("a"), WILDCARD)
        assert not leq(WILDCARD, const("a"))

    def test_constant_below_itself_only(self):
        assert leq(const("a"), const("a"))
        assert not leq(const("a"), const("b"))

    @given(entries)
    def test_reflexive(self, a):
        assert leq(a, a)

    @given(entries, entries)
    def test_antisymmetric(self, a, b):
        if leq(a, b) and leq(b, a):
            assert a == b

    @given(entries, entries, entries)
    def test_transitive(self, a, b, c):
        if leq(a, b) and leq(b, c):
            assert leq(a, c)


class TestMeet:
    def test_meet_with_wildcard_is_other(self):
        assert meet(WILDCARD, const("a")) == const("a")
        assert meet(const("a"), WILDCARD) == const("a")
        assert meet(WILDCARD, WILDCARD) == WILDCARD

    def test_meet_of_distinct_constants_undefined(self):
        assert meet(const("a"), const("b")) is None

    def test_meet_of_equal_constants(self):
        assert meet(const("a"), const("a")) == const("a")

    @given(entries, entries)
    def test_commutative(self, a, b):
        assert meet(a, b) == meet(b, a)

    @given(entries)
    def test_idempotent(self, a):
        assert meet(a, a) == a

    @given(entries, entries)
    def test_meet_is_lower_bound(self, a, b):
        m = meet(a, b)
        if m is not None:
            assert leq(m, a) and leq(m, b)

    @given(entries, entries, entries)
    def test_meet_is_greatest_lower_bound(self, a, b, c):
        m = meet(a, b)
        if leq(c, a) and leq(c, b):
            assert m is not None
            assert leq(c, m)


class TestValueMatches:
    def test_wildcard_matches_any_value(self):
        assert value_matches("anything", WILDCARD)

    def test_constant_requires_equality(self):
        assert value_matches("a", const("a"))
        assert not value_matches("b", const("a"))

    def test_special_matches_any_value(self):
        assert value_matches("x", SPECIAL)
