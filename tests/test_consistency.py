"""CFD consistency (satisfiability) and witness construction."""

import pytest

from repro.core.cfd import CFD
from repro.core.consistency import is_consistent, witness_tuple
from repro.core.domains import BOOL, finite
from repro.core.schema import Attribute, RelationSchema


class TestInfiniteDomain:
    def test_plain_fds_always_consistent(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        assert is_consistent(sigma)

    def test_conflicting_global_constants_inconsistent(self):
        sigma = [CFD.constant("R", "A", "a"), CFD.constant("R", "A", "b")]
        assert not is_consistent(sigma)

    def test_constant_chain_conflict(self):
        # A=a everywhere; A=a forces B=b1 and B=b2.
        sigma = [
            CFD.constant("R", "A", "a"),
            CFD("R", {"A": "a"}, {"B": "b1"}),
            CFD("R", {"A": "a"}, {"B": "b2"}),
        ]
        assert not is_consistent(sigma)

    def test_pattern_local_conflict_is_still_consistent(self):
        # B=b1 and B=b2 conflict only on A=a tuples; tuples with other A
        # values exist, so a nonempty instance exists.
        sigma = [
            CFD("R", {"A": "a"}, {"B": "b1"}),
            CFD("R", {"A": "a"}, {"B": "b2"}),
        ]
        assert is_consistent(sigma)

    def test_multiple_relations_all_checked(self):
        sigma = [
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD.constant("S", "A", "a"),
            CFD.constant("S", "A", "b"),
        ]
        assert not is_consistent(sigma)
        assert is_consistent(sigma, relation="R")

    def test_empty_sigma_consistent(self):
        assert is_consistent([])


class TestFiniteDomains:
    def test_finite_case_split_inconsistency(self):
        # dom(A) = {T, F}; both values force conflicting constants on B.
        schema = RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])
        sigma = [
            CFD("R", {"A": True}, {"B": "b1"}),
            CFD("R", {"A": False}, {"B": "b2"}),
            CFD.constant("R", "B", "b3"),
        ]
        assert not is_consistent(sigma, schema=schema)

    def test_same_sigma_consistent_with_infinite_domain(self):
        sigma = [
            CFD("R", {"A": True}, {"B": "b1"}),
            CFD("R", {"A": False}, {"B": "b2"}),
            CFD.constant("R", "B", "b3"),
        ]
        assert is_consistent(sigma)  # A can take a third value

    def test_one_surviving_branch_suffices(self):
        schema = RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])
        sigma = [
            CFD("R", {"A": True}, {"B": "b1"}),
            CFD.constant("R", "B", "b2"),
        ]
        assert is_consistent(sigma, schema=schema)  # choose A = False


class TestWitness:
    def test_witness_satisfies_sigma(self):
        sigma = [
            CFD.constant("R", "A", "a"),
            CFD("R", {"A": "a"}, {"B": "b"}),
        ]
        witness = witness_tuple(sigma, "R")
        assert witness is not None
        assert witness["A"] == "a"
        assert witness["B"] == "b"
        assert all(dep.holds_on([witness]) for dep in sigma)

    def test_no_witness_for_inconsistent(self):
        sigma = [CFD.constant("R", "A", "a"), CFD.constant("R", "A", "b")]
        assert witness_tuple(sigma, "R") is None

    def test_witness_uses_fresh_values_for_free_attributes(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        witness = witness_tuple(sigma, "R")
        assert witness is not None
        assert witness["A"] != witness["B"]
