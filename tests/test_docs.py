"""The docs/ pages' code blocks must actually run (docs-honesty check).

Reuses the README harness (:mod:`test_readme`): every ```python block in
every ``docs/*.md`` page is executed in a fresh namespace, exactly as a
reader would paste it.  The CI docs job runs this module together with
``test_readme.py``.
"""

import pathlib

import pytest

from test_readme import _python_blocks

DOCS_DIR = pathlib.Path(__file__).parent.parent / "docs"
DOC_PAGES = sorted(DOCS_DIR.glob("*.md"))


def test_docs_directory_has_the_expected_pages():
    names = {page.name for page in DOC_PAGES}
    assert {"api.md", "architecture.md", "caching.md", "paper-map.md"} <= names


def test_docs_have_executable_examples():
    """At least the architecture, caching and api pages carry live code."""
    by_name = {page.name: page.read_text() for page in DOC_PAGES}
    assert len(_python_blocks(by_name["architecture.md"])) >= 1
    assert len(_python_blocks(by_name["caching.md"])) >= 3
    assert len(_python_blocks(by_name["api.md"])) >= 3


@pytest.mark.parametrize("page", DOC_PAGES, ids=lambda p: p.name)
def test_every_docs_python_block_executes(page):
    for index, block in enumerate(_python_blocks(page.read_text())):
        exec(compile(block, f"<{page.name} block {index}>", "exec"), {})


def test_architecture_names_real_paths():
    """The layer map's module paths must exist on disk."""
    import re

    text = (DOCS_DIR / "architecture.md").read_text()
    root = DOCS_DIR.parent
    for path in set(re.findall(r"src/repro/[\w/]+\.py", text)):
        assert (root / path).is_file(), f"architecture.md names missing {path}"


def test_paper_map_names_real_modules_and_tests():
    import re

    text = (DOCS_DIR / "paper-map.md").read_text()
    root = DOCS_DIR.parent
    for path in set(re.findall(r"(?:src/repro|tests|benchmarks)/[\w/]+\.py", text)):
        assert (root / path).is_file(), f"paper-map.md names missing {path}"
