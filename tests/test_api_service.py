"""The unified service API: routing, workspace, errors, deprecation shims.

The contract under test is *differential*: for every procedure family the
service routes to (SPC, SPCU, general/coNP, PTIME-chase, closure fast
path, emptiness), :class:`repro.api.PropagationService` must return
exactly what the direct procedure call returns — routing is an
implementation detail of *where* the answer comes from, never *what* it
is.  On top of that: the route labels themselves, the error taxonomy,
workspace name resolution, batch semantics, and the legacy free-function
shims.
"""

from __future__ import annotations

import os

import pytest

from repro import CFD, FD
from repro.algebra.ops import ConstEq
from repro.algebra.spc import RelationAtom, SPCView
from repro.api import (
    ApiError,
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    EmptinessRequest,
    PropagationService,
    Workspace,
)
from repro.core.domains import BOOL
from repro.core.schema import Attribute, DatabaseSchema, RelationSchema
from repro.propagation.check import propagates as raw_propagates
from repro.propagation.closure_baseline import example_41_workload
from repro.propagation.cover import prop_cfd_spc as raw_prop_cfd_spc
from repro.propagation.emptiness import view_is_empty
from repro.propagation.general import propagates_general, propagates_ptime_chase
from repro.propagation.spcu_cover import prop_cfd_spcu as raw_prop_cfd_spcu

#: The CI server matrix sets REPRO_JOBS=2 on one leg; default sequential.
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")


@pytest.fixture
def service():
    with PropagationService(jobs=JOBS) as svc:
        yield svc


def _projection_workload(n=3, defeat_fast_path=False):
    """The Example 4.1 projection view with a small mixed-verdict batch."""
    view, sigma, _ = example_41_workload(n, defeat_fast_path=defeat_fast_path)
    phis = [
        FD("V", ("A1", "B2", "B3"), ("D",)),
        FD("V", ("B1",), ("D",)),
        FD("V", ("A1", "A2", "A3"), ("D",)),
    ]
    return sigma, view, phis


# ----------------------------------------------------------------------
# Routing differentials: service verdicts == direct procedure calls.
# ----------------------------------------------------------------------


class TestCheckRouting:
    def test_spcu_route_matches_propagates(
        self, service, customer_sigma, customer_view
    ):
        phis = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
            CFD("R", {"zip": "_"}, {"street": "_"}),
            CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"}),
            FD("R", ("zip",), ("street",)),
        ]
        result = service.check(
            CheckRequest(view=customer_view, targets=phis, sigma=customer_sigma)
        )
        assert result.route == "spcu"
        assert result.propagated == [
            raw_propagates(customer_sigma, customer_view, phi) for phi in phis
        ]
        assert result.stats.queries == len(phis)

    def test_spc_route_matches_propagates(self, service):
        sigma, view, phis = _projection_workload(defeat_fast_path=True)
        result = service.check(CheckRequest(view=view, targets=phis, sigma=sigma))
        assert result.route == "spc"
        assert result.propagated == [
            raw_propagates(sigma, view, phi) for phi in phis
        ]
        assert result.stats.chases > 0

    def test_closure_route_runs_no_chase(self, service):
        sigma, view, phis = _projection_workload()
        result = service.check(CheckRequest(view=view, targets=phis, sigma=sigma))
        assert result.route == "closure"
        assert result.propagated == [
            raw_propagates(sigma, view, phi) for phi in phis
        ]
        assert result.stats.chases == 0
        assert result.stats.closure_fast_path == len(phis)

    def test_general_route_matches_enumeration(self, service):
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", BOOL), Attribute("B"), Attribute("C")])]
        )
        view = SPCView(
            "V", db, [RelationAtom("R", {a: a for a in ("A", "B", "C")})]
        )
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
        ]
        phi = CFD.constant("V", "B", "b")
        result = service.check(CheckRequest(view=view, targets=[phi], sigma=sigma))
        assert result.route == "general"
        assert result.propagated == [propagates_general(sigma, view, phi)]
        assert result.propagated == [True]

    def test_ptime_chase_route_is_deliberately_incomplete(self, service):
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", BOOL), Attribute("B"), Attribute("C")])]
        )
        view = SPCView(
            "V", db, [RelationAtom("R", {a: a for a in ("A", "B", "C")})]
        )
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
        ]
        phi = CFD.constant("V", "B", "b")
        result = service.check(
            CheckRequest(view=view, targets=[phi], sigma=sigma, assume_infinite=True)
        )
        assert result.route == "ptime-chase"
        assert result.propagated == [propagates_ptime_chase(sigma, view, phi)]
        assert result.propagated == [False]  # the PTIME/coNP gap, observed

    def test_settings_isolate_engines(self, service):
        """The general and ptime answers coexist warm without collisions."""
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", BOOL), Attribute("B"), Attribute("C")])]
        )
        view = SPCView(
            "V", db, [RelationAtom("R", {a: a for a in ("A", "B", "C")})]
        )
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
        ]
        phi = CFD.constant("V", "B", "b")
        for _ in range(2):  # second round must hit warm engines
            general = service.check(
                CheckRequest(view=view, targets=[phi], sigma=sigma)
            )
            ptime = service.check(
                CheckRequest(
                    view=view, targets=[phi], sigma=sigma, assume_infinite=True
                )
            )
            assert (general.propagated, ptime.propagated) == ([True], [False])
        assert general.stats.memo_hits == 1  # warm round answered from memo
        assert ptime.stats.memo_hits == 1

    def test_witness_databases_align_with_targets(
        self, service, customer_sigma, customer_view
    ):
        phis = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
            CFD("R", {"zip": "_"}, {"street": "_"}),
        ]
        result = service.check(
            CheckRequest(
                view=customer_view, targets=phis, sigma=customer_sigma, witness=True
            )
        )
        assert result.propagated == [True, False]
        assert result.witnesses[0] is None
        witness = result.witnesses[1]
        assert witness is not None
        evaluated = customer_view.evaluate(witness)
        assert len(evaluated.rows) >= 2  # a genuine violating pair


class TestCoverRouting:
    def test_spc_cover_matches_prop_cfd_spc(self, service):
        sigma, view, _ = _projection_workload(defeat_fast_path=True)
        result = service.cover(CoverRequest(view=view, sigma=sigma))
        assert result.route == "spc"
        assert result.cover == raw_prop_cfd_spc(sigma, view)

    def test_spcu_cover_matches_prop_cfd_spcu(
        self, service, customer_sigma, customer_view
    ):
        result = service.cover(
            CoverRequest(view=customer_view, sigma=customer_sigma)
        )
        assert result.route == "spcu"
        assert result.cover == raw_prop_cfd_spcu(customer_sigma, customer_view)

    def test_cover_memoized_across_requests(
        self, service, customer_sigma, customer_view
    ):
        first = service.cover(CoverRequest(view=customer_view, sigma=customer_sigma))
        second = service.cover(CoverRequest(view=customer_view, sigma=customer_sigma))
        assert second.cover == first.cover
        assert second.stats.memo_hits == 1
        assert second.stats.chases == 0


class TestEmptinessRouting:
    @pytest.fixture
    def empty_view_workload(self):
        # Example 3.1: the source pins B=b1 while the view selects B=b2.
        db = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
        view = SPCView(
            "V",
            db,
            [RelationAtom("R", {a: a for a in ("A", "B", "C")})],
            selection=[ConstEq("B", "b2")],
        )
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        return sigma, view

    def test_matches_view_is_empty(self, service, empty_view_workload):
        sigma, view = empty_view_workload
        result = service.emptiness(EmptinessRequest(view=view, sigma=sigma))
        assert result.route == "emptiness"
        assert result.empty is view_is_empty(sigma, view)
        assert result.empty

    def test_nonempty_with_witness(self, service, customer_sigma, customer_view):
        result = service.emptiness(
            EmptinessRequest(view=customer_view, sigma=customer_sigma, witness=True)
        )
        assert not result.empty
        assert result.witness is not None
        assert len(customer_view.evaluate(result.witness).rows) >= 1

    def test_verdict_memoized(self, service, empty_view_workload):
        sigma, view = empty_view_workload
        first = service.emptiness(EmptinessRequest(view=view, sigma=sigma))
        # Same inputs as a fresh, structurally equal view object: served
        # from the service-side memo (observable as identical output and
        # no engine involvement either way; we assert the memo is keyed
        # structurally by rebuilding the view).
        db = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
        rebuilt = SPCView(
            "V",
            db,
            [RelationAtom("R", {a: a for a in ("A", "B", "C")})],
            selection=[ConstEq("B", "b2")],
        )
        second = service.emptiness(EmptinessRequest(view=rebuilt, sigma=sigma))
        assert second.empty is first.empty
        assert len(service._empty_memo) == 1


# ----------------------------------------------------------------------
# Batches, workspace, uncached parity.
# ----------------------------------------------------------------------


class TestBatchRequests:
    def test_mixed_batch_matches_individual_answers(
        self, service, customer_sigma, customer_view
    ):
        phis = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
            CFD("R", {"zip": "_"}, {"street": "_"}),
        ]
        batch = service.submit(
            BatchRequest(
                [
                    CheckRequest(
                        view=customer_view, targets=phis, sigma=customer_sigma
                    ),
                    CoverRequest(view=customer_view, sigma=customer_sigma),
                    EmptinessRequest(view=customer_view, sigma=customer_sigma),
                ]
            )
        )
        assert isinstance(batch, BatchResult)
        check, cover, empty = batch.results
        assert check.propagated == [
            raw_propagates(customer_sigma, customer_view, phi) for phi in phis
        ]
        assert cover.cover == raw_prop_cfd_spcu(customer_sigma, customer_view)
        assert empty.empty is False
        assert batch.stats.queries == check.stats.queries + cover.stats.queries + 1

    def test_warm_batch_runs_zero_chases(
        self, service, customer_sigma, customer_view
    ):
        phis = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
            CFD("R", {"zip": "_"}, {"street": "_"}),
        ]
        request = BatchRequest(
            [CheckRequest(view=customer_view, targets=phis, sigma=customer_sigma)]
        )
        cold = service.submit(request)
        warm = service.submit(request)
        assert warm.results[0].propagated == cold.results[0].propagated
        assert cold.stats.chases > 0
        assert warm.stats.chases == 0
        assert warm.stats.memo_hits == len(phis)


class TestWorkspace:
    def test_requests_resolve_registered_names(self, customer_schema):
        workspace = Workspace()
        workspace.add_schema("customers", customer_schema)
        workspace.add_sigma(
            "default",
            [
                {"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]},
            ],
        )
        workspace.add_view(
            "V",
            {
                "name": "R",
                "branches": [
                    {
                        "atoms": [{"source": "R1", "prefix": ""}],
                        "projection": ["AC", "phn", "name", "street", "city", "zip", "CC"],
                        "constants": {"CC": "44"},
                    }
                ],
            },
            schema="customers",
        )
        with PropagationService(workspace) as service:
            result = service.check(
                CheckRequest(
                    view="V",
                    targets=[CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"})],
                )
            )
            assert result.propagated == [True]

    def test_unknown_names_raise_not_found(self, service):
        with pytest.raises(ApiError) as err:
            service.check(CheckRequest(view="nope", targets=[]))
        assert err.value.kind == "not-found"
        assert err.value.exit_code == 2

        service.workspace.add_schema("s", {"relations": []})
        with pytest.raises(ApiError) as err:
            service.workspace.sigma("missing")
        assert err.value.kind == "not-found"

    def test_malformed_documents_raise_format(self):
        workspace = Workspace()
        with pytest.raises(ApiError) as err:
            workspace.add_sigma("default", [{"kind": "who-knows"}])
        assert err.value.kind == "format"

    def test_from_files_missing_file_raises_not_found(self, tmp_path):
        with pytest.raises(ApiError) as err:
            Workspace.from_files(schema=tmp_path / "nope.json")
        assert err.value.kind == "not-found"


class TestErrorTaxonomy:
    def test_unsupported_view_kind_and_exit_code(self, service):
        with pytest.raises(ApiError) as err:
            service.check(CheckRequest(view=object(), targets=[], sigma=[]))
        assert err.value.kind == "unsupported-view"
        assert err.value.exit_code == 3

    def test_unprojected_attribute_is_bad_request(self, service):
        db = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        view = SPCView(
            "V", db, [RelationAtom("R", {"A": "A", "B": "B"})], projection=["A"]
        )
        with pytest.raises(ApiError) as err:
            service.check(
                CheckRequest(
                    view=view, targets=[CFD("V", {"A": "_"}, {"Z": "_"})], sigma=[]
                )
            )
        assert err.value.kind == "bad-request"
        assert err.value.exit_code == 2

    def test_unknown_request_type_is_bad_request(self, service):
        with pytest.raises(ApiError) as err:
            service.submit("not a request")
        assert err.value.kind == "bad-request"


class TestUncachedParity:
    def test_use_cache_false_matches_cached(
        self, service, customer_sigma, customer_view
    ):
        phis = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
            CFD("R", {"zip": "_"}, {"street": "_"}),
        ]
        cached = service.check(
            CheckRequest(view=customer_view, targets=phis, sigma=customer_sigma)
        )
        uncached = service.check(
            CheckRequest(
                view=customer_view,
                targets=phis,
                sigma=customer_sigma,
                use_cache=False,
            )
        )
        assert cached.propagated == uncached.propagated
        assert uncached.stats.memo_hits == 0


# ----------------------------------------------------------------------
# The deprecation shims.
# ----------------------------------------------------------------------


class TestDeprecationShims:
    def test_propagates_shim_matches_raw_and_warns(
        self, customer_sigma, customer_view
    ):
        from repro.propagation import propagates as shim

        phi = CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"})
        with pytest.warns(DeprecationWarning, match="CheckRequest"):
            assert shim(customer_sigma, customer_view, phi) is raw_propagates(
                customer_sigma, customer_view, phi
            )

    def test_prop_cfd_spc_shim_matches_raw(self, customer_sigma, customer_view):
        from repro.propagation import prop_cfd_spc as shim

        branch = customer_view.branches[0]
        with pytest.warns(DeprecationWarning, match="CoverRequest"):
            assert shim(customer_sigma, branch) == raw_prop_cfd_spc(
                customer_sigma, branch
            )

    def test_prop_cfd_spcu_shim_matches_raw(self, customer_sigma, customer_view):
        from repro.propagation import prop_cfd_spcu as shim

        with pytest.warns(DeprecationWarning, match="CoverRequest"):
            assert shim(customer_sigma, customer_view) == raw_prop_cfd_spcu(
                customer_sigma, customer_view
            )

    def test_shims_preserve_the_legacy_exception_surface(self):
        from repro.propagation import UnsupportedViewError
        from repro.propagation import propagates as shim

        db = DatabaseSchema([RelationSchema("R", ["A", "B"])])
        view = SPCView(
            "V", db, [RelationAtom("R", {"A": "A", "B": "B"})], projection=["A"]
        )
        with pytest.raises(KeyError):
            shim([], view, CFD("V", {"A": "_"}, {"Z": "_"}))
        with pytest.raises(UnsupportedViewError, match="undecidable"):
            shim([], object(), CFD("V", {"A": "_"}, {"B": "_"}))
