"""Direct RA evaluation, including the operators outside SPCU."""

import pytest

from repro.algebra.eval import evaluate
from repro.algebra.instance import DatabaseInstance
from repro.algebra.ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Difference,
    Product,
    Projection,
    RelationRef,
    Renaming,
    Selection,
    Union,
)
from repro.core.schema import DatabaseSchema, RelationSchema


@pytest.fixture
def db():
    return DatabaseSchema(
        [RelationSchema("R", ["A", "B"]), RelationSchema("S", ["A", "B"])]
    )


@pytest.fixture
def instance(db):
    return DatabaseInstance(
        db,
        {
            "R": [{"A": 1, "B": 1}, {"A": 2, "B": 3}],
            "S": [{"A": 1, "B": 1}],
        },
    )


class TestOperators:
    def test_relation_ref(self, instance):
        assert len(evaluate(RelationRef("R"), instance)) == 2

    def test_selection_attr_eq(self, instance):
        result = evaluate(Selection(RelationRef("R"), [AttrEq("A", "B")]), instance)
        assert result.rows == [{"A": 1, "B": 1}]

    def test_selection_const_eq(self, instance):
        result = evaluate(Selection(RelationRef("R"), [ConstEq("A", 2)]), instance)
        assert result.rows == [{"A": 2, "B": 3}]

    def test_projection_deduplicates(self, db):
        inst = DatabaseInstance(
            db, {"R": [{"A": 1, "B": 1}, {"A": 1, "B": 2}], "S": []}
        )
        result = evaluate(Projection(RelationRef("R"), ["A"]), inst)
        assert result.rows == [{"A": 1}]

    def test_renaming(self, instance):
        result = evaluate(Renaming(RelationRef("R"), {"A": "X"}), instance)
        assert all("X" in row and "A" not in row for row in result.rows)

    def test_product(self, instance):
        expr = Product(
            Renaming(RelationRef("R"), {"A": "A1", "B": "B1"}),
            RelationRef("S"),
        )
        assert len(evaluate(expr, instance)) == 2

    def test_union(self, instance):
        result = evaluate(Union(RelationRef("R"), RelationRef("S")), instance)
        assert len(result) == 2  # (1,1) deduplicated

    def test_difference(self, instance):
        result = evaluate(Difference(RelationRef("R"), RelationRef("S")), instance)
        assert result.rows == [{"A": 2, "B": 3}]

    def test_constant_relation(self, instance):
        result = evaluate(ConstantRelation({"CC": "44"}), instance)
        assert result.rows == [{"CC": "44"}]

    def test_named_output(self, instance):
        result = evaluate(RelationRef("R"), instance, name="V")
        assert result.schema.name == "V"
