"""The fuzzing subsystem itself: cases, shrinker, matrix, replay.

The shrinker contract (ISSUE 7 satellite): deterministic, monotone
(never grows a case), and failure-preserving — asserted against a
*synthetic injected-bug checker*, a predicate that plays the role of
"this case makes config X disagree with the baseline" without needing a
real engine bug.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.fuzz import (
    MatrixHarness,
    case_fingerprint,
    case_size,
    closure_oracle_disagreements,
    generate_case,
    parse_case,
    run_digest,
    run_fuzz,
    shrink_case,
)
from repro.fuzz.cases import PROFILES, is_fd_projection_case
from repro.fuzz.runner import harvest_corpus, replay_corpus
from repro.fuzz.shrink import _candidates

LOCAL_MATRIX = ["baseline", "cache", "jobs2", "shards4", "shard-recombine"]


# ----------------------------------------------------------------------
# Case generation: reproducibility and profile coverage.
# ----------------------------------------------------------------------


def test_case_generation_is_reproducible():
    for index in range(len(PROFILES)):
        first = generate_case(7, index)
        second = generate_case(7, index)
        assert first == second
        assert case_fingerprint(first) == case_fingerprint(second)


def test_case_streams_differ_by_seed_and_index():
    fingerprints = {
        case_fingerprint(generate_case(seed, index))
        for seed in (0, 1)
        for index in range(8)
    }
    assert len(fingerprints) == 16


def test_profiles_rotate_round_robin():
    names = list(PROFILES)
    for index in range(2 * len(names)):
        assert generate_case(0, index)["profile"] == names[index % len(names)]


def test_every_case_parses():
    for index in range(2 * len(PROFILES)):
        schema, sigma, view, targets = parse_case(generate_case(11, index))
        for target in targets:
            assert target.relation == view.name


def test_run_digest_orders_fingerprints():
    prints = [case_fingerprint(generate_case(0, i)) for i in range(4)]
    assert run_digest(prints) != run_digest(list(reversed(prints)))


def test_degenerate_profiles_have_their_shape():
    empty = generate_case(0, list(PROFILES).index("empty-projection"))
    assert all(not b["projection"] for b in [empty["view"]])
    single = generate_case(0, list(PROFILES).index("union-single"))
    assert len(single["view"]["branches"]) == 1
    identical = generate_case(0, list(PROFILES).index("union-identical"))
    branches = identical["view"]["branches"]
    assert len(branches) == 3
    assert all(branch == branches[0] for branch in branches)
    constant = generate_case(0, list(PROFILES).index("constant-lhs"))
    for dep in constant["sigma"]:
        assert all(entry != "_" for entry in dep["lhs"].values())


def test_fd_projection_detector_is_structural():
    case = generate_case(0, list(PROFILES).index("fd-projection"))
    assert is_fd_projection_case(case)
    tampered = copy.deepcopy(case)
    tampered["view"]["selection"] = [{"attr": "t0.A1", "value": "1"}]
    assert not is_fd_projection_case(tampered)


# ----------------------------------------------------------------------
# The shrinker, against a synthetic injected-bug checker.
# ----------------------------------------------------------------------


def _injected_bug(case: dict) -> bool:
    """A fake differential failure: 'the engines disagree' whenever
    Sigma still contains a dependency on the first schema relation whose
    LHS mentions attribute A1."""
    first = case["schema"]["relations"][0]["name"]
    for dep in case["sigma"]:
        if dep.get("relation") != first:
            continue
        lhs = dep.get("lhs", ())
        attrs = list(lhs) if isinstance(lhs, (list, dict)) else []
        if "A1" in attrs:
            return True
    return False


def _bug_case() -> dict:
    for index in range(64):
        case = generate_case(5, index)
        if _injected_bug(case):
            return case
    raise AssertionError("no generated case triggers the injected bug")


def test_shrinker_preserves_the_failure():
    case = _bug_case()
    shrunk = shrink_case(case, _injected_bug)
    assert _injected_bug(shrunk)
    schema, sigma, view, targets = parse_case(shrunk)  # still parses


def test_shrinker_is_deterministic():
    case = _bug_case()
    first = shrink_case(case, _injected_bug)
    second = shrink_case(case, _injected_bug)
    assert first == second
    assert shrink_case(copy.deepcopy(case), _injected_bug) == first


def test_shrinker_is_monotone():
    """Every candidate ever offered to the predicate — and the result —
    is no larger than the case it was derived from."""
    case = _bug_case()
    sizes: list[int] = []

    def watching(candidate: dict) -> bool:
        sizes.append(case_size(candidate))
        return _injected_bug(candidate)

    shrunk = shrink_case(case, watching)
    assert case_size(shrunk) < case_size(case)
    # Every candidate the predicate ever saw was a strict reduction of
    # the (monotonically shrinking) current case.
    assert all(size < case_size(case) for size in sizes)
    # The strong form: the accepted chain strictly decreases, which the
    # fixpoint guarantees — the result admits no smaller failing child.
    for child in _candidates(shrunk):
        if case_size(child) < case_size(shrunk):
            try:
                parse_case(child)
            except Exception:
                continue
            assert not _injected_bug(child), "shrink stopped early"


def test_shrinker_reaches_a_small_core():
    """The injected bug depends on one Sigma dependency; shrinking must
    drop (at least) every other dependency and every target."""
    case = _bug_case()
    shrunk = shrink_case(case, _injected_bug)
    assert len(shrunk["sigma"]) == 1
    assert _injected_bug(shrunk)
    assert shrunk["targets"] == []


def test_shrinker_never_accepts_invalid_documents():
    case = _bug_case()
    shrunk = shrink_case(case, lambda candidate: True)
    parse_case(shrunk)  # the always-failing predicate still ends valid


def test_shrink_union_preserves_union_compatibility():
    case = generate_case(0, list(PROFILES).index("union-mixed"))

    def failing(candidate: dict) -> bool:
        return len(candidate["view"].get("branches", [])) >= 2

    shrunk = shrink_case(case, failing)
    _, _, view, _ = parse_case(shrunk)
    projections = {tuple(b["projection"]) for b in shrunk["view"]["branches"]}
    assert len(projections) == 1


# ----------------------------------------------------------------------
# The matrix harness and the runner.
# ----------------------------------------------------------------------


def test_matrix_rejects_unknown_entries():
    with pytest.raises(ValueError, match="unknown matrix entries"):
        MatrixHarness(["baseline", "carrier-pigeon"])


def test_matrix_always_includes_the_baseline():
    with MatrixHarness(["cache"]) as harness:
        assert harness.names[0] == "baseline"


def test_local_matrix_agrees_on_every_profile():
    with MatrixHarness(LOCAL_MATRIX) as harness:
        for index in range(len(PROFILES)):
            case = generate_case(2, index)
            results, disagreements = harness.run_case(case)
            assert disagreements == []
            assert set(results) == set(LOCAL_MATRIX)
            assert set(results["baseline"]) == {"check", "cover", "empty"}
            assert set(results["shard-recombine"]) == {"check"}
            assert closure_oracle_disagreements(case) == []


def test_run_fuzz_report_is_reproducible(tmp_path):
    first = run_fuzz(len(PROFILES), 1, matrix=LOCAL_MATRIX)
    second = run_fuzz(len(PROFILES), 1, matrix=LOCAL_MATRIX)
    assert first.ok and second.ok
    assert first.digest == second.digest
    assert first.corner_hits == {name: 1 for name in PROFILES}
    assert json.loads(json.dumps(first.to_json()))["failures"] == 0


def test_replay_detects_expected_drift(tmp_path):
    """Tampering with a corpus file's pinned answers must fail replay."""
    written = harvest_corpus(
        len(PROFILES), 0, tmp_path, matrix=LOCAL_MATRIX, per_profile=1
    )
    assert written, "harvest produced no anchors"
    path = written[0]
    doc = json.loads(open(path).read())
    doc["expected"]["empty"] = '{"empty":true}'
    with open(path, "w") as handle:
        json.dump(doc, handle)
    problems = replay_corpus([path], matrix=LOCAL_MATRIX)
    assert any("drifted" in problem for problem in problems)


def test_closure_oracle_flags_a_wrong_verdict(monkeypatch):
    """The independent oracle catches an injected engine lie."""
    case = generate_case(0, list(PROFILES).index("fd-projection"))
    assert closure_oracle_disagreements(case) == []
    from repro.api.service import PropagationService

    real_check = PropagationService.check

    def lying_check(self, request):
        verdict = real_check(self, request)
        verdict.propagated = [not value for value in verdict.propagated]
        return verdict

    monkeypatch.setattr(PropagationService, "check", lying_check)
    flagged = closure_oracle_disagreements(case)
    assert any(d.op == "check" for d in flagged)
