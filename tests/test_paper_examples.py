"""Golden end-to-end tests: every worked example in the paper.

Each test reproduces one numbered example verbatim (modulo the paper's
LDN/ldn casing slip) and asserts the paper's stated conclusion.
"""

import pytest

from repro import (
    CFD,
    DatabaseSchema,
    FD,
    RelationSchema,
    SPCView,
    SPCUView,
    classify,
    implies,
    prop_cfd_spc,
    propagates,
    view_is_empty,
)
from repro.algebra.ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Product,
    RelationRef,
    Selection,
)
from repro.algebra.spc import RelationAtom
from repro.propagation.closure_baseline import exponential_family
from repro.propagation.rbr import a_resolvent


class TestExample11:
    """Section 1: the customer-integration scenario."""

    def test_view_violates_f1_on_figure_1_data(
        self, customer_view, customer_instance
    ):
        f1_on_view = CFD("R", {"zip": "_"}, {"street": "_"})
        assert not customer_view.evaluate(customer_instance).satisfies(f1_on_view)

    def test_phi1_to_phi5_propagate(self, customer_sigma, customer_view):
        goods = [
            CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
            CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"}),
            CFD("R", {"CC": "31", "AC": "_"}, {"city": "_"}),
            CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"}),
            CFD("R", {"CC": "31", "AC": "20"}, {"city": "Amsterdam"}),
        ]
        for phi in goods:
            assert propagates(customer_sigma, customer_view, phi)

    def test_q1_is_a_c_query(self):
        q1 = Product(ConstantRelation({"CC": "44"}), RelationRef("R1"))
        assert classify(q1) == "C"

    def test_data_integration_update_rejection(self, customer_sigma, customer_view):
        """Section 1's application (2): inserting (CC=44, AC=20, city=edi)
        violates phi4 — detectable from the cover without touching data."""
        phi4 = CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"})
        bad_tuple = {
            "CC": "44", "AC": "20", "city": "edi",
            "phn": "x", "name": "n", "street": "s", "zip": "z",
        }
        assert not phi4.holds_on([bad_tuple])

    def test_data_cleaning_phi6_must_be_validated(
        self, customer_sigma, customer_view
    ):
        """Section 1's application (3): phi6 is not propagated, so it
        cannot be skipped when validating the view."""
        phi6 = FD("R", ("CC", "AC", "phn"), ("street", "city", "zip"))
        assert not propagates(customer_sigma, customer_view, phi6)


class TestExample22:
    def test_view_satisfies_phi1_phi2_phi4(self, customer_view, customer_instance):
        view_rows = customer_view.evaluate(customer_instance)
        # Instance-level casing follows Figure 1 ("LDN").
        assert view_rows.satisfies(CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}))
        assert view_rows.satisfies(CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"}))
        assert view_rows.satisfies(
            CFD("R", {"CC": "44", "AC": "20"}, {"city": "LDN"})
        )


class TestExample31:
    def test_always_empty_view(self):
        schema = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("B", "b2")]), schema
        )
        phi = CFD("R", {"A": "_"}, {"B": "b1"})
        assert view_is_empty([phi], view)
        # "any source CFDs are propagated to the view".
        anything = CFD("V", {"C": "_"}, {"A": "whatever"})
        assert propagates([phi], view, anything)


class TestExample41:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_every_substitution_propagates(self, n):
        schema, fds, projection = exponential_family(n)
        db = DatabaseSchema([schema])
        atoms = [RelationAtom("R", {a: a for a in schema.attribute_names})]
        view = SPCView("V", db, atoms, projection=projection)
        cover = prop_cfd_spc(fds, view)
        # eta_1 ... eta_n -> D for every choice of Ai/Bi.
        import itertools

        for choice in itertools.product(*[(f"A{i}", f"B{i}") for i in range(1, n + 1)]):
            target = CFD("V", {a: "_" for a in choice}, {"D": "_"})
            assert implies(cover, target), f"{target} missing from cover"

    def test_cover_size_is_exponential(self):
        n = 3
        schema, fds, projection = exponential_family(n)
        db = DatabaseSchema([schema])
        atoms = [RelationAtom("R", {a: a for a in schema.attribute_names})]
        view = SPCView("V", db, atoms, projection=projection)
        cover = prop_cfd_spc(fds, view)
        deriving_d = [phi for phi in cover if phi.rhs_attr == "D"]
        assert len(deriving_d) >= 2**n


class TestExample42:
    def test_resolvent(self):
        phi1 = CFD("R", {"A1": "_", "A2": "c"}, {"A": "a"})
        phi2 = CFD("R", {"A": "_", "A2": "c", "B1": "b"}, {"B": "_"})
        phi = a_resolvent(phi1, phi2, "A")
        assert phi is not None
        assert phi.rhs_attr == "B"
        assert set(phi.lhs_attrs) == {"A1", "A2", "B1"}


class TestExample43:
    def test_full_pipeline(self):
        schema = DatabaseSchema(
            [
                RelationSchema("R1", ["B1p", "B2"]),
                RelationSchema("R2", ["A1", "A2", "A"]),
                RelationSchema("R3", ["Ap", "A2p", "B1", "B"]),
            ]
        )
        atoms = [
            RelationAtom("R1", {"B1p": "B1p", "B2": "B2"}),
            RelationAtom("R2", {"A1": "A1", "A2": "A2", "A": "A"}),
            RelationAtom("R3", {"Ap": "Ap", "A2p": "A2p", "B1": "B1", "B": "B"}),
        ]
        selection = [
            AttrEq("B1", "B1p"),
            AttrEq("A", "Ap"),
            AttrEq("A2", "A2p"),
        ]
        view = SPCView(
            "V", schema, atoms, selection,
            ["A1", "A2", "B", "B1", "B1p", "B2"],
        )
        sigma = [
            CFD("R2", {"A1": "_", "A2": "c"}, {"A": "a"}),
            CFD("R3", {"Ap": "_", "A2p": "c", "B1": "b"}, {"B": "_"}),
        ]
        cover = prop_cfd_spc(sigma, view)
        # The paper's cover {phi, phi'}:
        paper_phi = CFD("V", {"A1": "_", "A2": "c", "B1": "b"}, {"B": "_"})
        paper_phi_prime = CFD.equality("V", "B1", "B1p")
        assert implies(cover, paper_phi)
        assert implies(cover, paper_phi_prime)
        # ... and our cover is equivalent but not larger.
        assert len(cover) <= 2


class TestTableOneQualitative:
    """Spot checks for Table 1's PTIME rows: the procedures terminate
    quickly and correctly on each view-language fragment."""

    @pytest.fixture
    def db(self):
        return DatabaseSchema(
            [RelationSchema("R", ["A", "B", "C"]), RelationSchema("S", ["D", "E"])]
        )

    def test_s_view(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("A", "a")]), db
        )
        sigma = [FD("R", ("A",), ("B",))]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_p_view(self, db):
        from repro.algebra.ops import Projection

        view = SPCView.from_expr(Projection(RelationRef("R"), ["A", "B"]), db)
        sigma = [FD("R", ("A",), ("B",))]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_c_view(self, db):
        view = SPCView.from_expr(
            Product(RelationRef("R"), RelationRef("S")), db
        )
        sigma = [FD("R", ("A",), ("B",))]
        assert propagates(sigma, view, CFD("V", {"A": "_"}, {"B": "_"}))
        assert not propagates(sigma, view, CFD("V", {"D": "_"}, {"E": "_"}))

    def test_spcu_view(self, customer_sigma, customer_view):
        phi2 = CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"})
        assert propagates(customer_sigma, customer_view, phi2)
