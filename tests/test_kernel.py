"""Differential tests for the bit-packed kernel (``repro.kernel``).

Every kernel component is tested against the baseline it replaces, on
seeded random streams so failures reproduce:

- ``bitset_closure`` against the textbook ``_closure_fixpoint``,
- ``PackedEquivalenceClasses`` against ``EquivalenceClasses`` on random
  operation streams (including the ``BottomEQ`` witnesses),
- a ``kernel="bitset"`` engine against a ``kernel="baseline"`` engine on
  generator workloads — verdicts, covers and *byte-identical*
  counterexamples,
- the automatic fallback: a construct the packed runner cannot intern
  (an unhashable view constant) flips it unusable and the query is
  re-answered by the baseline.
"""

from __future__ import annotations

import random

import pytest

from repro import CFD
from repro.core.fd import FD, _closure_fixpoint
from repro.core.values import WILDCARD, is_wildcard
from repro.generators import random_cfds, random_schema, random_spcu_view
from repro.kernel import (
    DEFAULT_KERNEL,
    KERNELS,
    PackedEquivalenceClasses,
    bitset_closure,
    resolve_kernel,
    validate_kernel,
)
from repro.propagation.eqclasses import BottomEQ, EquivalenceClasses
from repro.propagation.engine import PropagationEngine

SEEDS = [0, 1, 2, 3]

ATTRS = [f"A{i}" for i in range(8)]


# ----------------------------------------------------------------------
# Attribute closure.
# ----------------------------------------------------------------------


def _random_fds(rng: random.Random, count: int) -> list[FD]:
    out = []
    for _ in range(count):
        lhs = tuple(rng.sample(ATTRS, rng.randint(1, 3)))
        rhs = tuple(rng.sample(ATTRS, rng.randint(1, 2)))
        out.append(FD("R", lhs, rhs))
    return out


class TestBitsetClosure:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_fixpoint_on_random_streams(self, seed):
        rng = random.Random(4100 + seed)
        for _ in range(50):
            fds = frozenset(_random_fds(rng, rng.randint(0, 8)))
            attrs = frozenset(rng.sample(ATTRS, rng.randint(0, len(ATTRS))))
            assert bitset_closure(attrs, fds) == _closure_fixpoint(attrs, fds)

    def test_attrs_outside_every_fd(self):
        fds = frozenset([FD("R", ("A0",), ("A1",))])
        got = bitset_closure(frozenset({"Z", "A0"}), fds)
        assert got == frozenset({"Z", "A0", "A1"})

    def test_empty_inputs(self):
        assert bitset_closure(frozenset(), frozenset()) == frozenset()


# ----------------------------------------------------------------------
# Packed equivalence classes.
# ----------------------------------------------------------------------


def _bottom_equal(a, b) -> bool:
    if isinstance(a, BottomEQ) != isinstance(b, BottomEQ):
        return False
    if not isinstance(a, BottomEQ):
        return a is None and b is None
    return a.attribute == b.attribute and a.values == b.values


class TestPackedEquivalenceClasses:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_baseline_on_random_op_streams(self, seed):
        rng = random.Random(4200 + seed)
        attrs = ATTRS[: rng.randint(3, len(ATTRS))]
        base = EquivalenceClasses(attrs)
        packed = PackedEquivalenceClasses(attrs)
        for _ in range(120):
            op = rng.random()
            a, b = rng.choice(attrs), rng.choice(attrs)
            if op < 0.45:
                assert _bottom_equal(packed.union(a, b), base.union(a, b))
            elif op < 0.7:
                value = str(rng.randint(1, 3))
                assert _bottom_equal(
                    packed.set_key(a, value), base.set_key(a, value)
                )
            else:
                assert packed.find(a) == base.find(a)
                assert packed.same(a, b) == base.same(a, b)
                assert packed.key(a) == base.key(a)
                assert packed.has_key(a) == base.has_key(a)
        assert packed.classes() == base.classes()
        prefer = rng.sample(attrs, rng.randint(1, len(attrs)))
        for attr in attrs:
            assert packed.representative(attr, prefer) == base.representative(
                attr, prefer
            )

    def test_merge_direction_names_the_root(self):
        packed = PackedEquivalenceClasses(["X", "Y"])
        base = EquivalenceClasses(["X", "Y"])
        packed.union("Y", "X")
        base.union("Y", "X")
        assert packed.find("X") == base.find("X") == "Y"


# ----------------------------------------------------------------------
# Kernel selection.
# ----------------------------------------------------------------------


class TestConfig:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_kernel() == DEFAULT_KERNEL == "bitset"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "baseline")
        assert resolve_kernel() == "baseline"
        # An explicit value wins over the environment.
        assert resolve_kernel("bitset") == "bitset"

    def test_rejects_unknown(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown kernel"):
            validate_kernel("turbo")
        monkeypatch.setenv("REPRO_KERNEL", "turbo")
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel()

    def test_engine_resolves_and_validates(self):
        assert PropagationEngine(kernel="baseline").kernel == "baseline"
        with pytest.raises(ValueError, match="unknown kernel"):
            PropagationEngine(kernel="turbo")

    def test_kernel_is_not_a_memo_setting(self):
        # Answer-identical kernels share warm lines: the kernel must not
        # enter the memo/persist key material.
        for name in KERNELS:
            engine = PropagationEngine(kernel=name)
            assert engine._memo_settings() == PropagationEngine()._memo_settings()


# ----------------------------------------------------------------------
# Engine-level differential: packed chase vs the baseline.
# ----------------------------------------------------------------------


def _view_cfds(rng: random.Random, view, sigma, count: int):
    """Candidate view CFDs biased toward constants that interact."""
    pool = [str(v) for v in range(1, 5)]
    for phi in sigma:
        for _, entry in phi.lhs + phi.rhs:
            if not is_wildcard(entry):
                pool.append(entry.value)
    projection = list(view.branches[0].projection)
    out = []
    for _ in range(count):
        lhs_size = rng.randint(1, min(2, len(projection) - 1))
        chosen = rng.sample(projection, lhs_size + 1)

        def entry():
            return WILDCARD if rng.random() < 0.6 else rng.choice(pool)

        out.append(
            CFD(
                view.name,
                {a: entry() for a in chosen[:-1]},
                {chosen[-1]: entry()},
            )
        )
    return out


def _workload(seed: int):
    rng = random.Random(4300 + seed)
    schema = random_schema(rng, num_relations=3, min_attributes=4, max_attributes=6)
    sigma = random_cfds(rng, schema, 8, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spcu_view(
        rng,
        schema,
        num_branches=rng.randint(2, 3),
        num_projected=5,
        num_selections=2,
        num_atoms=2,
    )
    phis = _view_cfds(rng, view, sigma, 10)
    return sigma, view, phis


@pytest.mark.parametrize("seed", SEEDS)
def test_kernels_agree_on_verdicts_and_witnesses(seed):
    import json

    from repro import io as repro_io

    sigma, view, phis = _workload(seed)
    bitset = PropagationEngine(kernel="bitset")
    baseline = PropagationEngine(kernel="baseline")
    got = bitset.check_many(sigma, view, phis)
    want = baseline.check_many(sigma, view, phis)
    assert got == want
    for phi, verdict in zip(phis, want):
        if verdict:
            continue
        packed = bitset.find_counterexample(sigma, view, phi)
        plain = baseline.find_counterexample(sigma, view, phi)
        # Byte-identical on the wire: the same violating pair and the
        # same serialized database (fresh placeholder *objects* per
        # instantiation never compare equal in memory).
        assert packed.branch_pair == plain.branch_pair
        assert json.dumps(
            repro_io.instance_to_json(packed.database), sort_keys=True
        ) == json.dumps(
            repro_io.instance_to_json(plain.database), sort_keys=True
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_kernels_agree_on_covers(seed):
    sigma, view, _ = _workload(seed)
    bitset = PropagationEngine(kernel="bitset")
    baseline = PropagationEngine(kernel="baseline")
    assert bitset.cover(sigma, view) == baseline.cover(sigma, view)


def test_kernel_engine_still_counts_chases():
    """The packed path mirrors the tableau counters the stats surface."""
    sigma, view, phis = _workload(0)
    engine = PropagationEngine(kernel="bitset")
    engine.check_many(sigma, view, phis)
    stats = engine.stats
    assert stats.chase_invocations >= 0
    assert stats.coupled_misses >= stats.coupled_hits * 0  # counters exist
    # Closure-memo counters (PR 9 satellite) are surfaced too.
    assert stats.closure_hits >= 0 and stats.closure_misses >= 0
    assert "closure=" in repr(stats)


# ----------------------------------------------------------------------
# Automatic fallback.
# ----------------------------------------------------------------------


def test_unhashable_constant_falls_back_to_baseline():
    """A view constant the runner cannot intern must not change answers.

    The engine layer rejects unhashable view constants outright (its
    fingerprints hash them), so the fallback seam lives one level down:
    ``find_counterexample(..., kernel="bitset")`` meets the interning
    ``TypeError``, flips the runner unusable and re-answers through the
    baseline pair loop.
    """
    from repro import (
        ConstantRelation,
        DatabaseSchema,
        Product,
        RelationRef,
        RelationSchema,
        SPCUView,
        Union,
    )
    from repro.propagation.check import (
        BranchPairCache,
        _sigma_state,
        find_counterexample,
    )

    schema = DatabaseSchema(
        [RelationSchema(f"R{i}", ["A", "B"]) for i in (1, 2)]
    )

    class Weird:
        """Equality-only value: hashing it raises, `==` works."""

        __hash__ = None

        def __eq__(self, other):
            return isinstance(other, Weird)

    expr = Union(
        Product(ConstantRelation({"C": Weird()}), RelationRef("R1")),
        Product(ConstantRelation({"C": Weird()}), RelationRef("R2")),
    )
    view = SPCUView.from_expr(expr, schema, name="V")
    sigma = [FD("R1", ("A",), ("B",)), FD("R2", ("A",), ("B",))]
    holds = CFD("V", {"A": WILDCARD}, {"B": WILDCARD})
    fails = CFD("V", {"B": WILDCARD}, {"A": WILDCARD})
    for phi in (holds, fails):
        answers = []
        for kernel in KERNELS:
            cache = BranchPairCache(view, enabled=True)
            witness = find_counterexample(
                sigma, view, phi, cache=cache, kernel=kernel
            )
            answers.append(witness is None)
            if kernel == "bitset":
                cfds, sigma_key = _sigma_state(sigma)
                runner = cache.kernel_runner(cfds, sigma_key)
                assert runner.usable is False
        assert answers[0] == answers[1]
