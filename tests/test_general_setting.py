"""The general setting: finite domains, the PTIME/coNP gap, Theorem 3.2."""

import pytest

from repro import CFD, DatabaseSchema, FD, RelationSchema, SPCView
from repro.core.domains import BOOL, finite
from repro.core.schema import Attribute
from repro.algebra.ops import ConstEq
from repro.algebra.spc import RelationAtom
from repro.propagation import (
    ThreeSat,
    encode,
    finite_branching_cells,
    propagates,
    propagates_general,
    propagates_ptime_chase,
)


def _bool_view(db, projection=None):
    atoms = [
        RelationAtom("R", {a: a for a in db.relation("R").attribute_names})
    ]
    return SPCView("V", db, atoms, projection=projection)


class TestFiniteDomainGap:
    """Cases where the infinite-domain chase is wrong in the general setting."""

    @pytest.fixture
    def db(self):
        return DatabaseSchema(
            [
                RelationSchema(
                    "R", [Attribute("A", BOOL), Attribute("B"), Attribute("C")]
                )
            ]
        )

    def test_case_split_propagation(self, db):
        view = _bool_view(db)
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
        ]
        phi = CFD.constant("V", "B", "b")
        assert propagates_general(sigma, view, phi)
        # The single chase misses the case split: it reports a spurious
        # counterexample (a fresh non-Boolean value for A).
        assert not propagates_ptime_chase(sigma, view, phi)

    def test_singleton_domain_forces_constant(self):
        one = finite("one", ["only"])
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", one), Attribute("B")])]
        )
        view = _bool_view(db)
        phi = CFD.constant("V", "A", "only")
        assert propagates_general([], view, phi)
        assert not propagates_ptime_chase([], view, phi)

    def test_agreement_when_no_finite_domains(self):
        db = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
        view = _bool_view(db)
        sigma = [FD("R", ("A",), ("B",))]
        phi = CFD("V", {"A": "_"}, {"B": "_"})
        assert propagates_general(sigma, view, phi) == propagates_ptime_chase(
            sigma, view, phi
        )

    def test_finite_domain_fd_still_fails_when_it_should(self, db):
        view = _bool_view(db)
        sigma = [CFD("R", {"A": False}, {"B": "b"})]  # True case missing
        phi = CFD.constant("V", "B", "b")
        assert not propagates_general(sigma, view, phi)

    def test_max_instantiations_caps_are_optimistic(self, db):
        view = _bool_view(db)
        sigma = [CFD("R", {"A": False}, {"B": "b"})]
        phi = CFD.constant("V", "B", "b")
        # Uncapped: the A=True case refutes propagation.
        assert not propagates(sigma, view, phi)
        # With enough budget the counterexample is still found...
        assert not propagates(sigma, view, phi, max_instantiations=4)
        # ... but a budget of 1 explores only the A=False case and is
        # (documented to be) optimistic.
        assert propagates(sigma, view, phi, max_instantiations=1)


class TestTheorem32Reduction:
    """SAT(formula) <=> the view FD is NOT propagated."""

    CASES = [
        (ThreeSat(3, ((1, 2, 3),)), True),
        (ThreeSat(1, ((1, 1, 1),)), True),
        (ThreeSat(1, ((1, 1, 1), (-1, -1, -1))), False),
        (ThreeSat(2, ((1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2))), False),
        (ThreeSat(2, ((1, 2, 2), (-1, 2, 2))), True),
        (ThreeSat(3, ((1, 2, 3), (-1, -2, -3))), True),
    ]

    @pytest.mark.parametrize("formula,expected_sat", CASES)
    def test_brute_force_sat(self, formula, expected_sat):
        assert formula.is_satisfiable() == expected_sat

    @pytest.mark.parametrize("formula,expected_sat", CASES)
    def test_round_trip(self, formula, expected_sat):
        enc = encode(formula)
        not_propagated = not propagates(enc.sigma, enc.view, enc.psi)
        assert not_propagated == expected_sat

    def test_encoding_structure(self):
        formula = ThreeSat(2, ((1, -2, 2),))
        enc = encode(formula)
        # 1 free R0 copy + m index copies + 1 join copy, plus 1 + 4 clause
        # copies of R1.
        r0_atoms = [a for a in enc.view.atoms if a.source == "R0"]
        r1_atoms = [a for a in enc.view.atoms if a.source == "R1"]
        assert len(r0_atoms) == 1 + 2 + 1
        assert len(r1_atoms) == 1 + 4
        assert enc.view.projection  # SC view keeps everything
        assert len(enc.view.projection) == len(enc.view.es_attributes())

    def test_bad_literals_rejected(self):
        with pytest.raises(ValueError):
            ThreeSat(1, ((0, 1, 1),))
        with pytest.raises(ValueError):
            ThreeSat(1, ((2, 1, 1),))

    def test_branching_cells_diagnostic_grows_with_clauses(self):
        small = encode(ThreeSat(1, ((1, 1, 1),)))
        large = encode(ThreeSat(2, ((1, 2, 2), (-1, -2, -2))))
        assert finite_branching_cells(large.sigma, large.view) > finite_branching_cells(
            small.sigma, small.view
        )


class TestSCViewConstantInteraction:
    def test_selection_on_finite_attr_with_exhaustive_cfds(self):
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])]
        )
        atoms = [RelationAtom("R", {"A": "A", "B": "B"})]
        view = SPCView("V", db, atoms, [ConstEq("A", True)])
        sigma = [CFD("R", {"A": True}, {"B": "b"})]
        # On the selected slice the constant is forced.
        assert propagates_general(sigma, view, CFD.constant("V", "B", "b"))
