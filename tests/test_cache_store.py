"""Correctness tests for the tiered cache subsystem (PR 2).

Four obligations:

1. *Persistence round-trip* — verdicts and covers written by one engine
   are served to a fresh engine (a restart / another worker process)
   from the sqlite store, with zero chases.
2. *Schema-version mismatch falls back to cold* — a store written under
   a different ``SCHEMA_VERSION`` is dropped on open, never
   misinterpreted.
3. *LRU eviction order* — the in-memory tier evicts least recently
   *used* (not least recently inserted), and counts what it does.
4. *Differential* — cached + persistent + parallel answers match the
   uncached engine on the Example 4.1 workload, for both pool kinds.

The CI cache matrix runs this module with ``REPRO_JOBS=2`` on one leg,
which routes every engine built by :func:`_engine` through the fan-out
path.
"""

from __future__ import annotations

import os

import pytest

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.propagation.cache import (
    LRUCache,
    sigma_fingerprint,
    verdict_persist_key,
    view_fingerprint,
)
from repro.propagation.check import _as_cfds
from repro.propagation.closure_baseline import exponential_family
from repro.propagation.engine import PropagationEngine
from repro.propagation.store import SCHEMA_VERSION, SqliteStore

#: The CI cache matrix sets REPRO_JOBS=2 on one leg; default sequential.
JOBS = int(os.environ.get("REPRO_JOBS", "1") or "1")


def _engine(**kwargs) -> PropagationEngine:
    kwargs.setdefault("jobs", JOBS)
    return PropagationEngine(**kwargs)


def _family(n: int):
    """The Example 4.1 workload: view, FD-only Sigma, 2^n eta queries."""
    schema, fds, projection = exponential_family(n)
    view = SPCView(
        "V",
        DatabaseSchema([schema]),
        [RelationAtom("R", {a: a for a in schema.attribute_names})],
        projection=projection,
    )
    queries = []
    for mask in range(2**n):
        lhs = tuple(
            (f"A{i + 1}" if mask & (1 << i) else f"B{i + 1}") for i in range(n)
        )
        queries.append(FD("V", lhs, ("D",)))
        queries.append(FD("V", lhs, ("A1",)))
    return fds, view, queries


# ----------------------------------------------------------------------
# 1. Persistence round-trip.
# ----------------------------------------------------------------------


def test_verdicts_survive_restart_with_zero_chases(tmp_path):
    fds, view, queries = _family(3)
    sigma = fds + [CFD("R", {"A1": "1"}, {"D": "9"})]  # defeat the fast path

    with _engine(cache_dir=str(tmp_path)) as warm:
        expected = warm.check_many(sigma, view, queries)
        assert warm.stats.chase_invocations > 0
        assert warm.stats.persistent_writes == len(set(queries))

    # A fresh engine — in production a different worker process — answers
    # the whole batch from the persistent tier without a single chase.
    with _engine(cache_dir=str(tmp_path)) as cold:
        assert cold.check_many(sigma, view, queries) == expected
        assert cold.stats.chase_invocations == 0
        assert cold.stats.closure_fast_path == 0
        assert cold.stats.persistent_hits == len(set(queries))


def test_cover_round_trip_through_store(tmp_path):
    fds, view, _ = _family(3)
    with _engine(cache_dir=str(tmp_path)) as warm:
        expected = warm.cover(fds, view)
        assert expected
    with _engine(cache_dir=str(tmp_path)) as cold:
        assert cold.cover(fds, view) == expected
        assert cold.stats.persistent_hits == 1
        assert cold.stats.rbr.drops == 0  # nothing recomputed


def test_engine_clear_refills_from_persistent_tier(tmp_path):
    fds, view, queries = _family(2)
    with _engine(cache_dir=str(tmp_path)) as engine:
        expected = engine.check_many(fds, view, queries)
        engine.clear()
        assert engine.check_many(fds, view, queries) == expected
        # Not recomputed: the cleared memory tier refilled from sqlite.
        assert engine.stats.persistent_hits == len(set(queries))


def test_store_is_keyed_on_sigma_and_settings(tmp_path):
    """Logically different queries never share a persistent line."""
    fds, view, queries = _family(2)
    with _engine(cache_dir=str(tmp_path)) as engine:
        engine.check_many(fds, view, queries)
    # Same store, mutated Sigma: every query recomputes.
    with _engine(cache_dir=str(tmp_path)) as engine:
        engine.check_many(fds[:-1], view, queries)
        assert engine.stats.persistent_hits == 0
    # Same store, different settings: fresh lines again.
    with _engine(cache_dir=str(tmp_path), assume_infinite=True) as engine:
        engine.check_many(fds, view, queries)
        assert engine.stats.persistent_hits == 0


def test_view_fingerprints_include_attribute_domains():
    """Views differing only in domains never share a cache line.

    Verdicts depend on finite domains (the chase enumerates them), so
    both the structural and the persistent view fingerprints must key on
    the extended schema's domains — regression test for a cache-poisoning
    bug where the second of two domain-variant views was answered from
    the first one's line.
    """
    from repro.core.domains import Domain, STRING
    from repro.core.schema import Attribute
    from repro.propagation.engine import _view_fingerprint

    def make_view(b_domain):
        schema = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", STRING), Attribute("B", b_domain)])]
        )
        return SPCView(
            "V", schema, [RelationAtom("R", {"A": "A", "B": "B"})], projection=["A", "B"]
        )

    finite = make_view(Domain("one", ("a",)))
    infinite = make_view(STRING)
    phi = FD("V", ("A",), ("B",))
    assert view_fingerprint(finite) != view_fingerprint(infinite)
    assert _view_fingerprint(finite) != _view_fingerprint(infinite)

    # One engine, both views, both query orders: no cross-talk.
    engine = _engine()
    assert engine.check([], infinite, phi) is False
    assert engine.check([], finite, phi) is True
    reversed_order = _engine()
    assert reversed_order.check([], finite, phi) is True
    assert reversed_order.check([], infinite, phi) is False


def test_spcu_covers_are_keyed_on_the_union_name():
    """Same-branch unions with different names never share a cover line.

    Covers embed the union's name in every returned CFD, so serving W's
    cover from V's cache line would name the wrong relation —
    regression test for a fingerprint that omitted the union name.
    """
    from repro.algebra.spcu import SPCUView
    from repro.propagation.engine import _view_fingerprint

    schema = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])

    def branch(name, constant):
        return SPCView(
            name,
            schema,
            [RelationAtom("R", {a: a for a in "ABC"})],
            projection=["A", "B", "CC"],
            constants={"CC": constant},
        )

    branches = [branch("V", "1"), branch("V", "2")]
    v = SPCUView("V", branches)
    w = SPCUView("W", branches)
    assert _view_fingerprint(v) != _view_fingerprint(w)
    assert view_fingerprint(v) != view_fingerprint(w)

    sigma = [FD("R", ("A",), ("B",))]
    engine = _engine()
    cover_v, cover_w = engine.cover_many(sigma, [v, w])
    assert all(phi.relation == "V" for phi in cover_v) and cover_v
    assert all(phi.relation == "W" for phi in cover_w) and cover_w


def test_sigma_fingerprint_ignores_duplicate_multiplicity():
    """[fd] and [fd, fd] share one persistent line, like the frozenset key."""
    once = _as_cfds([FD("R", ("A",), ("B",))])
    assert sigma_fingerprint(once) == sigma_fingerprint(once * 3)


def test_fingerprints_are_order_and_embedding_insensitive():
    """FD-vs-CFD embedding and list order reach one fingerprint."""
    fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
    as_cfds = [CFD.from_fd(fd) for fd in fds]
    assert sigma_fingerprint(_as_cfds(fds)) == sigma_fingerprint(
        _as_cfds(list(reversed(as_cfds)))
    )
    schema = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])
    v1 = SPCView("V", schema, [RelationAtom("R", {a: a for a in "ABC"})])
    v2 = SPCView("V", schema, [RelationAtom("R", {a: a for a in "ABC"})])
    assert view_fingerprint(v1) == view_fingerprint(v2)
    phi = CFD("V", {"A": "_"}, {"B": "_"})
    key = verdict_persist_key("s", "v", phi, None, False)
    assert key == verdict_persist_key("s", "v", phi, None, False)
    assert key != verdict_persist_key("s", "v", phi, None, True)
    assert key != verdict_persist_key("s", "v", phi, 4, False)


# ----------------------------------------------------------------------
# 2. Schema-version mismatch falls back to cold.
# ----------------------------------------------------------------------


def test_schema_version_mismatch_discards_the_store(tmp_path):
    path = tmp_path / "propagation.sqlite"
    with SqliteStore(path) as store:
        store.put("verdicts", "k", "1")
        assert store.count("verdicts") == 1

    # Same version: the row survives a reopen.
    with SqliteStore(path) as store:
        assert not store.reset_on_open
        assert store.get("verdicts", "k") == "1"

    # Bumped version: cold start, the old row is gone, no error.
    with SqliteStore(path, schema_version=SCHEMA_VERSION + 1) as store:
        assert store.reset_on_open
        assert store.get("verdicts", "k") is None
        assert store.count("verdicts") == 0
        store.put("verdicts", "k", "0")

    # Going back is symmetric — no stale bytes in either direction.
    with SqliteStore(path) as store:
        assert store.reset_on_open
        assert store.get("verdicts", "k") is None


def test_version_mismatched_store_behaves_like_cold_engine(tmp_path, monkeypatch):
    fds, view, queries = _family(2)
    with _engine(cache_dir=str(tmp_path)) as engine:
        expected = engine.check_many(fds, view, queries)

    import repro.propagation.store as store_mod

    monkeypatch.setattr(store_mod, "SCHEMA_VERSION", SCHEMA_VERSION + 1)
    with _engine(cache_dir=str(tmp_path)) as engine:
        assert engine._store.reset_on_open
        assert engine.check_many(fds, view, queries) == expected
        assert engine.stats.persistent_hits == 0  # recomputed, not reused


def test_stale_writer_rows_are_invisible_to_new_version_readers(tmp_path):
    """Rolling-upgrade race: an old-version process whose connection
    outlived a new-version reset keeps writing — its rows must never be
    served to (nor poison) new-version readers."""
    path = tmp_path / "propagation.sqlite"
    old = SqliteStore(path)  # the long-running old-version worker
    new = SqliteStore(path, schema_version=SCHEMA_VERSION + 1)  # resets
    assert new.reset_on_open

    old.put("verdicts", "k", "old-encoding")  # races in after the reset
    assert new.get("verdicts", "k") is None  # a miss, never stale bytes
    new.put("verdicts", "k", "1")
    assert new.get("verdicts", "k") == "1"
    # The old writer is equally shielded from new-encoding payloads.
    assert old.get("verdicts", "k") is None or old.get("verdicts", "k") == "old-encoding"
    old.close()
    new.close()


def test_store_rejects_unknown_tables(tmp_path):
    with SqliteStore(tmp_path / "s.sqlite") as store:
        with pytest.raises(ValueError, match="unknown store table"):
            store.get("meta; DROP TABLE verdicts", "k")


# ----------------------------------------------------------------------
# 3. LRU eviction order and telemetry.
# ----------------------------------------------------------------------


def test_lru_evicts_least_recently_used_not_inserted():
    lru = LRUCache(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refresh "a": now "b" is the LRU entry
    lru.put("c", 3)
    assert lru.evictions == 1
    assert "b" not in lru and "a" in lru and "c" in lru
    assert lru.keys() == ["a", "c"]  # eviction order: a before c
    assert lru.get("b", "gone") == "gone"
    assert (lru.hits, lru.misses) == (1, 1)


def test_lru_unbounded_and_validation():
    lru = LRUCache(capacity=None)
    for i in range(1000):
        lru.put(i, i)
    assert len(lru) == 1000 and lru.evictions == 0
    with pytest.raises(ValueError):
        LRUCache(capacity=0)
    with pytest.raises(ValueError):
        PropagationEngine(jobs=0)
    with pytest.raises(ValueError):
        PropagationEngine(pool="greenlet")


def test_bounded_engine_counts_evictions_and_stays_correct():
    fds, view, queries = _family(3)
    bounded = _engine(cache_size=4)
    unbounded = _engine()
    assert bounded.check_many(fds, view, queries) == unbounded.check_many(
        fds, view, queries
    )
    assert bounded.stats.evictions > 0
    assert unbounded.stats.evictions == 0
    # Verdicts stay correct when re-asked after eviction churn.
    assert bounded.check_many(fds, view, queries) == unbounded.check_many(
        fds, view, queries
    )


# ----------------------------------------------------------------------
# 4. Differential: cached + persistent + parallel == uncached.
# ----------------------------------------------------------------------


@pytest.mark.parametrize("pool", ["thread", "process"])
def test_parallel_persistent_engine_matches_uncached(tmp_path, pool):
    fds, view, queries = _family(3)
    sigma = fds + [CFD("R", {"A1": "1"}, {"D": "9"})]  # force real chases
    baseline = PropagationEngine(use_cache=False)
    expected = baseline.check_many(sigma, view, queries)

    engine = PropagationEngine(
        cache_dir=str(tmp_path / pool), cache_size=32, jobs=2, pool=pool
    )
    with engine:
        assert engine.check_many(sigma, view, queries) == expected
        assert engine.stats.parallel_tasks > 0
        # Worker chase counters are merged back into the batch stats.
        assert engine.stats.chase_invocations > 0

    # And the parallel run's write-backs warm the store for a restart.
    with PropagationEngine(cache_dir=str(tmp_path / pool)) as cold:
        assert cold.check_many(sigma, view, queries) == expected
        assert cold.stats.chase_invocations == 0


def test_parallel_cover_many_matches_sequential():
    schema, fds, projection = exponential_family(3)
    views = [
        SPCView(
            "V",
            DatabaseSchema([schema]),
            [RelationAtom("R", {a: a for a in schema.attribute_names})],
            projection=projection[:k] + ["D"],
        )
        for k in (2, 3, 4, 5)
    ]
    sequential = PropagationEngine()
    parallel = PropagationEngine(jobs=2)
    assert parallel.cover_many(fds, views) == sequential.cover_many(fds, views)
    assert parallel.stats.parallel_tasks > 0
    # Worker tableau counters are folded into the stats, not stranded.
    assert parallel.stats.rbr.drops >= sequential.stats.rbr.drops > 0
    # Second ask: all memory hits, no new pool work.
    tasks = parallel.stats.parallel_tasks
    parallel.cover_many(fds, views)
    assert parallel.stats.parallel_tasks == tasks
    assert parallel.stats.cover_hits >= len(views)


def test_parallel_cover_stats_include_worker_chases():
    """Fan-out worker tableau counters surface in engine.stats.

    SPCU candidate verification chases inside the workers; after a
    parallel cover_many those chases must appear in
    ``stats.chase_invocations`` (regression: they were merged into the
    retired totals but never synced into the stats object).
    """
    from repro.algebra.spcu import SPCUView

    schema = DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])

    def union(name):
        branches = [
            SPCView(
                name,
                schema,
                [RelationAtom("R", {a: a for a in "ABC"})],
                projection=["A", "B", "CC"],
                constants={"CC": tag},
            )
            for tag in ("1", "2")
        ]
        return SPCUView(name, branches)

    sigma = [FD("R", ("A",), ("B",))]
    views = [union("V"), union("W")]
    engine = PropagationEngine(jobs=2)
    covers = engine.cover_many(sigma, views)
    assert all(covers)
    assert engine.stats.parallel_tasks > 0
    assert engine.stats.chase_invocations > 0


def test_duplicate_misses_fan_out_once():
    fds, view, _ = _family(2)
    sigma = fds + [CFD("R", {"A1": "1"}, {"D": "9"})]
    phi = FD("V", ("A1", "B2"), ("D",))
    engine = _engine(jobs=2)
    verdicts = engine.check_many(sigma, view, [phi] * 6)
    assert verdicts == [verdicts[0]] * 6
    assert engine.stats.verdict_hits == 5  # duplicates answered from memo
