"""Reduction By Resolution: A-resolvents, Drop, RBR (Figure 3)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.fd import FD, fd_closure, project_fds
from repro.core.implication import equivalent, implies
from repro.core.values import Const, WILDCARD
from repro.propagation.rbr import a_resolvent, drop, rbr, resolvents


class TestAResolvent:
    def test_example_4_2(self):
        """The paper's Example 4.2 resolvent."""
        phi1 = CFD("R", {"A1": "_", "A2": "c"}, {"A": "a"})
        phi2 = CFD("R", {"A": "_", "A2": "c", "B1": "b"}, {"B": "_"})
        result = a_resolvent(phi1, phi2, "A")
        # The paper reports ([A1, A2, B1] -> B, (_, c, b || _)); our
        # simplification keeps it identical (no self-reference involved).
        assert result == CFD(
            "R", {"A1": "_", "A2": "c", "B1": "b"}, {"B": "_"}
        )

    def test_constant_rhs_flows_into_leq_gate(self):
        # Producer concludes A = a; consumer needs A = a: allowed.
        phi1 = CFD("R", {"X": "_"}, {"A": "a"})
        phi2 = CFD("R", {"A": "a", "Z": "_"}, {"B": "_"})
        result = a_resolvent(phi1, phi2, "A")
        assert result == CFD("R", {"X": "_", "Z": "_"}, {"B": "_"})

    def test_wildcard_conclusion_blocked_by_constant_premise(self):
        # Producer concludes an unknown A; consumer requires A = a.
        phi1 = CFD("R", {"X": "_"}, {"A": "_"})
        phi2 = CFD("R", {"A": "a", "Z": "_"}, {"B": "_"})
        assert a_resolvent(phi1, phi2, "A") is None

    def test_constant_conclusion_meets_wildcard_premise(self):
        phi1 = CFD("R", {"X": "_"}, {"A": "a"})
        phi2 = CFD("R", {"A": "_", "Z": "_"}, {"B": "_"})
        assert a_resolvent(phi1, phi2, "A") is not None

    def test_mismatched_constants_blocked(self):
        phi1 = CFD("R", {"X": "_"}, {"A": "a"})
        phi2 = CFD("R", {"A": "b", "Z": "_"}, {"B": "_"})
        assert a_resolvent(phi1, phi2, "A") is None

    def test_shared_attribute_patterns_meet(self):
        phi1 = CFD("R", {"X": "1"}, {"A": "_"})
        phi2 = CFD("R", {"A": "_", "X": "_"}, {"B": "_"})
        result = a_resolvent(phi1, phi2, "A")
        assert result.lhs == (("X", Const("1")),)

    def test_shared_attribute_conflict_blocks(self):
        phi1 = CFD("R", {"X": "1"}, {"A": "_"})
        phi2 = CFD("R", {"A": "_", "X": "2"}, {"B": "_"})
        assert a_resolvent(phi1, phi2, "A") is None

    def test_wrong_roles_rejected(self):
        phi1 = CFD("R", {"X": "_"}, {"A": "_"})
        phi2 = CFD("R", {"A": "_"}, {"B": "_"})
        assert a_resolvent(phi1, phi2, "B") is None  # phi1 does not derive B
        assert a_resolvent(phi2, phi1, "A") is None  # phi1 does not consume A

    def test_resolvent_never_mentions_dropped_attribute(self):
        phi1 = CFD("R", {"X": "_"}, {"A": "_"})
        phi2 = CFD("R", {"A": "_", "X": "_"}, {"B": "_"})
        result = a_resolvent(phi1, phi2, "A")
        assert "A" not in result.attributes

    def test_equality_cfds_not_resolved(self):
        phi1 = CFD.equality("R", "X", "A")
        phi2 = CFD("R", {"A": "_"}, {"B": "_"})
        assert a_resolvent(phi1, phi2, "A") is None


class TestDrop:
    def test_drop_removes_attribute_entirely(self):
        gamma = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"X": "_"}, {"C": "_"}),
        ]
        result = drop(gamma, "A")
        assert all("A" not in phi.attributes for phi in result)
        assert CFD("R", {"X": "_"}, {"B": "_"}) in result
        assert CFD("R", {"X": "_"}, {"C": "_"}) in result

    def test_resolvents_function(self):
        gamma = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
        ]
        found = resolvents(gamma, "A")
        assert found == [CFD("R", {"X": "_"}, {"B": "_"})]

    def test_trivial_resolvents_excluded(self):
        gamma = [
            CFD("R", {"B": "_"}, {"A": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
        ]
        assert resolvents(gamma, "A") == []  # B -> B is trivial


class TestRBRvsClosureBaseline:
    """Proposition 4.4 ground truth: RBR equals closure-then-project.

    For FD workloads both methods must yield equivalent covers of the
    projected dependencies; the closure method is the exponential oracle.
    """

    ATTRS = ("A", "B", "C", "D", "E")

    def _check(self, fds, projection):
        cfds = [CFD.from_fd(fd) for fd in fds]
        dropped = [a for a in self.ATTRS if a not in projection]
        via_rbr = rbr(cfds, dropped)
        oracle = project_fds(
            fd_closure("R", self.ATTRS, fds), set(projection)
        )
        oracle_cfds = [CFD.from_fd(fd) for fd in oracle]
        assert equivalent(via_rbr, oracle_cfds), (
            f"RBR {via_rbr} != closure {oracle} for {fds} on {projection}"
        )

    def test_transitive_chain(self):
        self._check(
            [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))], ("A", "C")
        )

    def test_diamond(self):
        self._check(
            [
                FD("R", ("A",), ("B",)),
                FD("R", ("A",), ("C",)),
                FD("R", ("B", "C"), ("D",)),
            ],
            ("A", "D"),
        )

    def test_nothing_projects(self):
        self._check([FD("R", ("A",), ("B",))], ("C", "D"))

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_random_fd_workloads(self, seed):
        rng = random.Random(seed)
        fds = []
        for _ in range(rng.randint(1, 5)):
            lhs = rng.sample(self.ATTRS, rng.randint(1, 2))
            rhs = rng.choice([a for a in self.ATTRS if a not in lhs])
            fds.append(FD("R", lhs, (rhs,)))
        projection = tuple(rng.sample(self.ATTRS, rng.randint(2, 4)))
        self._check(fds, projection)


class TestRBRSoundnessWithPatterns:
    """Every RBR output must be implied by the input (Proposition 4.4's
    easy direction), for pattern-carrying CFDs too."""

    ATTRS = ("A", "B", "C", "D")

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_outputs_implied_by_inputs(self, seed):
        rng = random.Random(seed)
        gamma = []
        for _ in range(rng.randint(1, 5)):
            size = rng.randint(1, 2)
            chosen = rng.sample(self.ATTRS, size + 1)

            def entry():
                return rng.choice(["_", rng.choice(("0", "1"))])

            gamma.append(
                CFD(
                    "R",
                    {a: entry() for a in chosen[:-1]},
                    {chosen[-1]: entry()},
                )
            )
        dropped = rng.sample(self.ATTRS, rng.randint(1, 2))
        result = rbr(gamma, dropped)
        for phi in result:
            assert not set(dropped) & set(phi.attributes)
            assert implies(gamma, phi), (
                f"seed={seed}: RBR produced {phi} not implied by {gamma}"
            )


class TestRBRWithPatterns:
    def test_constants_block_transitivity(self):
        # The Figure 6 discussion: constants on the dropped attribute
        # block resolution, so fewer CFDs propagate with more constants.
        wild = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
        ]
        blocked = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"A": "k"}, {"B": "_"}),
        ]
        assert rbr(wild, ["A"])  # nonempty: X -> B survives
        assert rbr(blocked, ["A"]) == []

    def test_constant_forcing_cfd_survives_via_simplification(self):
        # (X A -> A, (tx, _ || a)) must not be lost when A is dropped...
        gamma = [CFD("R", {"X": "x1", "A": "_"}, {"A": "a"})]
        result = rbr(gamma, ["B"])  # dropping something else keeps it
        assert result == [CFD("R", {"X": "x1"}, {"A": "a"})]

    def test_pattern_meet_in_chained_resolution(self):
        gamma = [
            CFD("R", {"X": "1"}, {"A": "2"}),
            CFD("R", {"A": "2"}, {"B": "3"}),
        ]
        result = rbr(gamma, ["A"])
        assert result == [CFD("R", {"X": "1"}, {"B": "3"})]

    def test_partitioned_mincover_toggle(self):
        gamma = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"X": "_"}, {"B": "_"}),  # redundant with resolvent
        ]
        with_opt = rbr(gamma, ["A"], partition_size=2)
        without_opt = rbr(gamma, ["A"], partition_size=None)
        assert equivalent(with_opt, without_opt)

    def test_multiple_drops_in_sequence(self):
        gamma = [
            CFD("R", {"X": "_"}, {"A": "_"}),
            CFD("R", {"A": "_"}, {"B": "_"}),
            CFD("R", {"B": "_"}, {"C": "_"}),
        ]
        result = rbr(gamma, ["A", "B"])
        assert equivalent(result, [CFD("R", {"X": "_"}, {"C": "_"})])
