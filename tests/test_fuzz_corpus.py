"""Replay every committed fuzz-corpus file as a tier-1 regression test.

Each ``tests/fuzz_corpus/*.json`` file is a shrunk, self-contained case
the fuzzer once flagged or anchored (see ``docs/fuzzing.md``).  Replay
asserts three things per file, against one warm full matrix shared by
the module:

- every matrix entry (engine settings, transports, orchestrator,
  replicas) answers byte-identically to the uncached local baseline;
- the independent closure-baseline oracle agrees on the
  FD-over-projection fragment;
- the baseline's canonical answers still equal the file's committed
  ``expected`` block — the absolute answers are pinned, not just
  cross-config agreement.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fuzz import MatrixHarness
from repro.fuzz.runner import replay_corpus

CORPUS_DIR = Path(__file__).parent / "fuzz_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))


def test_corpus_is_populated():
    """The acceptance floor: at least 5 committed repro files."""
    assert len(CORPUS_FILES) >= 5


@pytest.fixture(scope="module")
def harness():
    with MatrixHarness() as matrix:
        yield matrix


@pytest.mark.parametrize(
    "path", CORPUS_FILES, ids=[p.stem for p in CORPUS_FILES]
)
def test_corpus_file_replays_green(path, harness):
    problems = replay_corpus([path], harness=harness)
    assert problems == [], "\n".join(problems)
