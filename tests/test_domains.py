"""Domains: finite vs infinite, fresh constants, membership."""

import pytest

from repro.core.domains import BOOL, Domain, INT, STRING, finite


class TestConstruction:
    def test_infinite_by_default(self):
        assert not STRING.is_finite
        assert not INT.is_finite

    def test_finite_constructor(self):
        d = finite("abc", ["a", "b", "c"])
        assert d.is_finite
        assert d.size == 3

    def test_bool_domain(self):
        assert BOOL.is_finite
        assert set(BOOL) == {False, True}

    def test_empty_finite_domain_rejected(self):
        with pytest.raises(ValueError):
            Domain("empty", ())

    def test_duplicate_values_rejected(self):
        with pytest.raises(ValueError):
            Domain("dup", ("a", "a"))


class TestMembership:
    def test_infinite_contains_everything(self):
        assert "anything" in STRING
        assert 42 in STRING

    def test_finite_membership(self):
        assert True in BOOL
        assert "x" not in BOOL


class TestEnumeration:
    def test_finite_iterates_values(self):
        assert list(finite("d", [1, 2])) == [1, 2]

    def test_infinite_iteration_rejected(self):
        with pytest.raises(ValueError):
            iter(STRING)

    def test_size_of_infinite_rejected(self):
        with pytest.raises(ValueError):
            STRING.size


class TestFreshConstants:
    def test_infinite_fresh_are_distinct(self):
        values = STRING.fresh_constants(5)
        assert len(set(values)) == 5

    def test_infinite_fresh_avoid_taken(self):
        taken = STRING.fresh_constants(3)
        more = STRING.fresh_constants(3, taken=taken)
        assert not set(taken) & set(more)

    def test_finite_fresh_within_domain(self):
        d = finite("d", ["a", "b", "c"])
        values = d.fresh_constants(2, taken=["a"])
        assert values == ["b", "c"]

    def test_finite_exhaustion_raises(self):
        with pytest.raises(ValueError):
            BOOL.fresh_constants(3)

    def test_finite_exhaustion_with_taken(self):
        with pytest.raises(ValueError):
            BOOL.fresh_constants(1, taken=[False, True])
