"""Conditional inclusion dependencies and derivable view CINDs."""

import random

import pytest

from repro import DatabaseInstance, DatabaseSchema, RelationSchema, SPCView
from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom
from repro.cind import CIND, derive_source_view_cinds, derive_view_source_cinds
from repro.generators import random_satisfying_instance, random_schema, random_spc_view


@pytest.fixture
def db():
    return DatabaseSchema(
        [
            RelationSchema("Order", ["oid", "cust", "status"]),
            RelationSchema("Customer", ["cid", "country"]),
        ]
    )


@pytest.fixture
def instance(db):
    return DatabaseInstance(
        db,
        {
            "Order": [
                {"oid": 1, "cust": "c1", "status": "open"},
                {"oid": 2, "cust": "c2", "status": "shipped"},
            ],
            "Customer": [
                {"cid": "c1", "country": "UK"},
                {"cid": "c2", "country": "US"},
            ],
        },
    )


class TestCINDModel:
    def test_plain_ind_satisfied(self, instance):
        psi = CIND("Order", ["cust"], "Customer", ["cid"])
        assert psi.is_plain_ind
        assert psi.holds_on(instance)

    def test_plain_ind_violated(self, db):
        broken = DatabaseInstance(
            db,
            {
                "Order": [{"oid": 1, "cust": "ghost", "status": "open"}],
                "Customer": [],
            },
        )
        psi = CIND("Order", ["cust"], "Customer", ["cid"])
        assert not psi.holds_on(broken)
        assert len(list(psi.violations(broken))) == 1

    def test_lhs_condition_restricts_scope(self, db):
        instance = DatabaseInstance(
            db,
            {
                "Order": [
                    {"oid": 1, "cust": "ghost", "status": "draft"},
                ],
                "Customer": [],
            },
        )
        # Only shipped orders need a customer; drafts are exempt.
        psi = CIND(
            "Order", ["cust"], "Customer", ["cid"],
            lhs_condition={"status": "shipped"},
        )
        assert psi.holds_on(instance)

    def test_rhs_condition_requires_witness_pattern(self, instance):
        uk_only = CIND(
            "Order", ["cust"], "Customer", ["cid"],
            rhs_condition={"country": "UK"},
        )
        # c2's customer exists but is not in the UK.
        assert not uk_only.holds_on(instance)
        guarded = CIND(
            "Order", ["cust"], "Customer", ["cid"],
            lhs_condition={"status": "open"},
            rhs_condition={"country": "UK"},
        )
        assert guarded.holds_on(instance)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            CIND("R", ["A", "B"], "S", ["C"])

    def test_condition_overlap_rejected(self):
        with pytest.raises(ValueError):
            CIND("R", ["A"], "S", ["C"], lhs_condition={"A": 1})

    def test_rename_lhs(self):
        psi = CIND("R", ["A"], "S", ["C"], lhs_condition={"B": 1})
        renamed = psi.rename_lhs({"A": "x.A", "B": "x.B"}, relation="V")
        assert renamed.lhs_relation == "V"
        assert renamed.lhs_attrs == ("x.A",)
        assert dict(renamed.lhs_condition) == {"x.B": 1}


class TestDerivedViewSourceCINDs:
    def test_projection_view(self, db, instance):
        atoms = [
            RelationAtom(
                "Order", {"oid": "oid", "cust": "cust", "status": "status"}
            )
        ]
        view = SPCView("V", db, atoms, projection=["oid", "cust"])
        cinds = derive_view_source_cinds(view)
        assert len(cinds) == 1
        psi = cinds[0]
        assert psi.lhs_relation == "V"
        assert psi.rhs_relation == "Order"
        # Verify empirically on the instance + evaluated view.
        self._check_on(view, instance, psi)

    def test_selection_constant_becomes_rhs_condition(self, db, instance):
        atoms = [
            RelationAtom(
                "Order", {"oid": "oid", "cust": "cust", "status": "status"}
            )
        ]
        view = SPCView(
            "V", db, atoms, [ConstEq("status", "open")], ["oid", "cust"]
        )
        (psi,) = derive_view_source_cinds(view)
        assert dict(psi.rhs_condition) == {"status": "open"}
        self._check_on(view, instance, psi)

    def test_join_view_yields_one_cind_per_atom(self, db, instance):
        atoms = [
            RelationAtom(
                "Order", {"oid": "oid", "cust": "cust", "status": "status"}
            ),
            RelationAtom("Customer", {"cid": "cid", "country": "country"}),
        ]
        view = SPCView(
            "V", db, atoms, [AttrEq("cust", "cid")], ["oid", "cust", "country"]
        )
        cinds = derive_view_source_cinds(view)
        assert {c.rhs_relation for c in cinds} == {"Order", "Customer"}
        for psi in cinds:
            self._check_on(view, instance, psi)

    @staticmethod
    def _check_on(view, instance, psi):
        """Evaluate the view and check the CIND on view ∪ sources."""
        view_rel = view.evaluate(instance)
        combined_schema = DatabaseSchema(
            list(instance.schema) + [view_rel.schema]
        )
        combined = DatabaseInstance(combined_schema)
        for name, rel in instance.relations.items():
            for row in rel:
                combined.add(name, row)
        for row in view_rel:
            combined.add(view_rel.schema.name, row)
        assert psi.holds_on(combined), f"derived CIND {psi} violated"

    def test_random_views_always_satisfy_derived_cinds(self):
        rng = random.Random(7)
        schema = random_schema(
            rng, num_relations=3, min_attributes=3, max_attributes=4
        )
        for _ in range(5):
            view = random_spc_view(
                rng, schema, num_projected=5, num_selections=2, num_atoms=2
            )
            db = random_satisfying_instance(rng, schema, [], rows_per_relation=6)
            for psi in derive_view_source_cinds(view):
                self._check_on(view, db, psi)


class TestDerivedSourceViewCINDs:
    def test_single_atom_selection_view(self, db, instance):
        atoms = [
            RelationAtom(
                "Order", {"oid": "oid", "cust": "cust", "status": "status"}
            )
        ]
        view = SPCView(
            "V", db, atoms, [ConstEq("status", "open")], ["oid", "cust"]
        )
        (psi,) = derive_source_view_cinds(view)
        assert psi.lhs_relation == "Order"
        assert dict(psi.lhs_condition) == {"status": "open"}
        TestDerivedViewSourceCINDs._check_on(view, instance, psi)

    def test_join_views_yield_nothing(self, db):
        atoms = [
            RelationAtom(
                "Order", {"oid": "oid", "cust": "cust", "status": "status"}
            ),
            RelationAtom("Customer", {"cid": "cid", "country": "country"}),
        ]
        view = SPCView("V", db, atoms, [AttrEq("cust", "cid")])
        assert derive_source_view_cinds(view) == []

    def test_attr_eq_selection_yields_nothing(self, db):
        atoms = [
            RelationAtom(
                "Order", {"oid": "oid", "cust": "cust", "status": "status"}
            )
        ]
        view = SPCView("V", db, atoms, [AttrEq("oid", "cust")])
        assert derive_source_view_cinds(view) == []
