"""CFD implication: the chase-based decision procedure.

Includes a model-checking cross-validation: on small random inputs the
symbolic answer must agree with brute-force search over tiny concrete
instances (a counterexample found by brute force refutes implication).
"""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cfd import CFD
from repro.core.domains import BOOL, finite
from repro.core.implication import equivalent, implies
from repro.core.schema import Attribute, RelationSchema


class TestFDStyleAxioms:
    def test_reflexivity(self):
        assert implies([], CFD("R", {"A": "_", "B": "_"}, {"A": "_"}))

    def test_transitivity(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"}), CFD("R", {"B": "_"}, {"C": "_"})]
        assert implies(sigma, CFD("R", {"A": "_"}, {"C": "_"}))

    def test_augmentation(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        assert implies(sigma, CFD("R", {"A": "_", "C": "_"}, {"B": "_"}))

    def test_no_reverse_direction(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        assert not implies(sigma, CFD("R", {"B": "_"}, {"A": "_"}))

    def test_union_rule_via_general_form(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"}), CFD("R", {"A": "_"}, {"C": "_"})]
        assert implies(sigma, CFD("R", {"A": "_"}, {"B": "_", "C": "_"}))

    def test_relation_mismatch_not_implied(self):
        sigma = [CFD("S", {"A": "_"}, {"B": "_"})]
        assert not implies(sigma, CFD("R", {"A": "_"}, {"B": "_"}))


class TestPatternReasoning:
    def test_weaker_pattern_implies_stronger(self):
        # (A -> B, (_ || _)) implies (A -> B, (a || _)).
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        assert implies(sigma, CFD("R", {"A": "a"}, {"B": "_"}))

    def test_stronger_pattern_does_not_imply_weaker(self):
        sigma = [CFD("R", {"A": "a"}, {"B": "_"})]
        assert not implies(sigma, CFD("R", {"A": "_"}, {"B": "_"}))

    def test_constant_chaining(self):
        sigma = [CFD("R", {"A": "1"}, {"B": "2"}), CFD("R", {"B": "2"}, {"C": "3"})]
        assert implies(sigma, CFD("R", {"A": "1"}, {"C": "3"}))
        assert not implies(sigma, CFD("R", {"A": "1"}, {"C": "4"}))

    def test_constant_blocks_transitivity(self):
        # First CFD concludes '_', second requires a constant: no chaining.
        sigma = [CFD("R", {"A": "1"}, {"B": "_"}), CFD("R", {"B": "2"}, {"C": "3"})]
        assert not implies(sigma, CFD("R", {"A": "1"}, {"C": "3"}))

    def test_constant_cfd_implies_weakened_variants(self):
        sigma = [CFD.constant("R", "B", "b")]
        assert implies(sigma, CFD("R", {"A": "_"}, {"B": "b"}))
        assert implies(sigma, CFD("R", {"A": "_"}, {"B": "_"}))

    def test_self_pair_forces_constant_rhs(self):
        # (A1 A2 -> A, (_, c || a)) forces A = a on every A2 = c tuple, so
        # A1 is redundant (the Example 4.2/4.3 observation).
        sigma = [CFD("R", {"A1": "_", "A2": "c"}, {"A": "a"})]
        assert implies(sigma, CFD("R", {"A2": "c"}, {"A": "a"}))

    def test_vacuous_implication_from_conflicting_constants(self):
        # Sigma forces B = b1 and B = b2 on A = 1 tuples: no such tuple
        # exists, so anything about A = 1 tuples is implied.
        sigma = [
            CFD("R", {"A": "1"}, {"B": "b1"}),
            CFD("R", {"A": "1"}, {"B": "b2"}),
        ]
        assert implies(sigma, CFD("R", {"A": "1"}, {"C": "weird"}))
        # ... but not about other tuples.
        assert not implies(sigma, CFD("R", {"A": "2"}, {"C": "weird"}))


class TestEqualityTargets:
    def test_equality_implied_by_itself(self):
        sigma = [CFD.equality("R", "A", "B")]
        assert implies(sigma, CFD.equality("R", "A", "B"))
        assert implies(sigma, CFD.equality("R", "B", "A"))

    def test_equality_transitivity(self):
        sigma = [CFD.equality("R", "A", "B"), CFD.equality("R", "B", "C")]
        assert implies(sigma, CFD.equality("R", "A", "C"))

    def test_equality_not_implied_by_fd(self):
        sigma = [CFD("R", {"A": "_"}, {"B": "_"})]
        assert not implies(sigma, CFD.equality("R", "A", "B"))

    def test_trivial_equality_always_implied(self):
        assert implies([], CFD.equality("R", "A", "A"))


class TestFiniteDomains:
    def test_case_split_over_bool(self):
        schema = RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])
        sigma = [
            CFD("R", {"A": False}, {"B": "b"}),
            CFD("R", {"A": True}, {"B": "b"}),
        ]
        target = CFD.constant("R", "B", "b")
        assert implies(sigma, target, schema=schema)
        assert not implies(sigma, target)  # infinite-domain reading

    def test_three_valued_domain_needs_all_cases(self):
        dom3 = finite("d3", ["x", "y", "z"])
        schema = RelationSchema("R", [Attribute("A", dom3), Attribute("B")])
        sigma = [
            CFD("R", {"A": "x"}, {"B": "b"}),
            CFD("R", {"A": "y"}, {"B": "b"}),
        ]
        assert not implies(sigma, CFD.constant("R", "B", "b"), schema=schema)
        sigma.append(CFD("R", {"A": "z"}, {"B": "b"}))
        assert implies(sigma, CFD.constant("R", "B", "b"), schema=schema)

    def test_singleton_domain_forces_value(self):
        dom1 = finite("one", ["only"])
        schema = RelationSchema("R", [Attribute("A", dom1), Attribute("B")])
        assert implies([], CFD.constant("R", "A", "only"), schema=schema)

    def test_max_instantiations_caps_work(self):
        schema = RelationSchema(
            "R", [Attribute("A", BOOL), Attribute("B", BOOL), Attribute("C")]
        )
        sigma = [CFD("R", {"A": True}, {"C": "c"})]
        # Capped enumeration still returns a boolean without error.
        result = implies(
            sigma, CFD.constant("R", "C", "c"), schema=schema, max_instantiations=1
        )
        assert isinstance(result, bool)


class TestEquivalence:
    def test_split_vs_general_form(self):
        first = [CFD("R", {"A": "_"}, {"B": "_", "C": "_"})]
        second = [CFD("R", {"A": "_"}, {"B": "_"}), CFD("R", {"A": "_"}, {"C": "_"})]
        assert equivalent(first, second)

    def test_inequivalent_sets(self):
        assert not equivalent(
            [CFD("R", {"A": "_"}, {"B": "_"})],
            [CFD("R", {"B": "_"}, {"A": "_"})],
        )


# ----------------------------------------------------------------------
# Model-checking cross-validation.
# ----------------------------------------------------------------------

ATTRS = ("A", "B", "C")
VALUES = ("0", "1")


def _random_cfd(rng: random.Random) -> CFD:
    lhs_attr, rhs_attr = rng.sample(ATTRS, 2)

    def entry():
        return rng.choice(["_", rng.choice(VALUES)])

    return CFD("R", {lhs_attr: entry()}, {rhs_attr: entry()})


def _brute_force_counterexample(sigma, phi) -> bool:
    """Search all 2-row instances over VALUES for a violation witness."""
    rows = [
        dict(zip(ATTRS, combo))
        for combo in itertools.product(VALUES, repeat=len(ATTRS))
    ]
    for r1 in rows:
        for r2 in rows:
            instance = [r1] if r1 == r2 else [r1, r2]
            if all(dep.holds_on(instance) for dep in sigma):
                if not phi.holds_on(instance):
                    return True
    return False


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=60, deadline=None)
def test_implication_never_contradicted_by_concrete_models(seed):
    """If brute force finds a concrete counterexample, implies() must say no.

    (The converse need not hold: the symbolic counterexample may need
    values outside the tiny brute-force universe.)
    """
    rng = random.Random(seed)
    sigma = [_random_cfd(rng) for _ in range(rng.randint(1, 4))]
    phi = _random_cfd(rng)
    if _brute_force_counterexample(sigma, phi):
        assert not implies(sigma, phi)
