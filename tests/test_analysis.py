"""High-level workflows: partition, mapping verification, update rejection."""

import pytest

from repro import CFD, FD
from repro.analysis import (
    partition_rules,
    propagation_cover,
    update_is_rejectable,
    verify_mapping,
)


@pytest.fixture
def rules():
    return {
        "uk-zip-street": CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
        "plain-zip-street": CFD("R", {"zip": "_"}, {"street": "_"}),
        "uk-020-london": CFD("R", {"CC": "44", "AC": "20"}, {"city": "ldn"}),
        "phone-key": FD("R", ("CC", "AC", "phn"), ("street", "city", "zip")),
    }


class TestPartitionRules:
    def test_splits_by_propagation(self, customer_sigma, customer_view, rules):
        partition = partition_rules(
            customer_sigma, customer_view, rules.values()
        )
        assert rules["uk-zip-street"] in partition.guaranteed
        assert rules["uk-020-london"] in partition.guaranteed
        assert rules["plain-zip-street"] in partition.must_validate
        assert rules["phone-key"] in partition.must_validate

    def test_empty_rules(self, customer_sigma, customer_view):
        partition = partition_rules(customer_sigma, customer_view, [])
        assert partition.guaranteed == [] and partition.must_validate == []


class TestVerifyMapping:
    def test_valid_mapping(self, customer_sigma, customer_view, rules):
        verdict = verify_mapping(
            customer_sigma,
            customer_view,
            {"uk": rules["uk-zip-street"], "020": rules["uk-020-london"]},
        )
        assert verdict.valid
        assert not verdict.failures

    def test_invalid_mapping_names_failures(
        self, customer_sigma, customer_view, rules
    ):
        verdict = verify_mapping(customer_sigma, customer_view, rules)
        assert not verdict.valid
        assert set(verdict.failures) == {"plain-zip-street", "phone-key"}
        # Counterexamples are real databases violating the constraint.
        witness = verdict.failures["plain-zip-street"]
        evaluated = customer_view.evaluate(witness.database)
        assert not evaluated.satisfies(rules["plain-zip-street"])


class TestUpdateRejection:
    def test_paper_example_insert_rejected(self, customer_sigma, customer_view):
        """Section 1 application (2): CC=44, AC=20, city=edi is rejected."""
        cover = propagation_cover(customer_sigma, customer_view)
        bad = {
            "CC": "44", "AC": "20", "city": "edi",
            "phn": "1", "name": "n", "street": "s", "zip": "z",
        }
        violated = update_is_rejectable(cover, bad, view_name="R")
        assert violated is not None
        assert violated.rhs_attr == "city"

    def test_consistent_insert_not_rejected(self, customer_sigma, customer_view):
        cover = propagation_cover(customer_sigma, customer_view)
        good = {
            "CC": "44", "AC": "20", "city": "ldn",
            "phn": "1", "name": "n", "street": "s", "zip": "z",
        }
        assert update_is_rejectable(cover, good, view_name="R") is None

    def test_pair_rules_cannot_reject_single_tuples(self):
        cover = [CFD("V", {"A": "_"}, {"B": "_"})]
        assert update_is_rejectable(cover, {"A": 1, "B": 2}) is None


class TestPropagationCover:
    def test_dispatches_on_view_shape(self, customer_sigma, customer_view):
        cover = propagation_cover(customer_sigma, customer_view)
        assert cover  # SPCU path
        branch_cover = propagation_cover(
            customer_sigma, customer_view.branches[0]
        )
        assert branch_cover  # SPC path
