"""Property tests for the engine's cache keys and hash-consing.

Three soundness obligations of the caching layer:

1. Closure memoization keys on the Sigma fingerprint — any change to the
   FD set reaches a fresh cache line (stale closures are never served).
2. ``use_cache=False`` and cached engines agree on every workload, and a
   mutated Sigma never sees verdicts cached for the original.
3. Interned ``Const`` entries never alias across distinct constants —
   identity is at least as fine as equality, so hash-consing cannot
   merge pattern entries that a comparison would distinguish.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro import CFD, FD
from repro.algebra.spc import RelationAtom, SPCView
from repro.core.fd import (
    attribute_closure,
    clear_closure_cache,
    closure_cache_info,
)
from repro.core.schema import DatabaseSchema, RelationSchema
from repro.core.values import Const, const
from repro.propagation import propagates
from repro.propagation.engine import PropagationEngine

ATTRS = ["A", "B", "C", "D", "E"]


# ----------------------------------------------------------------------
# 1. Closure memoization and its invalidation.
# ----------------------------------------------------------------------

fd_strategy = st.builds(
    lambda lhs, rhs: FD("R", lhs, (rhs,)),
    st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2),
    st.sampled_from(ATTRS),
)


@given(
    st.sets(st.sampled_from(ATTRS), min_size=1, max_size=3),
    st.lists(fd_strategy, max_size=6),
    st.lists(fd_strategy, min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_closure_memo_is_invalidated_when_sigma_changes(attrs, fds, extra):
    """Cached closures always equal uncached ones, before and after Sigma
    grows — the fingerprint key can never serve a stale line."""
    before = attribute_closure(attrs, fds)
    assert before == attribute_closure(attrs, fds, use_cache=False)

    changed = fds + [fd for fd in extra if fd not in fds]
    after = attribute_closure(attrs, changed)
    assert after == attribute_closure(attrs, changed, use_cache=False)
    # Monotone sanity: adding FDs can only grow a closure.
    assert before <= after


def test_closure_memo_hits_on_repeats_and_misses_on_new_sigma():
    clear_closure_cache()
    fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
    assert attribute_closure({"A"}, fds) == {"A", "B", "C"}
    base = closure_cache_info()
    assert attribute_closure(["A"], list(fds)) == {"A", "B", "C"}
    hit = closure_cache_info()
    assert hit.hits == base.hits + 1 and hit.misses == base.misses

    # Same LHS, different Sigma: a miss, and the new Sigma's answer.
    assert attribute_closure({"A"}, fds[:1]) == {"A", "B"}
    assert closure_cache_info().misses == hit.misses + 1

    # Order of the FD list is not part of the key.
    assert attribute_closure({"A"}, list(reversed(fds))) == {"A", "B", "C"}
    assert closure_cache_info().hits == hit.hits + 1


# ----------------------------------------------------------------------
# 2. Cached and uncached engines agree (and Sigma edits take effect).
# ----------------------------------------------------------------------


def _projection_view(projection):
    schema = DatabaseSchema([RelationSchema("R", ATTRS)])
    return SPCView(
        "V",
        schema,
        [RelationAtom("R", {a: a for a in ATTRS})],
        projection=sorted(projection),
    )


sigma_strategy = st.lists(
    st.builds(
        lambda lhs, rhs, c: (
            CFD("R", {a: "7" if c and a == sorted(lhs)[0] else "_" for a in lhs}, {rhs: "_"})
        ),
        st.sets(st.sampled_from(ATTRS), min_size=1, max_size=2),
        st.sampled_from(ATTRS),
        st.booleans(),
    ),
    min_size=1,
    max_size=5,
)

phi_strategy = st.builds(
    lambda lhs, rhs, c: CFD(
        "V",
        {a: "7" if c and a == sorted(lhs)[0] else "_" for a in lhs},
        {rhs: "_"},
    ),
    st.sets(st.sampled_from(ATTRS[:4]), min_size=1, max_size=2),
    st.sampled_from(ATTRS[:4]),
    st.booleans(),
)


@given(sigma_strategy, st.lists(phi_strategy, min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_no_cache_and_cached_engines_agree(sigma, phis):
    view = _projection_view(ATTRS[:4])
    cached = PropagationEngine(use_cache=True)
    uncached = PropagationEngine(use_cache=False)
    expected = [propagates(sigma, view, phi) for phi in phis]
    assert cached.check_many(sigma, view, phis) == expected
    assert uncached.check_many(sigma, view, phis) == expected


@given(sigma_strategy, phi_strategy)
@settings(max_examples=40, deadline=None)
def test_verdict_memo_is_keyed_on_sigma(sigma, phi):
    """One engine, two Sigmas: the memo never leaks across fingerprints."""
    view = _projection_view(ATTRS[:4])
    engine = PropagationEngine()
    first = engine.check(sigma, view, phi)
    assert first == propagates(sigma, view, phi)

    # Drop dependencies (or add one): re-query through the same engine.
    smaller = sigma[1:]
    assert engine.check(smaller, view, phi) == propagates(smaller, view, phi)
    larger = sigma + [CFD("R", {"A": "_"}, {"B": "_"})]
    assert engine.check(larger, view, phi) == propagates(larger, view, phi)


def test_engine_clear_preserves_stats_and_verdicts():
    view = _projection_view(ATTRS[:4])
    sigma = [FD("R", ("A",), ("B",))]
    phi = FD("V", ("A",), ("B",))
    engine = PropagationEngine()
    assert engine.check(sigma, view, phi)
    queries_before = engine.stats.check_queries
    engine.clear()
    assert engine.stats.check_queries == queries_before
    assert engine.check(sigma, view, phi)  # recomputed, same verdict


# ----------------------------------------------------------------------
# 3. Hash-consing soundness.
# ----------------------------------------------------------------------

hashable_values = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.text(max_size=6),
    st.booleans(),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)


@given(hashable_values)
@settings(max_examples=100, deadline=None)
def test_interning_is_idempotent(value):
    entry = const(value)
    assert isinstance(entry, Const)
    assert entry.value == value or (value != value)
    assert const(value) is entry


@given(hashable_values, hashable_values)
@settings(max_examples=100, deadline=None)
def test_interned_values_never_alias_distinct_constants(a, b):
    """Distinct constants (by equality *or* type) get distinct objects."""
    ca, cb = const(a), const(b)
    if a != b or type(a) is not type(b):
        assert ca is not cb
    if ca is cb:
        assert a == b and type(a) is type(b)


def test_interning_distinguishes_equal_values_of_different_types():
    assert const(1) is not const(True)
    assert const(1) is not const(1.0)
    assert const("1") is not const(1)
    # ...even though dataclass equality conflates some of them:
    assert Const(1) == Const(True)


def test_unhashable_values_fall_back_to_fresh_allocation():
    entry = const(["x"])
    assert isinstance(entry, Const)
    assert entry.value == ["x"]
    assert const(["x"]) is not entry  # uncached, but still equal
    assert const(["x"]) == entry


def test_cfd_patterns_are_interned():
    phi1 = CFD("R", {"A": "20"}, {"B": "ldn"})
    phi2 = CFD("R", {"A": "20", "C": "_"}, {"B": "ldn"})
    assert phi1.lhs_entry("A") is phi2.lhs_entry("A")
    assert phi1.rhs_entry is phi2.rhs_entry
