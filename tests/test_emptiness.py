"""The emptiness problem for CFDs and views (Theorems 3.7/3.8)."""

import pytest

from repro import CFD, DatabaseSchema, RelationSchema, SPCUView, SPCView
from repro.algebra.ops import (
    ConstEq,
    AttrEq,
    RelationRef,
    Selection,
    Union,
)
from repro.core.domains import BOOL
from repro.core.schema import Attribute
from repro.propagation import nonempty_witness, view_is_empty


@pytest.fixture
def db():
    return DatabaseSchema([RelationSchema("R", ["A", "B", "C"])])


class TestExample31:
    def test_conflicting_selection_always_empty(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("B", "b2")]), db
        )
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        assert view_is_empty(sigma, view)

    def test_matching_selection_nonempty(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("B", "b1")]), db
        )
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        assert not view_is_empty(sigma, view)


class TestWitnesses:
    def test_witness_satisfies_sigma_and_fills_view(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("A", "x")]), db
        )
        sigma = [CFD("R", {"A": "x"}, {"B": "b"})]
        witness = nonempty_witness(sigma, view)
        assert witness is not None
        assert witness.satisfies_all(sigma)
        assert len(view.evaluate(witness)) >= 1

    def test_no_witness_when_empty(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("B", "b2")]), db
        )
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        assert nonempty_witness(sigma, view) is None

    def test_no_sigma_means_nonempty(self, db):
        view = SPCView.from_expr(Selection(RelationRef("R"), []), db)
        assert not view_is_empty([], view)


class TestSPCU:
    def test_union_empty_only_if_all_branches_empty(self, db):
        expr = Union(
            Selection(RelationRef("R"), [ConstEq("B", "b2")]),
            Selection(RelationRef("R"), [ConstEq("B", "b1")]),
        )
        view = SPCUView.from_expr(expr, db)
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        assert not view_is_empty(sigma, view)

    def test_union_of_empty_branches(self, db):
        expr = Union(
            Selection(RelationRef("R"), [ConstEq("B", "b2")]),
            Selection(RelationRef("R"), [ConstEq("B", "b3")]),
        )
        view = SPCUView.from_expr(expr, db)
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        assert view_is_empty(sigma, view)


class TestSelectionChains:
    def test_equality_chain_conflict(self, db):
        # A = B and B = 'b1' while sigma pins A = 'a1'.
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [AttrEq("A", "B"), ConstEq("B", "b1")]),
            db,
        )
        sigma = [CFD("R", {"C": "_"}, {"A": "a1"})]
        assert view_is_empty(sigma, view)

    def test_syntactically_contradictory_selection(self, db):
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("A", "1"), ConstEq("A", "2")]),
            db,
        )
        assert view_is_empty([], view)


class TestFiniteDomains:
    def test_finite_exhaustion_makes_view_empty(self):
        # dom(A) = {T, F}; both values force B = 'b'; view wants B = 'c'.
        db = DatabaseSchema(
            [RelationSchema("R", [Attribute("A", BOOL), Attribute("B")])]
        )
        view = SPCView.from_expr(
            Selection(RelationRef("R"), [ConstEq("B", "c")]), db
        )
        sigma = [
            CFD("R", {"A": True}, {"B": "b"}),
            CFD("R", {"A": False}, {"B": "b"}),
        ]
        assert view_is_empty(sigma, view)
        # Dropping one case re-opens the view.
        assert not view_is_empty(sigma[:1], view)
