"""Classical FD machinery: closure, implication, minimal cover."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fd import (
    FD,
    attribute_closure,
    equivalent,
    fd_closure,
    implies,
    minimal_cover,
    project_fds,
)

ATTRS = ["A", "B", "C", "D", "E"]


def small_fds():
    attr = st.sampled_from(ATTRS)
    return st.lists(
        st.tuples(st.sets(attr, min_size=1, max_size=3), attr).map(
            lambda pair: FD("R", pair[0], (pair[1],))
        ),
        max_size=6,
    )


class TestFDBasics:
    def test_lhs_rhs_sorted_and_deduplicated(self):
        fd = FD("R", ("B", "A", "B"), ("D", "C"))
        assert fd.lhs == ("A", "B")
        assert fd.rhs == ("C", "D")

    def test_string_rhs_allowed(self):
        assert FD("R", ("A",), "B").rhs == ("B",)

    def test_empty_rhs_rejected(self):
        with pytest.raises(ValueError):
            FD("R", ("A",), ())

    def test_trivial(self):
        assert FD("R", ("A", "B"), ("A",)).is_trivial()
        assert not FD("R", ("A",), ("B",)).is_trivial()

    def test_split(self):
        parts = FD("R", ("A",), ("B", "C")).split()
        assert parts == [FD("R", ("A",), ("B",)), FD("R", ("A",), ("C",))]


class TestClosure:
    def test_transitive_chain(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        assert attribute_closure(["A"], fds) == {"A", "B", "C"}

    def test_no_spurious_attributes(self):
        fds = [FD("R", ("A", "B"), ("C",))]
        assert attribute_closure(["A"], fds) == {"A"}

    def test_multi_attribute_lhs(self):
        fds = [FD("R", ("A", "B"), ("C",)), FD("R", ("C",), ("D",))]
        assert attribute_closure(["A", "B"], fds) == {"A", "B", "C", "D"}

    @given(small_fds(), st.sets(st.sampled_from(ATTRS), max_size=3))
    def test_closure_contains_start(self, fds, start):
        assert set(start) <= attribute_closure(start, fds)

    @given(small_fds(), st.sets(st.sampled_from(ATTRS), max_size=3))
    def test_closure_idempotent(self, fds, start):
        once = attribute_closure(start, fds)
        assert attribute_closure(once, fds) == once

    @given(small_fds(), st.sets(st.sampled_from(ATTRS), max_size=2))
    def test_closure_monotone(self, fds, start):
        bigger = set(start) | {"E"}
        assert attribute_closure(start, fds) <= attribute_closure(bigger, fds)


class TestImplication:
    def test_transitivity(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        assert implies(fds, FD("R", ("A",), ("C",)))

    def test_non_implication(self):
        fds = [FD("R", ("A",), ("B",))]
        assert not implies(fds, FD("R", ("B",), ("A",)))

    def test_other_relations_ignored(self):
        fds = [FD("S", ("A",), ("B",))]
        assert not implies(fds, FD("R", ("A",), ("B",)))

    def test_reflexivity(self):
        assert implies([], FD("R", ("A", "B"), ("A",)))

    def test_equivalent_sets(self):
        first = [FD("R", ("A",), ("B", "C"))]
        second = [FD("R", ("A",), ("B",)), FD("R", ("A",), ("C",))]
        assert equivalent(first, second)
        assert not equivalent(first, [FD("R", ("A",), ("B",))])


class TestMinimalCover:
    def test_removes_redundant_fd(self):
        fds = [
            FD("R", ("A",), ("B",)),
            FD("R", ("B",), ("C",)),
            FD("R", ("A",), ("C",)),
        ]
        cover = minimal_cover(fds)
        assert len(cover) == 2
        assert equivalent(cover, fds)

    def test_removes_extraneous_attribute(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("A", "B"), ("C",))]
        cover = minimal_cover(fds)
        assert FD("R", ("A",), ("C",)) in cover or equivalent(cover, fds)
        assert all(len(f.lhs) == 1 for f in cover)

    def test_drops_trivial(self):
        assert minimal_cover([FD("R", ("A",), ("A",))]) == []

    @given(small_fds())
    @settings(max_examples=40, deadline=None)
    def test_cover_equivalent_to_input(self, fds):
        cover = minimal_cover(fds)
        assert equivalent(cover, fds)

    @given(small_fds())
    @settings(max_examples=40, deadline=None)
    def test_cover_has_no_redundant_member(self, fds):
        cover = minimal_cover(fds)
        for fd in cover:
            rest = [f for f in cover if f != fd]
            assert not implies(rest, fd)


class TestFullClosure:
    def test_fd_closure_contains_derived(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        closure = fd_closure("R", ["A", "B", "C"], fds)
        assert FD("R", ("A",), ("C",)) in closure

    def test_fd_closure_only_nontrivial(self):
        closure = fd_closure("R", ["A", "B"], [FD("R", ("A",), ("B",))])
        assert all(not f.is_trivial() for f in closure)

    def test_max_lhs_caps_enumeration(self):
        fds = [FD("R", ("A", "B"), ("C",))]
        capped = fd_closure("R", ["A", "B", "C"], fds, max_lhs=1)
        assert FD("R", ("A", "B"), ("C",)) not in capped

    def test_project_fds(self):
        fds = [FD("R", ("A",), ("B",)), FD("R", ("A",), ("C",))]
        kept = project_fds(fds, {"A", "B"})
        assert kept == [FD("R", ("A",), ("B",))]

    def test_project_renames_relation(self):
        fds = [FD("R", ("A",), ("B",))]
        assert project_fds(fds, {"A", "B"}, relation="V")[0].relation == "V"
