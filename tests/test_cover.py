"""PropCFD_SPC: the minimal propagation-cover algorithm (Figure 2)."""

import pytest

from repro import (
    CFD,
    DatabaseSchema,
    FD,
    RelationSchema,
    SPCUView,
    SPCView,
    implies,
    prop_cfd_spc,
    prop_cfd_spc_report,
    propagates,
)
from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom


@pytest.fixture
def example_4_3():
    """The schema, view and CFDs of the paper's Example 4.3."""
    schema = DatabaseSchema(
        [
            RelationSchema("R1", ["B1p", "B2"]),
            RelationSchema("R2", ["A1", "A2", "A"]),
            RelationSchema("R3", ["Ap", "A2p", "B1", "B"]),
        ]
    )
    atoms = [
        RelationAtom("R1", {"B1p": "B1p", "B2": "B2"}),
        RelationAtom("R2", {"A1": "A1", "A2": "A2", "A": "A"}),
        RelationAtom("R3", {"Ap": "Ap", "A2p": "A2p", "B1": "B1", "B": "B"}),
    ]
    selection = [AttrEq("B1", "B1p"), AttrEq("A", "Ap"), AttrEq("A2", "A2p")]
    projection = ["A1", "A2", "B", "B1", "B1p", "B2"]
    view = SPCView("V", schema, atoms, selection, projection)
    sigma = [
        CFD("R2", {"A1": "_", "A2": "c"}, {"A": "a"}),
        CFD("R3", {"Ap": "_", "A2p": "c", "B1": "b"}, {"B": "_"}),
    ]
    return schema, view, sigma


class TestExample43:
    def test_cover_contents(self, example_4_3):
        _, view, sigma = example_4_3
        cover = prop_cfd_spc(sigma, view)
        # The paper's phi = ([A1, A2, B1] -> B, (_, c, b || _)) — our
        # MinCover additionally drops A1 (redundant by self-pairing of
        # the constant-RHS psi1), and phi' = (B1 -> B1p, (x || x)).
        resolved = CFD("V", {"A2": "c", "B1": "b"}, {"B": "_"})
        paper_phi = CFD("V", {"A1": "_", "A2": "c", "B1": "b"}, {"B": "_"})
        equality = CFD.equality("V", "B1", "B1p")
        assert any(implies([c], resolved) for c in cover)
        assert implies(cover, paper_phi)
        assert implies(cover, equality)
        assert len(cover) == 2

    def test_cover_is_sound(self, example_4_3):
        _, view, sigma = example_4_3
        cover = prop_cfd_spc(sigma, view)
        spcu = SPCUView.from_spc(view)
        for phi in cover:
            assert propagates(sigma, spcu, phi), f"{phi} not propagated"


class TestSoundnessAndCompleteness:
    @pytest.fixture
    def db(self):
        return DatabaseSchema([RelationSchema("R", ["A", "B", "C", "D"])])

    def _view(self, db, selection=(), projection=None, constants=None):
        atoms = [RelationAtom("R", {a: a for a in "ABCD"})]
        return SPCView(
            "V", db, atoms, selection, projection, constants=constants or {}
        )

    def test_projection_shortcut_found(self, db):
        view = self._view(db, projection=["A", "C", "D"])
        sigma = [FD("R", ("A",), ("B",)), FD("R", ("B",), ("C",))]
        cover = prop_cfd_spc(sigma, view)
        assert implies(cover, CFD("V", {"A": "_"}, {"C": "_"}))
        assert not implies(cover, CFD("V", {"C": "_"}, {"A": "_"}))

    def test_selection_constant_in_cover(self, db):
        view = self._view(db, [ConstEq("A", "x")])
        cover = prop_cfd_spc([], view)
        assert implies(cover, CFD.constant("V", "A", "x"))

    def test_selection_equality_in_cover(self, db):
        view = self._view(db, [AttrEq("A", "B")])
        cover = prop_cfd_spc([], view)
        assert implies(cover, CFD.equality("V", "A", "B"))

    def test_rc_constants_in_cover(self, db):
        view = self._view(db, projection=["A", "B", "C", "D", "CC"], constants={"CC": "44"})
        cover = prop_cfd_spc([], view)
        assert implies(cover, CFD.constant("V", "CC", "44"))

    def test_selection_strengthens_pattern_cfd(self, db):
        view = self._view(db, [ConstEq("A", "a")])
        sigma = [CFD("R", {"A": "a"}, {"B": "_"})]
        cover = prop_cfd_spc(sigma, view)
        # On the selected slice the CFD applies unconditionally.
        assert implies(cover, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_keyed_attribute_eliminated_from_lhs(self, db):
        # A is pinned to 'a' by selection but NOT projected; the CFD
        # (A=a, B -> C) must survive as (B -> C).
        view = self._view(db, [ConstEq("A", "a")], projection=["B", "C", "D"])
        sigma = [CFD("R", {"A": "a", "B": "_"}, {"C": "_"})]
        cover = prop_cfd_spc(sigma, view)
        assert implies(cover, CFD("V", {"B": "_"}, {"C": "_"}))

    def test_conflicting_pattern_cfd_killed(self, db):
        # A pinned to 'a'; a CFD guarded by A='z' can never fire.
        view = self._view(db, [ConstEq("A", "a")], projection=["B", "C", "D"])
        sigma = [CFD("R", {"A": "z", "B": "_"}, {"C": "_"})]
        cover = prop_cfd_spc(sigma, view)
        assert not implies(cover, CFD("V", {"B": "_"}, {"C": "_"}))

    def test_equality_substitution_merges_cfds(self, db):
        # Selection A=B; CFD on A transfers to the representative.
        view = self._view(db, [AttrEq("A", "B")])
        sigma = [FD("R", ("A",), ("C",))]
        cover = prop_cfd_spc(sigma, view)
        assert implies(cover, CFD("V", {"A": "_"}, {"C": "_"}))
        assert implies(cover, CFD("V", {"B": "_"}, {"C": "_"}))

    def test_fd_sources_accepted(self, db):
        view = self._view(db)
        cover = prop_cfd_spc([FD("R", ("A",), ("B",))], view)
        assert implies(cover, CFD("V", {"A": "_"}, {"B": "_"}))

    def test_cover_members_all_propagated(self, db):
        view = self._view(
            db, [ConstEq("A", "a"), AttrEq("B", "C")], projection=["B", "C", "D"]
        )
        sigma = [
            CFD("R", {"A": "a", "B": "_"}, {"D": "_"}),
            FD("R", ("C",), ("D",)),
        ]
        cover = prop_cfd_spc(sigma, view)
        spcu = SPCUView.from_spc(view)
        for phi in cover:
            assert propagates(sigma, spcu, phi), f"{phi} not propagated"


class TestInconsistentViews:
    @pytest.fixture
    def db(self):
        return DatabaseSchema([RelationSchema("R", ["A", "B"])])

    def test_lemma_4_5_pair(self, db):
        atoms = [RelationAtom("R", {"A": "A", "B": "B"})]
        view = SPCView("V", db, atoms, [ConstEq("B", "b2")])
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        report = prop_cfd_spc_report(sigma, view)
        assert report.inconsistent
        assert len(report.cover) == 2
        # The pair forces two distinct constants on one attribute.
        (c1, c2) = report.cover
        assert c1.rhs_attr == c2.rhs_attr
        assert c1.rhs_entry != c2.rhs_entry

    def test_pair_implies_anything(self, db):
        atoms = [RelationAtom("R", {"A": "A", "B": "B"})]
        view = SPCView("V", db, atoms, [ConstEq("B", "b2")])
        sigma = [CFD("R", {"A": "_"}, {"B": "b1"})]
        cover = prop_cfd_spc(sigma, view)
        assert implies(cover, CFD("V", {"A": "weird"}, {"B": "strange"}))

    def test_syntactic_contradiction(self, db):
        atoms = [RelationAtom("R", {"A": "A", "B": "B"})]
        view = SPCView("V", db, atoms, [ConstEq("A", 1), ConstEq("A", 2)])
        report = prop_cfd_spc_report([], view)
        assert report.inconsistent


class TestOptions:
    @pytest.fixture
    def workload(self):
        db = DatabaseSchema([RelationSchema("R", ["A", "B", "C", "D"])])
        atoms = [RelationAtom("R", {a: a for a in "ABCD"})]
        view = SPCView("V", db, atoms, projection=["A", "C", "D"])
        sigma = [
            FD("R", ("A",), ("B",)),
            FD("R", ("B",), ("C",)),
            FD("R", ("A",), ("C",)),  # redundant
        ]
        return sigma, view

    def test_all_option_combinations_equivalent(self, workload):
        from repro.core.implication import equivalent

        sigma, view = workload
        reference = prop_cfd_spc(sigma, view)
        for partition in (None, 2, 40):
            for final in (True, False):
                for minimize in (True, False):
                    cover = prop_cfd_spc(
                        sigma,
                        view,
                        partition_size=partition,
                        final_min_cover=final,
                        minimize_input=minimize,
                    )
                    assert equivalent(cover, reference)

    def test_report_diagnostics_populated(self, workload):
        sigma, view = workload
        report = prop_cfd_spc_report(sigma, view)
        assert report.sigma_v_size > 0
        assert report.dropped_attributes == 1
        assert not report.inconsistent
