"""Cross-module soundness properties tying the pipeline together."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import CFD, SPCUView, propagates
from repro.generators import random_schema, random_spc_view
from repro.propagation.eqclasses import BottomEQ, compute_eq, eq2cfd


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=25, deadline=None)
def test_eq2cfd_outputs_are_propagated(seed):
    """Every domain-constraint CFD EQ2CFD emits holds on the view by
    construction (Lemma 4.2) — even with an empty source-dependency set."""
    rng = random.Random(seed)
    schema = random_schema(rng, num_relations=3, min_attributes=3, max_attributes=4)
    view = random_spc_view(
        rng, schema, num_projected=6, num_selections=3, num_atoms=2
    )
    eq = compute_eq(view, [])
    if isinstance(eq, BottomEQ):
        return  # the generator avoids this; belt and braces
    spcu = SPCUView.from_spc(view)
    for phi in eq2cfd(eq, view):
        assert propagates([], spcu, phi), f"seed={seed}: {phi} not guaranteed"


@given(st.integers(min_value=0, max_value=100_000))
@settings(max_examples=15, deadline=None)
def test_renamed_fully_visible_source_cfds_are_propagated(seed):
    """A source CFD whose attributes all survive projection is propagated
    verbatim (the Cartesian-product step of Section 4.2)."""
    rng = random.Random(seed)
    schema = random_schema(rng, num_relations=2, min_attributes=3, max_attributes=4)
    view = random_spc_view(
        rng, schema, num_projected=7, num_selections=0, num_atoms=2
    )
    relation = schema.relation(view.atoms[0].source)
    attrs = list(relation.attribute_names)
    phi = CFD(relation.name, {attrs[0]: "_"}, {attrs[1]: "_"})
    renamed = phi.rename(view.atoms[0].mapping_dict, relation=view.name)
    if not renamed.attributes <= set(view.projection):
        return
    assert propagates([phi], SPCUView.from_spc(view), renamed)


class TestInstantiateLeftoverFiniteVars:
    """instantiate() must handle unconstrained finite-domain survivors."""

    def test_leftover_bool_vars_get_domain_values(self):
        from repro.core.chase import SymbolicInstance, VarFactory
        from repro.core.domains import BOOL

        factory = VarFactory()
        instance = SymbolicInstance()
        instance.add_tuple(
            "R", {"A": factory.fresh(BOOL), "B": factory.fresh(BOOL), "C": factory.fresh(BOOL)}
        )
        concrete = instance.instantiate().concrete()
        row = concrete["R"][0]
        assert all(value in (False, True) for value in row.values())

    def test_mixed_domains(self):
        from repro.core.chase import SymbolicInstance, VarFactory
        from repro.core.domains import BOOL, STRING

        factory = VarFactory()
        instance = SymbolicInstance()
        instance.add_tuple(
            "R", {"A": factory.fresh(STRING), "B": factory.fresh(BOOL)}
        )
        concrete = instance.instantiate().concrete()
        row = concrete["R"][0]
        assert row["B"] in (False, True)
        assert isinstance(row["A"], str)
