"""URL-addressed endpoints: transports, client SDK, orchestrator, boundary.

The PR 5 obligations:

1. *Transport differential* — the same registered workspace and the
   Example 4.1 batch yield **identical** verdict and cover documents
   via ``local://``, ``tcp://`` and ``http://`` endpoints (stats equal
   up to wall time).
2. *Distributed shard orchestrator* — a 2-worker ``shard_index`` fleet
   (one NDJSON worker, one HTTP worker) ANDs its partial verdicts to
   the single-engine answer, with **zero chases** on the warm leg.
3. *Boundary hygiene* — truncated NDJSON, oversized request bodies, bad
   HTTP methods/paths and unknown URL schemes each surface a typed
   :class:`~repro.api.ApiError` (or error document), never a traceback;
   wire-protocol drift warns at ``connect()`` time.

The PR 6 failure matrix (section 4): :class:`~repro.api.RetryPolicy`
backoff semantics and the flaky-transport retry loop; the
``TcpTransport`` broken-socket reset and ``HttpTransport`` gateway-5xx
classification bugfixes; aggregated fleet failures naming every dead
endpoint; kill-a-worker shard **failover**; and
:class:`~repro.api.ReplicaSet` load balancing + dead-replica rerouting.
"""

from __future__ import annotations

import http.client
import json
import socket
import socketserver
import threading
import time
from dataclasses import fields as dataclass_fields

import pytest

from repro import io as repro_io
from repro.api import (
    ApiError,
    CheckRequest,
    IDEMPOTENT_OPS,
    PROTOCOL_VERSION,
    PropagationService,
    ReplicaSet,
    RequestStats,
    RetryPolicy,
    ShardOrchestrator,
    Transport,
    UpdateSigmaRequest,
    background_server,
    connect,
    is_idempotent,
)
from repro.api.client import ProtocolMismatchWarning
from repro.core.fd import FD
from repro.propagation.closure_baseline import (
    example_41_workload,
    exponential_family_schema,
    union_shard_workload,
)

# ----------------------------------------------------------------------
# Shared workloads.
# ----------------------------------------------------------------------


def _example_41_docs(n: int = 3):
    """The Example 4.1 workload as registerable wire documents."""
    view, sigma, queries = example_41_workload(n, defeat_fast_path=True)
    return {
        "schema": repro_io.schema_to_json(exponential_family_schema(n)),
        "sigma": repro_io.dependencies_to_json(sigma),
        "view": repro_io.view_to_json(view),
        "phis": repro_io.dependencies_to_json(queries),
    }


def _union_docs():
    """The shared 3-branch union workload, as registerable documents."""
    schema, sigma, view, phis = union_shard_workload()
    return {
        "schema": repro_io.schema_to_json(schema),
        "sigma": repro_io.dependencies_to_json(sigma),
        "view": repro_io.view_to_json(view),
        "phis": phis,  # objects: fed to typed CheckRequests
    }


def _scrub(doc):
    """Drop wall-time fields so documents compare across transports."""
    if isinstance(doc, dict):
        return {k: _scrub(v) for k, v in doc.items() if k != "elapsed_ms"}
    if isinstance(doc, list):
        return [_scrub(item) for item in doc]
    return doc


# ----------------------------------------------------------------------
# 1. Transport differential: identical documents on every wire.
# ----------------------------------------------------------------------


def test_local_tcp_http_yield_identical_documents():
    """The acceptance differential: one workspace, three wires, one truth."""
    docs = _example_41_docs(3)
    batch = {
        "op": "batch",
        "requests": [
            {"op": "check", "view": "V", "phis": docs["phis"]},
            {"op": "check", "view": "V", "phis": docs["phis"]},  # warm leg
            {"op": "cover", "view": "V"},
        ],
    }

    def drive(client):
        for kind, name in (("schema", "default"), ("sigma", "default")):
            client.result(
                {"op": "register", "kind": kind, "name": name, "doc": docs[kind]}
            )
        client.result(
            {"op": "register", "kind": "view", "name": "V", "doc": docs["view"]}
        )
        return client.call(dict(batch))

    with connect("local://") as local_client:
        local = drive(local_client)

    with PropagationService() as tcp_service:
        with background_server(tcp_service, "tcp") as url:
            with connect(url) as tcp_client:
                tcp = drive(tcp_client)

    with PropagationService() as http_service:
        with background_server(http_service, "http") as url:
            with connect(url) as http_client:
                http_reply = drive(http_client)

    assert local["ok"] and tcp["ok"] and http_reply["ok"]
    assert _scrub(local) == _scrub(tcp) == _scrub(http_reply)
    # The documents really carry the workload: cold chases, warm memo hits.
    cold, warm, cover = local["result"]["results"]
    assert cold["stats"]["chases"] > 0
    assert warm["stats"]["chases"] == 0
    assert warm["stats"]["memo_hits"] == len(docs["phis"])
    assert cover["cover"]
    # JSON-serializable end to end (local:// skipped the text encoding).
    json.dumps([local, tcp, http_reply])


def test_typed_client_matches_service_answers_over_every_wire():
    docs = _example_41_docs(3)
    request = CheckRequest(
        view="V", targets=repro_io.dependencies_from_json(docs["phis"])
    )
    verdicts = {}
    with connect("local://") as local_client:
        _register_named(local_client, docs, "V")
        verdicts["local"] = local_client.check(request)
    with PropagationService() as service:
        with background_server(service, "tcp") as tcp_url:
            with connect(tcp_url) as tcp_client:
                _register_named(tcp_client, docs, "V")
                verdicts["tcp"] = tcp_client.check(request)
        with background_server(service, "http") as http_url:
            with connect(http_url) as http_client:
                # Same service: the HTTP leg must be answered warm.
                warm = http_client.check(request)
    assert (
        verdicts["local"].propagated
        == verdicts["tcp"].propagated
        == warm.propagated
    )
    assert verdicts["local"].route == verdicts["tcp"].route == warm.route
    assert warm.stats.chases == 0  # tcp leg warmed the shared service


def _register_named(client, docs, view_name: str) -> None:
    client.register_schema("default", docs["schema"])
    client.register_sigma("default", docs["sigma"])
    client.register_view(view_name, docs["view"])


def test_client_reraises_typed_errors_from_any_wire():
    with PropagationService() as service:
        with background_server(service, "http") as url:
            with connect(url) as client:
                with pytest.raises(ApiError) as err:
                    client.check(CheckRequest(view="ghost", targets=[]))
                assert err.value.kind == "not-found"
    with connect("local://") as client:
        with pytest.raises(ApiError) as err:
            client.check(CheckRequest(view="ghost", targets=[]))
        assert err.value.kind == "not-found"


def test_update_sigma_round_trips_typed_over_http():
    docs = _union_docs()
    view_r2 = {
        "name": "VR2",
        "atoms": [{"source": "R2", "prefix": ""}],
        "projection": ["A", "C", "D"],
    }
    phis_r2 = [FD("VR2", ("A",), ("C",)), FD("VR2", ("C",), ("A",))]
    with PropagationService() as service:
        with background_server(service, "http") as url:
            with connect(url) as client:
                _register_named(client, docs, "U")
                client.register_view("VR2", view_r2)
                cold = client.check(CheckRequest(view="U", targets=docs["phis"]))
                assert cold.stats.chases > 0
                before = client.check(CheckRequest(view="VR2", targets=phis_r2))
                update = client.delta_sigma(
                    UpdateSigmaRequest(remove=[FD("R1", ("B",), ("C",))])
                )
                assert update.affected_relations == ["R1"]
                assert update.retained > 0  # the VR2 lines stayed warm
                after = client.check(CheckRequest(view="VR2", targets=phis_r2))
                assert after.propagated == before.propagated
                assert after.stats.chases == 0
                assert after.stats.memo_hits == len(phis_r2)


# ----------------------------------------------------------------------
# 2. The distributed shard orchestrator.
# ----------------------------------------------------------------------


def test_two_worker_orchestrator_ands_to_the_single_engine_verdict():
    """The acceptance run: NDJSON + HTTP shard workers, warm leg chase-free."""
    docs = _union_docs()
    with connect("local://") as reference:
        _register_named(reference, docs, "U")
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))

    with PropagationService() as worker1, PropagationService() as worker2:
        with background_server(worker1, "tcp", shard_worker=True) as url1:
            with background_server(worker2, "http", shard_worker=True) as url2:
                with ShardOrchestrator([url1, url2]) as orch:
                    assert orch.shards == 2
                    assert all(
                        pong["shard_worker"] is True for pong in orch.ping()
                    )
                    orch.register_schema("default", docs["schema"])
                    orch.register_sigma("default", docs["sigma"])
                    orch.register_view("U", docs["view"])
                    cold = orch.check(CheckRequest(view="U", targets=docs["phis"]))
                    assert cold.propagated == expected.propagated
                    assert cold.stats.chases > 0
                    warm = orch.check(CheckRequest(view="U", targets=docs["phis"]))
                    assert warm.propagated == expected.propagated
                    assert warm.stats.chases == 0  # every worker answered warm
                    assert warm.stats.memo_hits > 0


def test_orchestrator_over_local_endpoints_needs_no_sockets():
    docs = _union_docs()
    with connect("local://") as reference:
        _register_named(reference, docs, "U")
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))
    with ShardOrchestrator(["local://", "local://", "local://"]) as orch:
        orch.register_schema("default", docs["schema"])
        orch.register_sigma("default", docs["sigma"])
        orch.register_view("U", docs["view"])
        combined = orch.check(CheckRequest(view="U", targets=docs["phis"]))
    assert combined.propagated == expected.propagated


def test_orchestrator_refuses_what_it_cannot_combine():
    with ShardOrchestrator(["local://"]) as orch:
        with pytest.raises(ApiError) as err:
            orch.check(CheckRequest(view="V", targets=[], shard_index=0))
        assert err.value.kind == "bad-request"
        with pytest.raises(ApiError) as err:
            orch.check(CheckRequest(view="V", targets=[], witness=True))
        assert err.value.kind == "bad-request"
        with pytest.raises(ApiError) as err:
            orch.cover(None)
        assert "not shard-combinable" in err.value.message
    with pytest.raises(ApiError):
        ShardOrchestrator([])


def test_plain_endpoints_refuse_shard_index_requests():
    """Partial verdicts never leak: shard_index needs --shard-worker."""
    with PropagationService() as service:
        with background_server(service, "tcp") as url:
            with connect(url) as client:
                reply = client.call(
                    {"op": "check", "view": "V", "phis": [], "shard_index": 0}
                )
                assert not reply["ok"]
                assert reply["error"]["kind"] == "bad-request"
                assert "--shard-worker" in reply["error"]["message"]
                # ... also when smuggled inside a batch.
                reply = client.call(
                    {
                        "op": "batch",
                        "requests": [
                            {"op": "check", "view": "V", "phis": [], "shard_index": 1}
                        ],
                    }
                )
                assert not reply["ok"]
                assert "--shard-worker" in reply["error"]["message"]


def test_shard_index_service_validation():
    service = PropagationService()
    service.workspace.add_schema(
        "default", {"relations": [{"name": "R", "attributes": ["A", "B"]}]}
    )
    service.workspace.add_sigma("default", [])
    service.workspace.add_view(
        "V", {"name": "V", "atoms": [{"source": "R", "prefix": ""}]}
    )
    for bad in (-1, 2, "0", True):
        with pytest.raises(ApiError) as err:
            service.check(
                CheckRequest(view="V", targets=[], shards=2, shard_index=bad)
            )
        assert err.value.kind == "bad-request"
    # Valid: a partial engine joins the pool without touching the full one.
    verdict = service.check(
        CheckRequest(view="V", targets=[], shards=2, shard_index=1)
    )
    assert verdict.propagated == []
    service.close()


# ----------------------------------------------------------------------
# 3. Boundary hygiene: typed errors, never tracebacks.
# ----------------------------------------------------------------------


def test_unknown_scheme_is_a_typed_bad_request():
    with pytest.raises(ApiError) as err:
        connect("ftp://example.org:21")
    assert err.value.kind == "bad-request"
    assert "ftp" in err.value.message and "local" in err.value.message
    with pytest.raises(ApiError) as err:
        connect("not even a url")
    assert err.value.kind == "bad-request"


def test_unreachable_endpoint_is_unavailable_with_exit_code_5():
    with socket.socket() as probe:  # a port nobody listens on
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    with pytest.raises(ApiError) as err:
        connect(f"tcp://127.0.0.1:{port}")
    assert err.value.kind == "unavailable"
    assert err.value.exit_code == 5


class _ScriptedNdjsonServer(socketserver.ThreadingTCPServer):
    """Replies to each request line from a canned script (then closes)."""

    allow_reuse_address = True

    def __init__(self, script):
        self.script = list(script)

        class Handler(socketserver.StreamRequestHandler):
            def handle(handler):
                for reply in self.script:
                    if not handler.rfile.readline():
                        return
                    handler.wfile.write(reply)
                    handler.wfile.flush()

        super().__init__(("127.0.0.1", 0), Handler)


def _scripted(script):
    server = _ScriptedNdjsonServer(script)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"tcp://127.0.0.1:{server.server_address[1]}"
    return server, url


def test_truncated_ndjson_response_is_unavailable_not_a_traceback():
    # The scripted server answers the handshake ping, then drops the
    # connection halfway through the next response (no newline).
    pong = (
        json.dumps(
            {"ok": True, "op": "ping", "result": {"pong": True, "protocol": 1}}
        )
        + "\n"
    ).encode()
    server, url = _scripted([pong, b'{"ok": tru'])
    try:
        client = connect(url)
        with pytest.raises(ApiError) as err:
            client.ping()
        assert err.value.kind == "unavailable"
        assert "truncated" in err.value.message
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_protocol_mismatch_warns_at_connect_time():
    pong = (
        json.dumps(
            {"ok": True, "op": "ping", "result": {"pong": True, "protocol": 99}}
        )
        + "\n"
    ).encode()
    server, url = _scripted([pong])
    try:
        with pytest.warns(ProtocolMismatchWarning, match="protocol 99"):
            client = connect(url)
        assert client.protocol == 99
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_matching_protocol_does_not_warn():
    import warnings

    with PropagationService() as service:
        with background_server(service, "tcp") as url:
            with warnings.catch_warnings():
                warnings.simplefilter("error", ProtocolMismatchWarning)
                client = connect(url)
                assert client.protocol == PROTOCOL_VERSION
                client.close()


def test_oversized_ndjson_request_is_refused_typed_then_closed():
    with PropagationService() as service:
        with background_server(service, "tcp", max_request_bytes=1024) as url:
            host, port = url.removeprefix("tcp://").rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=30) as sock:
                sock.sendall(
                    b'{"op": "ping", "pad": "' + b"x" * 4096 + b'"}\n'
                )
                reply = json.loads(sock.makefile("rb").readline())
            assert not reply["ok"]
            assert reply["error"]["kind"] == "bad-request"
            assert "1024" in reply["error"]["message"]
            # The server survives for fresh connections.
            with connect(url) as client:
                assert client.ping()["pong"] is True


def test_oversized_http_body_is_413_with_typed_document():
    with PropagationService() as service:
        with background_server(service, "http", max_request_bytes=1024) as url:
            host, port = url.removeprefix("http://").rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            conn.request(
                "POST",
                "/v1/check",
                body=json.dumps({"op": "check", "pad": "x" * 4096}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            conn.close()
            assert response.status == 413
            assert doc["error"]["kind"] == "bad-request"
            with connect(url) as client:  # server still alive
                assert client.ping()["pong"] is True


def test_bad_http_method_and_path_are_typed_documents():
    with PropagationService() as service:
        with background_server(service, "http") as url:
            host, port = url.removeprefix("http://").rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)

            conn.request("GET", "/nope")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 404
            assert doc == {
                "ok": False,
                "error": {
                    "kind": "not-found",
                    "message": "no such route: GET /nope",
                },
            }

            conn.request("DELETE", "/v1/check")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 405
            assert doc["error"]["kind"] == "bad-request"

            conn.request("POST", "/v1/check", body=b"{nonsense")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 400
            assert doc["error"]["kind"] == "bad-request"
            conn.close()


def test_http_error_kinds_map_to_status_codes():
    with PropagationService() as service:
        with background_server(service, "http") as url:
            host, port = url.removeprefix("http://").rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            # not-found kind (unregistered view) -> 404 with ok: false.
            conn.request(
                "POST",
                "/v1/check",
                body=json.dumps({"view": "ghost", "phis": []}).encode(),
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 404
            assert doc["error"]["kind"] == "not-found"
            conn.close()


def test_local_url_with_an_address_is_rejected():
    with pytest.raises(ApiError) as err:
        connect("local://somewhere")
    assert err.value.kind == "bad-request"


# ----------------------------------------------------------------------
# 4. The failure matrix: retry, reconnection, failover, replicas.
# ----------------------------------------------------------------------


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def test_retry_policy_delays_are_exponential_and_capped():
    policy = RetryPolicy(retries=4, backoff=0.05, jitter=0.0)
    assert list(policy.delays()) == [0.05, 0.1, 0.2, 0.4]
    capped = RetryPolicy(retries=4, backoff=0.05, max_backoff=0.1, jitter=0.0)
    assert list(capped.delays()) == [0.05, 0.1, 0.1, 0.1]
    jittered = RetryPolicy(retries=50, backoff=0.05, jitter=1.0)
    for base, actual in zip(RetryPolicy(retries=50, jitter=0.0).delays(),
                            jittered.delays()):
        assert base <= actual <= 2.0 * base


def test_retry_policy_rejects_bad_parameters_typed():
    for bad in (
        dict(retries=-1),
        dict(backoff=-0.1),
        dict(jitter=-1.0),
        dict(multiplier=0.5),
    ):
        with pytest.raises(ApiError) as err:
            RetryPolicy(**bad)
        assert err.value.kind == "bad-request"


def test_idempotency_classification_matrix():
    for op in IDEMPOTENT_OPS:
        assert is_idempotent({"op": op})
    assert not is_idempotent({"op": "shutdown"})
    assert not is_idempotent("not a document")
    assert not is_idempotent({"no": "op"})
    # batch recursion: idempotent iff every sub-request is.
    assert is_idempotent(
        {"op": "batch", "requests": [{"op": "check"}, {"op": "update-sigma"}]}
    )
    assert not is_idempotent(
        {"op": "batch", "requests": [{"op": "check"}, {"op": "shutdown"}]}
    )
    assert not is_idempotent({"op": "batch", "requests": "garbage"})


class _FlakyTransport(Transport):
    """Fails the first *failures* attempts, then answers ok."""

    def __init__(self, failures: int, kind: str = "unavailable", retry=None):
        self.retry = retry
        self.calls = 0
        self._failures = failures
        self._kind = kind

    def _request_once(self, doc):
        self.calls += 1
        if self.calls <= self._failures:
            raise ApiError(self._kind, f"flaky failure #{self.calls}")
        return {"ok": True, "op": doc.get("op"), "result": {}}


@pytest.fixture
def recorded_sleeps(monkeypatch):
    sleeps: list[float] = []
    monkeypatch.setattr(
        "repro.api.transport.time.sleep", lambda delay: sleeps.append(delay)
    )
    return sleeps


def test_retry_absorbs_transient_unavailable_failures(recorded_sleeps):
    policy = RetryPolicy(retries=2, backoff=0.05, jitter=0.0)
    flaky = _FlakyTransport(failures=2, retry=policy)
    assert flaky.request({"op": "ping"})["ok"] is True
    assert flaky.calls == 3
    assert recorded_sleeps == [0.05, 0.1]


def test_retry_exhaustion_reraises_the_last_unavailable(recorded_sleeps):
    policy = RetryPolicy(retries=2, backoff=0.05, jitter=0.0)
    flaky = _FlakyTransport(failures=10, retry=policy)
    with pytest.raises(ApiError) as err:
        flaky.request({"op": "ping"})
    assert err.value.kind == "unavailable"
    assert flaky.calls == 3  # the first attempt + the 2 retries, no more
    assert recorded_sleeps == [0.05, 0.1]


def test_retry_never_resends_non_idempotent_ops(recorded_sleeps):
    policy = RetryPolicy(retries=3, backoff=0.05, jitter=0.0)
    flaky = _FlakyTransport(failures=1, retry=policy)
    with pytest.raises(ApiError):
        flaky.request({"op": "shutdown"})
    assert flaky.calls == 1
    assert recorded_sleeps == []


def test_retry_never_resends_on_service_level_errors(recorded_sleeps):
    policy = RetryPolicy(retries=3, backoff=0.05, jitter=0.0)
    flaky = _FlakyTransport(failures=1, kind="not-found", retry=policy)
    with pytest.raises(ApiError) as err:
        flaky.request({"op": "check"})
    assert err.value.kind == "not-found"
    assert flaky.calls == 1
    assert recorded_sleeps == []


def test_no_policy_means_fail_fast(recorded_sleeps):
    flaky = _FlakyTransport(failures=1)
    with pytest.raises(ApiError):
        flaky.request({"op": "ping"})
    assert flaky.calls == 1
    assert recorded_sleeps == []


class _OneReplyPerConnectionServer(socketserver.ThreadingTCPServer):
    """Each connection serves ONE scripted reply, then closes.

    Models a server that keeps crashing between requests: a client that
    leaves its broken socket in place after the drop can never reach the
    recovered endpoint, while one that resets and reconnects can.
    """

    allow_reuse_address = True

    def __init__(self, replies):
        self.replies = list(replies)
        self.replies_guard = threading.Lock()
        outer = self

        class Handler(socketserver.StreamRequestHandler):
            def handle(handler):
                if not handler.rfile.readline():
                    return
                with outer.replies_guard:
                    reply = outer.replies.pop(0) if outer.replies else b""
                if reply:
                    handler.wfile.write(reply)
                    handler.wfile.flush()

        super().__init__(("127.0.0.1", 0), Handler)


def _one_shot(replies):
    server = _OneReplyPerConnectionServer(replies)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"tcp://127.0.0.1:{server.server_address[1]}"


_PONG = (
    json.dumps(
        {"ok": True, "op": "ping", "result": {"pong": True, "protocol": 1}}
    )
    + "\n"
).encode()


def test_tcp_transport_reconnects_after_a_broken_connection():
    """The satellite bugfix: a socket error must not poison the transport."""
    server, url = _one_shot([_PONG, _PONG])
    try:
        client = connect(url)  # handshake eats reply 1, server drops the conn
        with pytest.raises(ApiError) as err:
            client.ping()  # the established socket is dead
        assert err.value.kind == "unavailable"
        # Pre-fix this kept failing forever on the same broken file object;
        # now the transport reset and this reconnects to the recovered server.
        assert client.ping()["pong"] is True
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_retry_masks_a_connection_drop_between_requests():
    server, url = _one_shot([_PONG, _PONG, _PONG])
    try:
        client = connect(url, retry=RetryPolicy(retries=2, backoff=0.001, jitter=0.0))
        assert client.ping()["pong"] is True  # dead socket -> retry reconnects
        assert client.ping()["pong"] is True
        client.close()
    finally:
        server.shutdown()
        server.server_close()


class _CannedHttpServer(socketserver.ThreadingTCPServer):
    """Each connection answers with the next canned raw HTTP response."""

    allow_reuse_address = True

    def __init__(self, responses):
        self.responses = list(responses)
        self.responses_guard = threading.Lock()
        outer = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(handler):
                handler.request.settimeout(10)
                try:
                    if not handler.request.recv(65536):
                        return
                except OSError:  # pragma: no cover - client vanished
                    return
                with outer.responses_guard:
                    payload = outer.responses.pop(0) if outer.responses else b""
                if payload:
                    handler.request.sendall(payload)

        super().__init__(("127.0.0.1", 0), Handler)


def _canned_http(responses):
    server = _CannedHttpServer(responses)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, f"http://127.0.0.1:{server.server_address[1]}"


def _http_payload(status_line, body, content_type="application/json"):
    return (
        f"HTTP/1.1 {status_line}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    ).encode() + body


_HTTP_PONG = _http_payload(
    "200 OK",
    json.dumps(
        {"ok": True, "op": "ping", "result": {"pong": True, "protocol": 1}}
    ).encode(),
)
_HTTP_502 = _http_payload(
    "502 Bad Gateway", b"<html>upstream dead</html>", content_type="text/html"
)


def test_http_gateway_5xx_html_is_unavailable_not_internal():
    """The satellite bugfix: a 502 error page is a retryable outage."""
    garbage_200 = _http_payload("200 OK", b"surprise, not json")
    server, url = _canned_http([_HTTP_PONG, _HTTP_502, garbage_200])
    try:
        client = connect(url)
        with pytest.raises(ApiError) as err:
            client.ping()
        assert err.value.kind == "unavailable"
        assert "502" in err.value.message
        # ... while a non-JSON body behind a 2xx status stays `internal`:
        # the endpoint itself answered, with protocol garbage.
        with pytest.raises(ApiError) as err:
            client.ping()
        assert err.value.kind == "internal"
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_http_retry_rides_through_a_gateway_502():
    server, url = _canned_http([_HTTP_PONG, _HTTP_502, _HTTP_PONG])
    try:
        client = connect(url, retry=RetryPolicy(retries=1, backoff=0.001, jitter=0.0))
        assert client.ping()["pong"] is True  # 502 absorbed by one retry
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_fan_out_aggregates_every_worker_failure():
    """The satellite bugfix: sibling failures are named, not discarded."""
    dead_urls = [f"tcp://127.0.0.1:{_free_port()}" for _ in range(2)]
    workers = [connect("local://")] + [
        connect(url, handshake=False) for url in dead_urls
    ]
    try:
        with ShardOrchestrator(workers) as orch:
            with pytest.raises(ApiError) as err:
                orch.ping()
            assert err.value.kind == "unavailable"
            assert "2/3 workers failed" in err.value.message
            for url in dead_urls:  # every dead endpoint is named
                assert url in err.value.message
            assert [entry["alive"] for entry in orch.health()] == [
                True,
                False,
                False,
            ]
            assert orch.live_workers() == [0]
            assert orch.failovers == 2
    finally:
        for worker in workers:
            worker.close()


def test_aggregate_prefers_service_level_error_kinds():
    with ShardOrchestrator(["local://", "local://"]) as orch:
        error = orch._aggregate(
            [
                (0, ApiError("unavailable", "connection refused")),
                (1, ApiError("not-found", "no view 'ghost'")),
            ]
        )
    assert error.kind == "not-found"  # the request is wrong, not the fleet
    assert "2/2 workers failed" in error.message
    assert "connection refused" in error.message


def test_shard_failover_lands_the_and_verdict_after_a_worker_dies():
    """The tentpole: kill 1 of 2 shard workers, the check still lands."""
    docs = _union_docs()
    with connect("local://") as reference:
        _register_named(reference, docs, "U")
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))

    with PropagationService() as worker1, PropagationService() as worker2:
        with background_server(worker1, "tcp", shard_worker=True) as url1:
            with background_server(worker2, "tcp", shard_worker=True) as url2:
                with ShardOrchestrator([url1, url2]) as orch:
                    orch.register_schema("default", docs["schema"])
                    orch.register_sigma("default", docs["sigma"])
                    orch.register_view("U", docs["view"])
                    cold = orch.check(CheckRequest(view="U", targets=docs["phis"]))
                    assert cold.propagated == expected.propagated

                    with connect(url2, handshake=False) as killer:
                        killer.shutdown()
                    # Ping-driven liveness: the health probe detects the
                    # death (polling rides out the shutdown's last gasp).
                    deadline = time.time() + 30
                    while orch.check_health()[1]["alive"]:
                        assert time.time() < deadline, "worker never died"
                        time.sleep(0.05)
                    assert orch.live_workers() == [0]
                    assert orch.failovers >= 1

                    # The dead worker's shard is re-planned onto the
                    # survivor: same 2-shard plan, full AND verdict.
                    recovered = orch.check(
                        CheckRequest(view="U", targets=docs["phis"])
                    )
                    assert recovered.propagated == expected.propagated

                    # mark_alive puts it back in rotation; the next
                    # health probe re-detects the corpse.
                    orch.mark_alive(1)
                    assert orch.live_workers() == [0, 1]
                    health = orch.check_health()
                    assert [entry["alive"] for entry in health] == [True, False]


def test_replica_set_load_balances_round_robin():
    docs = _union_docs()
    with PropagationService() as svc1, PropagationService() as svc2:
        with connect("local://", service=svc1) as c1:
            with connect("local://", service=svc2) as c2:
                with ReplicaSet([c1, c2]) as replicas:
                    replicas.register_schema("default", docs["schema"])
                    replicas.register_sigma("default", docs["sigma"])
                    replicas.register_view("U", docs["view"])
                    request = CheckRequest(view="U", targets=docs["phis"])
                    first = replicas.check(request)
                    second = replicas.check(request)
                    third = replicas.check(request)
    assert first.propagated == second.propagated == third.propagated
    # Round-robin: the second identical check hit the OTHER replica, so
    # it also ran cold; the third wrapped around to the now-warm first.
    assert first.stats.chases > 0
    assert second.stats.chases > 0
    assert third.stats.chases == 0


def test_replica_set_reroutes_around_a_dead_replica():
    docs = _union_docs()
    dead = connect(f"tcp://127.0.0.1:{_free_port()}", handshake=False)
    live = connect("local://")
    try:
        _register_named(live, docs, "U")
        expected = live.check(CheckRequest(view="U", targets=docs["phis"]))
        with ReplicaSet([dead, live]) as replicas:
            verdict = replicas.check(CheckRequest(view="U", targets=docs["phis"]))
            assert verdict.propagated == expected.propagated
            assert replicas.failovers == 1
            assert replicas.live_workers() == [1]
            again = replicas.check(CheckRequest(view="U", targets=docs["phis"]))
            assert again.propagated == expected.propagated
            assert replicas.failovers == 1  # dead one skipped, not re-probed
    finally:
        dead.close()
        live.close()


def test_replica_set_with_every_replica_dead_raises_the_aggregate():
    workers = [
        connect(f"tcp://127.0.0.1:{_free_port()}", handshake=False)
        for _ in range(2)
    ]
    try:
        with ReplicaSet(workers) as replicas:
            with pytest.raises(ApiError) as err:
                replicas.check(CheckRequest(view="U", targets=[]))
            assert err.value.kind == "unavailable"
            assert "2/2 workers failed" in err.value.message
            # Once the book says everyone is dead, the error is immediate.
            with pytest.raises(ApiError) as err:
                replicas.stats()
            assert "no live replicas" in err.value.message
    finally:
        for worker in workers:
            worker.close()


def test_replica_set_reraises_service_errors_without_failover():
    with ReplicaSet(["local://", "local://"]) as replicas:
        with pytest.raises(ApiError) as err:
            replicas.check(CheckRequest(view="ghost", targets=[]))
        assert err.value.kind == "not-found"
        # The replica answered; rerouting cannot change the answer.
        assert replicas.failovers == 0
        assert replicas.live_workers() == [0, 1]


def test_request_stats_total_sums_every_counter_field():
    """The satellite drift guard: no RequestStats counter is dropped."""
    ones = RequestStats(**{f.name: 1 for f in dataclass_fields(RequestStats)})
    twos = RequestStats(**{f.name: 2 for f in dataclass_fields(RequestStats)})
    total = RequestStats.total([ones, twos], elapsed_ms=7.0)
    assert total.elapsed_ms == 7.0
    for field in dataclass_fields(RequestStats):
        if field.name != "elapsed_ms":
            assert getattr(total, field.name) == 3, field.name


def test_server_ping_advertises_uptime_and_served_count():
    with PropagationService() as service:
        with background_server(service, "tcp") as url:
            with connect(url) as client:
                assert client.capabilities["shard_worker"] is False
                pong = client.ping()
                assert pong["uptime_s"] >= 0
                assert pong["requests_served"] >= 2  # the handshake + this
