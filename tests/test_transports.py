"""URL-addressed endpoints: transports, client SDK, orchestrator, boundary.

The PR 5 obligations:

1. *Transport differential* — the same registered workspace and the
   Example 4.1 batch yield **identical** verdict and cover documents
   via ``local://``, ``tcp://`` and ``http://`` endpoints (stats equal
   up to wall time).
2. *Distributed shard orchestrator* — a 2-worker ``shard_index`` fleet
   (one NDJSON worker, one HTTP worker) ANDs its partial verdicts to
   the single-engine answer, with **zero chases** on the warm leg.
3. *Boundary hygiene* — truncated NDJSON, oversized request bodies, bad
   HTTP methods/paths and unknown URL schemes each surface a typed
   :class:`~repro.api.ApiError` (or error document), never a traceback;
   wire-protocol drift warns at ``connect()`` time.
"""

from __future__ import annotations

import http.client
import json
import socket
import socketserver
import threading

import pytest

from repro import io as repro_io
from repro.api import (
    ApiError,
    CheckRequest,
    PROTOCOL_VERSION,
    PropagationService,
    ShardOrchestrator,
    UpdateSigmaRequest,
    background_server,
    connect,
)
from repro.api.client import ProtocolMismatchWarning
from repro.core.fd import FD
from repro.propagation.closure_baseline import (
    example_41_workload,
    exponential_family_schema,
    union_shard_workload,
)

# ----------------------------------------------------------------------
# Shared workloads.
# ----------------------------------------------------------------------


def _example_41_docs(n: int = 3):
    """The Example 4.1 workload as registerable wire documents."""
    view, sigma, queries = example_41_workload(n, defeat_fast_path=True)
    return {
        "schema": repro_io.schema_to_json(exponential_family_schema(n)),
        "sigma": repro_io.dependencies_to_json(sigma),
        "view": repro_io.view_to_json(view),
        "phis": repro_io.dependencies_to_json(queries),
    }


def _union_docs():
    """The shared 3-branch union workload, as registerable documents."""
    schema, sigma, view, phis = union_shard_workload()
    return {
        "schema": repro_io.schema_to_json(schema),
        "sigma": repro_io.dependencies_to_json(sigma),
        "view": repro_io.view_to_json(view),
        "phis": phis,  # objects: fed to typed CheckRequests
    }


def _scrub(doc):
    """Drop wall-time fields so documents compare across transports."""
    if isinstance(doc, dict):
        return {k: _scrub(v) for k, v in doc.items() if k != "elapsed_ms"}
    if isinstance(doc, list):
        return [_scrub(item) for item in doc]
    return doc


# ----------------------------------------------------------------------
# 1. Transport differential: identical documents on every wire.
# ----------------------------------------------------------------------


def test_local_tcp_http_yield_identical_documents():
    """The acceptance differential: one workspace, three wires, one truth."""
    docs = _example_41_docs(3)
    batch = {
        "op": "batch",
        "requests": [
            {"op": "check", "view": "V", "phis": docs["phis"]},
            {"op": "check", "view": "V", "phis": docs["phis"]},  # warm leg
            {"op": "cover", "view": "V"},
        ],
    }

    def drive(client):
        for kind, name in (("schema", "default"), ("sigma", "default")):
            client.result(
                {"op": "register", "kind": kind, "name": name, "doc": docs[kind]}
            )
        client.result(
            {"op": "register", "kind": "view", "name": "V", "doc": docs["view"]}
        )
        return client.call(dict(batch))

    with connect("local://") as local_client:
        local = drive(local_client)

    with PropagationService() as tcp_service:
        with background_server(tcp_service, "tcp") as url:
            with connect(url) as tcp_client:
                tcp = drive(tcp_client)

    with PropagationService() as http_service:
        with background_server(http_service, "http") as url:
            with connect(url) as http_client:
                http_reply = drive(http_client)

    assert local["ok"] and tcp["ok"] and http_reply["ok"]
    assert _scrub(local) == _scrub(tcp) == _scrub(http_reply)
    # The documents really carry the workload: cold chases, warm memo hits.
    cold, warm, cover = local["result"]["results"]
    assert cold["stats"]["chases"] > 0
    assert warm["stats"]["chases"] == 0
    assert warm["stats"]["memo_hits"] == len(docs["phis"])
    assert cover["cover"]
    # JSON-serializable end to end (local:// skipped the text encoding).
    json.dumps([local, tcp, http_reply])


def test_typed_client_matches_service_answers_over_every_wire():
    docs = _example_41_docs(3)
    request = CheckRequest(
        view="V", targets=repro_io.dependencies_from_json(docs["phis"])
    )
    verdicts = {}
    with connect("local://") as local_client:
        _register_named(local_client, docs, "V")
        verdicts["local"] = local_client.check(request)
    with PropagationService() as service:
        with background_server(service, "tcp") as tcp_url:
            with connect(tcp_url) as tcp_client:
                _register_named(tcp_client, docs, "V")
                verdicts["tcp"] = tcp_client.check(request)
        with background_server(service, "http") as http_url:
            with connect(http_url) as http_client:
                # Same service: the HTTP leg must be answered warm.
                warm = http_client.check(request)
    assert (
        verdicts["local"].propagated
        == verdicts["tcp"].propagated
        == warm.propagated
    )
    assert verdicts["local"].route == verdicts["tcp"].route == warm.route
    assert warm.stats.chases == 0  # tcp leg warmed the shared service


def _register_named(client, docs, view_name: str) -> None:
    client.register_schema("default", docs["schema"])
    client.register_sigma("default", docs["sigma"])
    client.register_view(view_name, docs["view"])


def test_client_reraises_typed_errors_from_any_wire():
    with PropagationService() as service:
        with background_server(service, "http") as url:
            with connect(url) as client:
                with pytest.raises(ApiError) as err:
                    client.check(CheckRequest(view="ghost", targets=[]))
                assert err.value.kind == "not-found"
    with connect("local://") as client:
        with pytest.raises(ApiError) as err:
            client.check(CheckRequest(view="ghost", targets=[]))
        assert err.value.kind == "not-found"


def test_update_sigma_round_trips_typed_over_http():
    docs = _union_docs()
    view_r2 = {
        "name": "VR2",
        "atoms": [{"source": "R2", "prefix": ""}],
        "projection": ["A", "C", "D"],
    }
    phis_r2 = [FD("VR2", ("A",), ("C",)), FD("VR2", ("C",), ("A",))]
    with PropagationService() as service:
        with background_server(service, "http") as url:
            with connect(url) as client:
                _register_named(client, docs, "U")
                client.register_view("VR2", view_r2)
                cold = client.check(CheckRequest(view="U", targets=docs["phis"]))
                assert cold.stats.chases > 0
                before = client.check(CheckRequest(view="VR2", targets=phis_r2))
                update = client.delta_sigma(
                    UpdateSigmaRequest(remove=[FD("R1", ("B",), ("C",))])
                )
                assert update.affected_relations == ["R1"]
                assert update.retained > 0  # the VR2 lines stayed warm
                after = client.check(CheckRequest(view="VR2", targets=phis_r2))
                assert after.propagated == before.propagated
                assert after.stats.chases == 0
                assert after.stats.memo_hits == len(phis_r2)


# ----------------------------------------------------------------------
# 2. The distributed shard orchestrator.
# ----------------------------------------------------------------------


def test_two_worker_orchestrator_ands_to_the_single_engine_verdict():
    """The acceptance run: NDJSON + HTTP shard workers, warm leg chase-free."""
    docs = _union_docs()
    with connect("local://") as reference:
        _register_named(reference, docs, "U")
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))

    with PropagationService() as worker1, PropagationService() as worker2:
        with background_server(worker1, "tcp", shard_worker=True) as url1:
            with background_server(worker2, "http", shard_worker=True) as url2:
                with ShardOrchestrator([url1, url2]) as orch:
                    assert orch.shards == 2
                    assert all(
                        pong["shard_worker"] is True for pong in orch.ping()
                    )
                    orch.register_schema("default", docs["schema"])
                    orch.register_sigma("default", docs["sigma"])
                    orch.register_view("U", docs["view"])
                    cold = orch.check(CheckRequest(view="U", targets=docs["phis"]))
                    assert cold.propagated == expected.propagated
                    assert cold.stats.chases > 0
                    warm = orch.check(CheckRequest(view="U", targets=docs["phis"]))
                    assert warm.propagated == expected.propagated
                    assert warm.stats.chases == 0  # every worker answered warm
                    assert warm.stats.memo_hits > 0


def test_orchestrator_over_local_endpoints_needs_no_sockets():
    docs = _union_docs()
    with connect("local://") as reference:
        _register_named(reference, docs, "U")
        expected = reference.check(CheckRequest(view="U", targets=docs["phis"]))
    with ShardOrchestrator(["local://", "local://", "local://"]) as orch:
        orch.register_schema("default", docs["schema"])
        orch.register_sigma("default", docs["sigma"])
        orch.register_view("U", docs["view"])
        combined = orch.check(CheckRequest(view="U", targets=docs["phis"]))
    assert combined.propagated == expected.propagated


def test_orchestrator_refuses_what_it_cannot_combine():
    with ShardOrchestrator(["local://"]) as orch:
        with pytest.raises(ApiError) as err:
            orch.check(CheckRequest(view="V", targets=[], shard_index=0))
        assert err.value.kind == "bad-request"
        with pytest.raises(ApiError) as err:
            orch.check(CheckRequest(view="V", targets=[], witness=True))
        assert err.value.kind == "bad-request"
        with pytest.raises(ApiError) as err:
            orch.cover(None)
        assert "not shard-combinable" in err.value.message
    with pytest.raises(ApiError):
        ShardOrchestrator([])


def test_plain_endpoints_refuse_shard_index_requests():
    """Partial verdicts never leak: shard_index needs --shard-worker."""
    with PropagationService() as service:
        with background_server(service, "tcp") as url:
            with connect(url) as client:
                reply = client.call(
                    {"op": "check", "view": "V", "phis": [], "shard_index": 0}
                )
                assert not reply["ok"]
                assert reply["error"]["kind"] == "bad-request"
                assert "--shard-worker" in reply["error"]["message"]
                # ... also when smuggled inside a batch.
                reply = client.call(
                    {
                        "op": "batch",
                        "requests": [
                            {"op": "check", "view": "V", "phis": [], "shard_index": 1}
                        ],
                    }
                )
                assert not reply["ok"]
                assert "--shard-worker" in reply["error"]["message"]


def test_shard_index_service_validation():
    service = PropagationService()
    service.workspace.add_schema(
        "default", {"relations": [{"name": "R", "attributes": ["A", "B"]}]}
    )
    service.workspace.add_sigma("default", [])
    service.workspace.add_view(
        "V", {"name": "V", "atoms": [{"source": "R", "prefix": ""}]}
    )
    for bad in (-1, 2, "0", True):
        with pytest.raises(ApiError) as err:
            service.check(
                CheckRequest(view="V", targets=[], shards=2, shard_index=bad)
            )
        assert err.value.kind == "bad-request"
    # Valid: a partial engine joins the pool without touching the full one.
    verdict = service.check(
        CheckRequest(view="V", targets=[], shards=2, shard_index=1)
    )
    assert verdict.propagated == []
    service.close()


# ----------------------------------------------------------------------
# 3. Boundary hygiene: typed errors, never tracebacks.
# ----------------------------------------------------------------------


def test_unknown_scheme_is_a_typed_bad_request():
    with pytest.raises(ApiError) as err:
        connect("ftp://example.org:21")
    assert err.value.kind == "bad-request"
    assert "ftp" in err.value.message and "local" in err.value.message
    with pytest.raises(ApiError) as err:
        connect("not even a url")
    assert err.value.kind == "bad-request"


def test_unreachable_endpoint_is_unavailable_with_exit_code_5():
    with socket.socket() as probe:  # a port nobody listens on
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    with pytest.raises(ApiError) as err:
        connect(f"tcp://127.0.0.1:{port}")
    assert err.value.kind == "unavailable"
    assert err.value.exit_code == 5


class _ScriptedNdjsonServer(socketserver.ThreadingTCPServer):
    """Replies to each request line from a canned script (then closes)."""

    allow_reuse_address = True

    def __init__(self, script):
        self.script = list(script)

        class Handler(socketserver.StreamRequestHandler):
            def handle(handler):
                for reply in self.script:
                    if not handler.rfile.readline():
                        return
                    handler.wfile.write(reply)
                    handler.wfile.flush()

        super().__init__(("127.0.0.1", 0), Handler)


def _scripted(script):
    server = _ScriptedNdjsonServer(script)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"tcp://127.0.0.1:{server.server_address[1]}"
    return server, url


def test_truncated_ndjson_response_is_unavailable_not_a_traceback():
    # The scripted server answers the handshake ping, then drops the
    # connection halfway through the next response (no newline).
    pong = (
        json.dumps(
            {"ok": True, "op": "ping", "result": {"pong": True, "protocol": 1}}
        )
        + "\n"
    ).encode()
    server, url = _scripted([pong, b'{"ok": tru'])
    try:
        client = connect(url)
        with pytest.raises(ApiError) as err:
            client.ping()
        assert err.value.kind == "unavailable"
        assert "truncated" in err.value.message
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_protocol_mismatch_warns_at_connect_time():
    pong = (
        json.dumps(
            {"ok": True, "op": "ping", "result": {"pong": True, "protocol": 99}}
        )
        + "\n"
    ).encode()
    server, url = _scripted([pong])
    try:
        with pytest.warns(ProtocolMismatchWarning, match="protocol 99"):
            client = connect(url)
        assert client.protocol == 99
        client.close()
    finally:
        server.shutdown()
        server.server_close()


def test_matching_protocol_does_not_warn():
    import warnings

    with PropagationService() as service:
        with background_server(service, "tcp") as url:
            with warnings.catch_warnings():
                warnings.simplefilter("error", ProtocolMismatchWarning)
                client = connect(url)
                assert client.protocol == PROTOCOL_VERSION
                client.close()


def test_oversized_ndjson_request_is_refused_typed_then_closed():
    with PropagationService() as service:
        with background_server(service, "tcp", max_request_bytes=1024) as url:
            host, port = url.removeprefix("tcp://").rsplit(":", 1)
            with socket.create_connection((host, int(port)), timeout=30) as sock:
                sock.sendall(
                    b'{"op": "ping", "pad": "' + b"x" * 4096 + b'"}\n'
                )
                reply = json.loads(sock.makefile("rb").readline())
            assert not reply["ok"]
            assert reply["error"]["kind"] == "bad-request"
            assert "1024" in reply["error"]["message"]
            # The server survives for fresh connections.
            with connect(url) as client:
                assert client.ping()["pong"] is True


def test_oversized_http_body_is_413_with_typed_document():
    with PropagationService() as service:
        with background_server(service, "http", max_request_bytes=1024) as url:
            host, port = url.removeprefix("http://").rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            conn.request(
                "POST",
                "/v1/check",
                body=json.dumps({"op": "check", "pad": "x" * 4096}).encode(),
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            conn.close()
            assert response.status == 413
            assert doc["error"]["kind"] == "bad-request"
            with connect(url) as client:  # server still alive
                assert client.ping()["pong"] is True


def test_bad_http_method_and_path_are_typed_documents():
    with PropagationService() as service:
        with background_server(service, "http") as url:
            host, port = url.removeprefix("http://").rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)

            conn.request("GET", "/nope")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 404
            assert doc == {
                "ok": False,
                "error": {
                    "kind": "not-found",
                    "message": "no such route: GET /nope",
                },
            }

            conn.request("DELETE", "/v1/check")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 405
            assert doc["error"]["kind"] == "bad-request"

            conn.request("POST", "/v1/check", body=b"{nonsense")
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 400
            assert doc["error"]["kind"] == "bad-request"
            conn.close()


def test_http_error_kinds_map_to_status_codes():
    with PropagationService() as service:
        with background_server(service, "http") as url:
            host, port = url.removeprefix("http://").rsplit(":", 1)
            conn = http.client.HTTPConnection(host, int(port), timeout=30)
            # not-found kind (unregistered view) -> 404 with ok: false.
            conn.request(
                "POST",
                "/v1/check",
                body=json.dumps({"view": "ghost", "phis": []}).encode(),
            )
            response = conn.getresponse()
            doc = json.loads(response.read())
            assert response.status == 404
            assert doc["error"]["kind"] == "not-found"
            conn.close()


def test_local_url_with_an_address_is_rejected():
    with pytest.raises(ApiError) as err:
        connect("local://somewhere")
    assert err.value.kind == "bad-request"
