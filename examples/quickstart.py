"""Quickstart: the paper's running example end to end.

Three customer sources (UK, US, Netherlands) are integrated into one view
that tags each tuple with a country code.  Classical FDs on the sources do
NOT survive integration as FDs — but they survive as *conditional*
functional dependencies (CFDs), and `repro` can prove it, refute the
non-survivors with concrete counterexamples, and compute a cover of
everything that propagates.

Run:  python examples/quickstart.py
"""

from repro import (
    CFD,
    ConstantRelation,
    DatabaseInstance,
    DatabaseSchema,
    FD,
    Product,
    RelationRef,
    RelationSchema,
    SPCUView,
    Union,
    find_counterexample,
    propagates,
)

# ----------------------------------------------------------------------
# 1. Schema: three sources with a uniform layout (Example 1.1).
# ----------------------------------------------------------------------
ATTRS = ["AC", "phn", "name", "street", "city", "zip"]
schema = DatabaseSchema([RelationSchema(f"R{i}", ATTRS) for i in (1, 2, 3)])

# ----------------------------------------------------------------------
# 2. The integration view: V = Q1 U Q2 U Q3, tagging country codes.
# ----------------------------------------------------------------------


def tagged(relation: str, country_code: str):
    return Product(ConstantRelation({"CC": country_code}), RelationRef(relation))


view = SPCUView.from_expr(
    Union(Union(tagged("R1", "44"), tagged("R2", "01")), tagged("R3", "31")),
    schema,
    name="R",
)

# ----------------------------------------------------------------------
# 3. Source dependencies: f1-f3 (FDs) and cfd1-cfd2 (CFDs).
# ----------------------------------------------------------------------
sigma = [
    FD("R1", ("zip",), ("street",)),          # f1: UK zip -> street
    FD("R1", ("AC",), ("city",)),             # f2: UK area code -> city
    FD("R3", ("AC",), ("city",)),             # f3: NL area code -> city
    CFD("R1", {"AC": "20"}, {"city": "ldn"}),        # cfd1
    CFD("R3", {"AC": "20"}, {"city": "Amsterdam"}),  # cfd2
]

# ----------------------------------------------------------------------
# 4. Which dependencies hold on the view?
# ----------------------------------------------------------------------
candidates = {
    "f1 as a plain FD  (zip -> street)": CFD("R", {"zip": "_"}, {"street": "_"}),
    "phi1 (CC=44: zip -> street)": CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
    "phi2 (CC=44: AC -> city)": CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"}),
    "phi3 (CC=31: AC -> city)": CFD("R", {"CC": "31", "AC": "_"}, {"city": "_"}),
    "phi4 (CC=44, AC=20 -> city=ldn)": CFD(
        "R", {"CC": "44", "AC": "20"}, {"city": "ldn"}
    ),
    "phi5 (CC=31, AC=20 -> city=Amsterdam)": CFD(
        "R", {"CC": "31", "AC": "20"}, {"city": "Amsterdam"}
    ),
    "phi6 (CC,AC,phn -> street,city,zip)": FD(
        "R", ("CC", "AC", "phn"), ("street", "city", "zip")
    ),
}

print("Propagation analysis (Sigma |=_V phi):")
for label, phi in candidates.items():
    verdict = propagates(sigma, view, phi)
    print(f"  {'YES' if verdict else 'no ':<4} {label}")

# ----------------------------------------------------------------------
# 5. Why does the plain FD fail?  Ask for a concrete counterexample.
# ----------------------------------------------------------------------
plain_f1 = CFD("R", {"zip": "_"}, {"street": "_"})
witness = find_counterexample(sigma, view, plain_f1)
assert witness is not None
print("\nCounterexample for the plain FD zip -> street:")
for name, relation in witness.database.relations.items():
    for row in relation:
        print(f"  {name}: {row}")
view_data = view.evaluate(witness.database)
print("View tuples (note two rows sharing zip but not street):")
for row in view_data:
    print(f"  {row}")
assert not view_data.satisfies(plain_f1)

# ----------------------------------------------------------------------
# 6. Validate against the Figure 1 instances.
# ----------------------------------------------------------------------
figure1 = DatabaseInstance(
    schema,
    {
        "R1": [
            dict(zip(ATTRS, ("20", "1234567", "Mike", "Portland", "LDN", "W1B 1JL"))),
            dict(zip(ATTRS, ("20", "3456789", "Rick", "Portland", "LDN", "W1B 1JL"))),
        ],
        "R2": [
            dict(zip(ATTRS, ("610", "3456789", "Joe", "Copley", "Darby", "19082"))),
            dict(zip(ATTRS, ("610", "1234567", "Mary", "Walnut", "Darby", "19082"))),
        ],
        "R3": [
            dict(zip(ATTRS, ("20", "3456789", "Marx", "Kruise", "Amsterdam", "1096"))),
            dict(zip(ATTRS, ("36", "1234567", "Bart", "Grote", "Almere", "1316"))),
        ],
    },
)
evaluated = view.evaluate(figure1)
print(f"\nFigure 1 view has {len(evaluated)} tuples;", end=" ")
print(
    "phi1 holds:",
    evaluated.satisfies(CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"})),
)
print(
    "plain zip -> street holds:",
    evaluated.satisfies(plain_f1),
    "(t3/t4 from the US violate it, as in the paper)",
)
