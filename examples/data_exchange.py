"""Data exchange: verifying a schema mapping with PropCFD_SPC.

The paper's application 1: a target schema comes with predefined CFDs;
a view definition qualifies as a *schema mapping* only if every target
CFD is guaranteed on the view.  Instead of testing the target CFDs one by
one, we compute a minimal propagation cover once and answer each
"is this guaranteed?" question by CFD implication against the cover —
exactly the workflow Section 4 motivates.

The source here is a two-feed product catalog joined through a supplier
table; the view publishes a denormalized offer list.

Run:  python examples/data_exchange.py
"""

from repro import (
    CFD,
    DatabaseSchema,
    FD,
    RelationSchema,
    SPCView,
    implies,
    prop_cfd_spc,
)
from repro.algebra.ops import AttrEq, ConstEq
from repro.algebra.spc import RelationAtom

# ----------------------------------------------------------------------
# Sources: products and suppliers.
# ----------------------------------------------------------------------
schema = DatabaseSchema(
    [
        RelationSchema("Product", ["sku", "title", "brand", "supplier_id", "price"]),
        RelationSchema("Supplier", ["sid", "sname", "country", "currency"]),
    ]
)

sigma = [
    FD("Product", ("sku",), ("title", "brand", "supplier_id", "price")),
    FD("Supplier", ("sid",), ("sname", "country", "currency")),
    # Business rule with a condition: UK suppliers price in GBP.
    CFD("Supplier", {"country": "UK"}, {"currency": "GBP"}),
]

# ----------------------------------------------------------------------
# The view: UK offers, denormalized (an SPC view).
#   pi_Y( sigma_{supplier_id = sid and country = 'UK'}(Product x Supplier) )
# ----------------------------------------------------------------------
atoms = [
    RelationAtom(
        "Product",
        {a: f"p.{a}" for a in ("sku", "title", "brand", "supplier_id", "price")},
    ),
    RelationAtom(
        "Supplier", {a: f"s.{a}" for a in ("sid", "sname", "country", "currency")}
    ),
]
view = SPCView(
    "UKOffers",
    schema,
    atoms,
    selection=[AttrEq("p.supplier_id", "s.sid"), ConstEq("s.country", "UK")],
    projection=["p.sku", "p.title", "p.price", "s.sname", "s.currency"],
)

# ----------------------------------------------------------------------
# Compute the propagation cover once.
# ----------------------------------------------------------------------
cover = prop_cfd_spc(sigma, view)
print(f"Minimal propagation cover of the UKOffers view ({len(cover)} CFDs):")
for phi in cover:
    print(f"  {phi}")

# ----------------------------------------------------------------------
# Target constraints the exchange partner insists on.
# ----------------------------------------------------------------------
target_constraints = {
    "sku determines title": CFD(
        "UKOffers", {"p.sku": "_"}, {"p.title": "_"}
    ),
    "sku determines price": CFD(
        "UKOffers", {"p.sku": "_"}, {"p.price": "_"}
    ),
    "all offers in GBP": CFD.constant("UKOffers", "s.currency", "GBP"),
    "sku determines supplier name": CFD(
        "UKOffers", {"p.sku": "_"}, {"s.sname": "_"}
    ),
    "supplier name determines price": CFD(
        "UKOffers", {"s.sname": "_"}, {"p.price": "_"}
    ),
}

print("\nIs the view a valid schema mapping for each target constraint?")
all_ok = True
for label, phi in target_constraints.items():
    ok = implies(cover, phi)
    all_ok &= ok
    print(f"  {'guaranteed' if ok else 'NOT guaranteed'} : {label}")

print(
    "\nVerdict:",
    "the mapping satisfies the contract"
    if all_ok
    else "the mapping must be revised (or the contract relaxed)",
)

# Note the interesting positive: "sku determines supplier name" holds
# even though it crosses the two source relations — sku -> supplier_id
# composes with the join condition and sid -> sname.  And the negative:
# several suppliers may share a name, so names do not determine prices.
assert implies(cover, target_constraints["sku determines supplier name"])
assert not implies(cover, target_constraints["supplier name determines price"])
