"""The complexity frontier: why finite domains cost a coNP price.

Tables 1 and 2 of the paper say dependency propagation is PTIME for SPCU
views in the infinite-domain setting but coNP-complete once finite-domain
attributes appear.  This example makes the frontier tangible:

1. A case where the cheap single-chase procedure (complete for infinite
   domains) gives the WRONG answer on a Boolean attribute, while the
   general-setting enumeration gets it right.
2. The Theorem 3.2 reduction: 3SAT formulas compiled into propagation
   questions over an SC view — satisfiable formula <=> NOT propagated —
   with the runtime growing in the number of finite-domain cells.

Run:  python examples/complexity_frontier.py
"""

import time

from repro import CFD, DatabaseSchema, RelationSchema, SPCView
from repro.algebra.spc import RelationAtom
from repro.core.domains import BOOL
from repro.core.schema import Attribute
from repro.propagation import (
    ThreeSat,
    encode,
    finite_branching_cells,
    propagates,
    propagates_ptime_chase,
)

# ----------------------------------------------------------------------
# 1. The PTIME chase is incomplete with finite domains.
# ----------------------------------------------------------------------
schema = DatabaseSchema(
    [RelationSchema("R", [Attribute("flag", BOOL), Attribute("status")])]
)
view = SPCView(
    "V", schema, [RelationAtom("R", {"flag": "flag", "status": "status"})]
)
sigma = [
    CFD("R", {"flag": False}, {"status": "ok"}),
    CFD("R", {"flag": True}, {"status": "ok"}),
]
phi = CFD.constant("V", "status", "ok")

print("Does {flag=F => ok, flag=T => ok} force status = ok on the view?")
print(f"  infinite-domain chase says : {propagates_ptime_chase(sigma, view, phi)}")
print(f"  general-setting procedure  : {propagates(sigma, view, phi)}")
print(
    "  The chase invents a third flag value; the enumeration knows the\n"
    "  Boolean domain is exhausted by the two cases.  (Theorem 3.3: the\n"
    "  general setting is where the coNP cost comes from.)\n"
)

# ----------------------------------------------------------------------
# 2. 3SAT inside dependency propagation (Theorem 3.2).
# ----------------------------------------------------------------------
formulas = {
    "x1 or x2 or x3 (SAT)": ThreeSat(3, ((1, 2, 3),)),
    "x1 and not x1 (UNSAT)": ThreeSat(1, ((1, 1, 1), (-1, -1, -1))),
    "xor chain (UNSAT)": ThreeSat(
        2, ((1, 2, 2), (-1, -2, -2), (1, -2, -2), (-1, 2, 2))
    ),
    "two clauses (SAT)": ThreeSat(3, ((1, 2, 3), (-1, -2, -3))),
}

print("3SAT via propagation over an SC view (SAT <=> NOT propagated):")
for label, formula in formulas.items():
    enc = encode(formula)
    cells = finite_branching_cells(enc.sigma, enc.view)
    start = time.perf_counter()
    propagated = propagates(enc.sigma, enc.view, enc.psi)
    elapsed = time.perf_counter() - start
    sat = formula.is_satisfiable()
    agreement = "agrees" if sat == (not propagated) else "DISAGREES"
    print(
        f"  {label:<24} cells={cells:<3} propagated={propagated!s:<5} "
        f"brute-force SAT={sat!s:<5} [{agreement}] {elapsed*1000:7.1f} ms"
    )

print(
    "\nThe 'cells' column counts the finite-domain premise positions the\n"
    "procedure may need to branch on: 2^cells bounds the enumeration, and\n"
    "UNSAT instances (where propagation HOLDS) must exhaust it — that is\n"
    "coNP-completeness experienced first-hand."
)
