"""Driving the library from the command line (JSON in, verdicts out).

Everything the other examples do programmatically is also available
through the `repro` CLI so propagation analysis can sit in a shell
pipeline or CI job.  This script writes the Example 1.1 workload to JSON
files in a temp directory, then exercises every subcommand exactly as a
shell user would (via `repro.cli.main`, which is what the `repro`
entry point calls).

Run:  python examples/cli_walkthrough.py
"""

import json
import tempfile
from pathlib import Path

from repro.cli import main

workspace = Path(tempfile.mkdtemp(prefix="repro-cli-"))
ATTRS = ["AC", "phn", "name", "street", "city", "zip"]


def write(name: str, doc) -> str:
    path = workspace / name
    path.write_text(json.dumps(doc, indent=2))
    return str(path)


schema = write(
    "schema.json",
    {"relations": [{"name": f"R{i}", "attributes": ATTRS} for i in (1, 2, 3)]},
)

sigma = write(
    "sigma.json",
    [
        {"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]},
        {"kind": "fd", "relation": "R1", "lhs": ["AC"], "rhs": ["city"]},
        {"kind": "fd", "relation": "R3", "lhs": ["AC"], "rhs": ["city"]},
        {"kind": "cfd", "relation": "R1", "lhs": {"AC": "20"},
         "rhs": {"city": "LDN"}},
        {"kind": "cfd", "relation": "R3", "lhs": {"AC": "20"},
         "rhs": {"city": "Amsterdam"}},
    ],
)

view = write(
    "view.json",
    {
        "name": "R",
        "branches": [
            {
                "atoms": [{"source": f"R{i}", "prefix": ""}],
                "projection": ATTRS + ["CC"],
                "constants": {"CC": cc},
            }
            for i, cc in ((1, "44"), (2, "01"), (3, "31"))
        ],
    },
)

targets = write(
    "targets.json",
    [
        {"kind": "cfd", "relation": "R", "lhs": {"CC": "44", "zip": "_"},
         "rhs": {"street": "_"}},
        {"kind": "cfd", "relation": "R", "lhs": {"zip": "_"},
         "rhs": {"street": "_"}},
    ],
)

print(f"workspace: {workspace}\n")

print("$ repro check --phi targets.json")
code = main(["check", "--schema", schema, "--sigma", sigma, "--view", view,
             "--phi", targets])
print(f"(exit code {code}: one target failed)\n")

print("$ repro cover --out cover.json")
cover_out = str(workspace / "cover.json")
main(["cover", "--schema", schema, "--sigma", sigma, "--view", view,
      "--out", cover_out])
print()

print("$ repro empty")
main(["empty", "--schema", schema, "--sigma", sigma, "--view", view])
print()

# A dirty dataset for validate/repair.
dirty = write(
    "data.json",
    {
        "R1": [
            {"AC": "20", "phn": "1", "name": "Mike", "street": "Portland",
             "city": "LDN", "zip": "W1B"},
            {"AC": "20", "phn": "2", "name": "Rick", "street": "Oxford",
             "city": "LDN", "zip": "W1B"},  # same zip, different street!
        ],
        "R2": [],
        "R3": [],
    },
)
rules = write(
    "rules.json",
    [{"kind": "fd", "relation": "R1", "lhs": ["zip"], "rhs": ["street"]}],
)

print("$ repro validate")
code = main(["validate", "--schema", schema, "--rules", rules, "--data", dirty])
print(f"(exit code {code})\n")

print("$ repro repair --out fixed.json")
fixed_out = str(workspace / "fixed.json")
main(["repair", "--schema", schema, "--rules", rules, "--data", dirty,
      "--out", fixed_out])
print()

print("$ repro validate   # on the repaired data")
code = main(["validate", "--schema", schema, "--rules", rules,
             "--data", fixed_out])
print(f"(exit code {code}: clean)")
