"""Data cleaning with propagated CFDs (the paper's application 3).

Scenario: a downstream quality pipeline validates an integrated customer
view.  Propagation analysis tells us which constraints are *guaranteed*
by the sources (no need to check them — they cannot fail) and which must
be validated against the data.  We then run the validation on a dirty
instance and report violations tuple by tuple.

Run:  python examples/data_cleaning.py
"""

from repro import (
    CFD,
    ConstantRelation,
    DatabaseInstance,
    DatabaseSchema,
    FD,
    Product,
    RelationRef,
    RelationSchema,
    SPCUView,
    Union,
    propagates,
)

ATTRS = ["AC", "phn", "name", "street", "city", "zip"]
schema = DatabaseSchema([RelationSchema(f"R{i}", ATTRS) for i in (1, 2, 3)])


def tagged(relation, cc):
    return Product(ConstantRelation({"CC": cc}), RelationRef(relation))


view = SPCUView.from_expr(
    Union(Union(tagged("R1", "44"), tagged("R2", "01")), tagged("R3", "31")),
    schema,
    name="R",
)

sigma = [
    FD("R1", ("zip",), ("street",)),
    FD("R1", ("AC",), ("city",)),
    FD("R3", ("AC",), ("city",)),
    CFD("R1", {"AC": "20"}, {"city": "LDN"}),
    CFD("R3", {"AC": "20"}, {"city": "Amsterdam"}),
]

# The cleaning rules the business defines on the target schema.
rules = {
    "uk-zip-street": CFD("R", {"CC": "44", "zip": "_"}, {"street": "_"}),
    "uk-ac-city": CFD("R", {"CC": "44", "AC": "_"}, {"city": "_"}),
    "nl-ac-city": CFD("R", {"CC": "31", "AC": "_"}, {"city": "_"}),
    "uk-020-london": CFD("R", {"CC": "44", "AC": "20"}, {"city": "LDN"}),
    "phone-address": CFD.from_fd(
        FD("R", ("CC", "AC", "phn"), ("street", "city", "zip"))
    ),
}

print("Classifying cleaning rules by propagation analysis:")
must_validate = {}
for name, rule in rules.items():
    if propagates(sigma, view, rule):
        print(f"  guaranteed : {name} (propagated from the sources; skip)")
    else:
        print(f"  validate   : {name} (not guaranteed by the sources)")
        must_validate[name] = rule

# A dirty snapshot: the US feed reuses a phone number across two people.
dirty = DatabaseInstance(
    schema,
    {
        "R1": [
            dict(zip(ATTRS, ("20", "1234567", "Mike", "Portland", "LDN", "W1B 1JL"))),
        ],
        "R2": [
            dict(zip(ATTRS, ("610", "1234567", "Mary", "Walnut", "Darby", "19082"))),
            dict(zip(ATTRS, ("610", "1234567", "Maria", "Walnut St", "Darby", "19082"))),
        ],
        "R3": [
            dict(zip(ATTRS, ("20", "3456789", "Marx", "Kruise", "Amsterdam", "1096"))),
        ],
    },
)

print("\nValidating the remaining rules on the integrated view:")
view_data = view.evaluate(dirty)
clean = True
for name, rule in must_validate.items():
    for witness in rule.violations(view_data.rows):
        clean = False
        print(f"  VIOLATION of {name}:")
        for tup in witness:
            shown = {k: tup[k] for k in ("CC", "AC", "phn", "name", "street")}
            print(f"    {shown}")
if clean:
    print("  no violations found")

# The guaranteed rules really cannot fail on *any* source data — sample
# check on this snapshot:
for name, rule in rules.items():
    if name not in must_validate:
        assert view_data.satisfies(rule), f"guarantee broken for {name}!"
print("\nAll propagated (skipped) rules indeed hold on the snapshot.")
