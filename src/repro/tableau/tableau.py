"""Tableau representations of SPC views (appendix, Theorem 1/Corollary 2).

A tableau ``(Sum, T1, ..., Tm)`` consists of free tuples over the source
relations plus a summary of distinguished cells.  Every SPC expression has
an equivalent tableau computable in polynomial time; the propagation and
emptiness procedures all start by *materializing* a view's tableau into a
:class:`~repro.core.chase.SymbolicInstance` and chasing it.

``materialize_branch`` is that shared primitive: it adds one copy of the
view's free tuples (fresh variables per cell, selection condition applied
by constant binding / variable unification) to a symbolic instance and
returns the summary — the view-attribute -> cell mapping.  It returns
``None`` when the selection condition is contradictory, in which case the
branch can never produce tuples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..algebra.ops import AttrEq, ConstEq
from ..algebra.spc import SPCView
from ..core.chase import SymbolicInstance, Value, VarFactory


def materialize_branch(
    view: SPCView,
    instance: SymbolicInstance,
    factory: VarFactory,
) -> dict[str, Value] | None:
    """Add one derivation of *view* to *instance*; return its summary.

    The summary maps every *extended* view attribute (projected or not,
    constants of ``Rc`` included) to its cell — a variable or constant.
    Cells must be read back through ``instance.resolve`` after chasing.
    ``None`` signals an unsatisfiable selection condition.
    """
    if view.unsatisfiable:
        return None

    cells: dict[str, Value] = {}
    for atom in view.atoms:
        source_rel = view.source_schema.relation(atom.source)
        row: dict[str, Value] = {}
        for src, view_name in atom.mapping:
            var = factory.fresh(source_rel.domain_of(src))
            row[src] = var
            cells[view_name] = var
        instance.add_tuple(atom.source, row)

    for sel in view.selection:
        if isinstance(sel, ConstEq):
            if not instance.equate(cells[sel.attr], sel.value):
                return None
        else:
            assert isinstance(sel, AttrEq)
            if not instance.equate(cells[sel.left], cells[sel.right]):
                return None

    for attr, value in view.constants.items():
        cells[attr] = value
    return cells


@dataclass
class Tableau:
    """The expository tableau object: summary row plus free tuples.

    ``summary`` covers the projected view attributes only (the classical
    summary); ``tables`` holds the free tuples grouped by source relation.
    """

    summary: dict[str, Value]
    tables: dict[str, list[dict[str, Value]]]

    @classmethod
    def of_view(cls, view: SPCView) -> "Tableau":
        """Build the tableau of *view* (empty tableau for contradictory selections)."""
        instance = SymbolicInstance()
        factory = VarFactory()
        cells = materialize_branch(view, instance, factory)
        if cells is None:
            return cls(summary={}, tables={})
        summary = {
            attr: instance.resolve(cells[attr]) for attr in view.projection
        }
        tables = {
            rel: [instance.resolved_row(row) for row in rows]
            for rel, rows in instance.relations.items()
        }
        return cls(summary=summary, tables=tables)

    @property
    def is_empty_view(self) -> bool:
        """True when the view's selection was syntactically contradictory."""
        return not self.summary and not self.tables

    def variables(self) -> set[Any]:
        found: set[Any] = set()
        for rows in self.tables.values():
            for row in rows:
                for value in row.values():
                    if not isinstance(value, (str, int, float, bool)):
                        found.add(value)
        return found

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"Sum: {self.summary}"]
        for rel, rows in self.tables.items():
            parts.append(f"{rel}: {rows}")
        return "Tableau(" + "; ".join(parts) + ")"
