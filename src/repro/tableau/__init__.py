"""Tableaux for SPC views (appendix machinery)."""

from .tableau import Tableau, materialize_branch

__all__ = ["Tableau", "materialize_branch"]
