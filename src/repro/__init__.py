"""repro — reproduction of "Propagating Functional Dependencies with
Conditions" (Fan, Ma, Hu, Liu, Wu; VLDB 2008).

Public API highlights:

- :class:`repro.CFD`, :class:`repro.FD` — dependencies.
- :func:`repro.implies`, :func:`repro.min_cover`, :func:`repro.is_consistent`
  — dependency reasoning.
- :class:`repro.SPCView`, :class:`repro.SPCUView` and the expression nodes
  — views.
- :func:`repro.propagates`, :func:`repro.find_counterexample`,
  :func:`repro.view_is_empty` — propagation decision procedures.
- :func:`repro.prop_cfd_spc` — the PropCFD_SPC minimal-cover algorithm.
- :mod:`repro.api` — the unified service API: :class:`repro.Workspace`,
  :class:`repro.PropagationService`, typed requests
  (:class:`repro.CheckRequest`, :class:`repro.CoverRequest`, ...) with
  capability routing, the :class:`repro.ApiError` taxonomy, and the
  ``repro serve`` asyncio server (see ``docs/api.md``).
- :mod:`repro.generators` — the Section 5 workload generators.

The free functions :func:`repro.propagates`, :func:`repro.prop_cfd_spc`
and :func:`repro.prop_cfd_spcu` are deprecation shims over the service.
"""

from .algebra import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    DatabaseInstance,
    Difference,
    Product,
    Projection,
    Relation,
    RelationAtom,
    RelationRef,
    Renaming,
    SPCUView,
    SPCView,
    Selection,
    Union,
    classify,
    evaluate,
    operators,
)
from .core import (
    BOOL,
    CFD,
    Attribute,
    Const,
    DatabaseSchema,
    Domain,
    FD,
    INT,
    REAL,
    RelationSchema,
    SPECIAL,
    STRING,
    WILDCARD,
    attribute_closure,
    equivalent,
    fd_implies,
    finite,
    implies,
    is_consistent,
    min_cover,
    minimal_cover,
    witness_tuple,
)
from .propagation import (
    EngineStats,
    PropagationEngine,
    ThreeSat,
    find_counterexample,
    nonempty_witness,
    prop_cfd_spc,
    prop_cfd_spc_report,
    prop_cfd_spcu,
    propagates,
    propagates_ptime_chase,
    view_is_empty,
)
from .api import (
    ApiError,
    BatchRequest,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    PropagationService,
    Verdict,
    Workspace,
)

__version__ = "1.0.0"

__all__ = [
    "ApiError",
    "AttrEq",
    "Attribute",
    "BOOL",
    "BatchRequest",
    "CFD",
    "CheckRequest",
    "CoverRequest",
    "CoverResult",
    "EmptinessRequest",
    "EmptinessResult",
    "PropagationService",
    "Verdict",
    "Workspace",
    "Const",
    "ConstEq",
    "ConstantRelation",
    "DatabaseInstance",
    "DatabaseSchema",
    "Difference",
    "Domain",
    "EngineStats",
    "FD",
    "INT",
    "Product",
    "Projection",
    "PropagationEngine",
    "REAL",
    "Relation",
    "RelationAtom",
    "RelationRef",
    "RelationSchema",
    "Renaming",
    "SPCUView",
    "SPCView",
    "SPECIAL",
    "STRING",
    "Selection",
    "ThreeSat",
    "Union",
    "WILDCARD",
    "attribute_closure",
    "classify",
    "equivalent",
    "evaluate",
    "fd_implies",
    "find_counterexample",
    "finite",
    "implies",
    "is_consistent",
    "min_cover",
    "minimal_cover",
    "nonempty_witness",
    "operators",
    "prop_cfd_spc",
    "prop_cfd_spc_report",
    "prop_cfd_spcu",
    "propagates",
    "propagates_ptime_chase",
    "view_is_empty",
    "witness_tuple",
]
