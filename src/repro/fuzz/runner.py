"""Fuzz runs: generate, differentiate, shrink, persist, replay.

:func:`run_fuzz` is the engine behind ``repro fuzz`` and
``benchmarks/bench_fuzz.py``: it drives :func:`~repro.fuzz.cases.generate_case`
through one warm :class:`~repro.fuzz.oracle.MatrixHarness`, collects
every disagreement (matrix entries vs the uncached baseline, plus the
independent closure oracle on the FD-over-projection fragment), shrinks
each failing case with :func:`~repro.fuzz.shrink.shrink_case` under the
predicate "the same config/op still disagrees", and persists the shrunk
repro as a corpus file.  The report carries the run digest — the SHA-256
over the case-fingerprint sequence — so two runs of the same seed are
provably the same workload.

Corpus files (``tests/fuzz_corpus/*.json``) are self-contained::

    {"fingerprint": "...", "profile": "...", "note": "why this exists",
     "case": {schema, sigma, view, targets},
     "expected": {"check": "...", "cover": "...", "empty": "..."}}

``expected`` holds the baseline entry's *canonical* answers at commit
time.  :func:`replay_corpus` re-runs each file through the full matrix
and fails on (a) any matrix disagreement, (b) any closure-oracle
disagreement, or (c) baseline drift against ``expected`` — so a corpus
file keeps guarding both cross-config agreement and the absolute answer
it was committed with.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

import json

from .. import io as repro_io
from .cases import case_fingerprint, generate_case, run_digest
from .oracle import (
    BASELINE,
    Disagreement,
    MatrixHarness,
    closure_oracle_disagreements,
)
from .shrink import shrink_case

__all__ = [
    "CaseFailure",
    "FuzzReport",
    "harvest_corpus",
    "replay_corpus",
    "run_fuzz",
]

#: Repository-relative home of the replayable repro files.
CORPUS_DIR = Path("tests") / "fuzz_corpus"


@dataclass
class CaseFailure:
    """One failing case: where it diverged and its shrunk repro."""

    index: int
    profile: str
    fingerprint: str
    disagreements: list[Disagreement]
    shrunk: dict
    corpus_path: str | None = None

    def describe(self) -> str:
        lines = [
            f"case {self.index} [{self.profile}] {self.fingerprint[:12]}:"
        ]
        lines += [f"  {d.describe()}" for d in self.disagreements]
        if self.corpus_path:
            lines.append(f"  shrunk repro: {self.corpus_path}")
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """The outcome of one seeded run."""

    cases: int
    seed: int
    matrix: list[str]
    digest: str
    elapsed_s: float
    failures: list[CaseFailure] = field(default_factory=list)
    corner_hits: dict[str, int] = field(default_factory=dict)

    @property
    def cases_per_s(self) -> float:
        return self.cases / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_json(self) -> dict:
        return {
            "cases": self.cases,
            "seed": self.seed,
            "matrix": list(self.matrix),
            "digest": self.digest,
            "elapsed_s": self.elapsed_s,
            "cases_per_s": self.cases_per_s,
            "failures": len(self.failures),
            "corner_hits": dict(sorted(self.corner_hits.items())),
        }


def _still_failing(
    harness: MatrixHarness, signature: set[tuple[str, str]]
) -> Callable[[dict], bool]:
    """Predicate: the candidate reproduces one of the original
    ``(config, op)`` disagreements (matrix or closure oracle)."""

    def predicate(candidate: dict) -> bool:
        _, disagreements = harness.run_case(candidate)
        disagreements = list(disagreements) + closure_oracle_disagreements(
            candidate
        )
        return any((d.config, d.op) in signature for d in disagreements)

    return predicate


def _persist(corpus_dir: Path, failure: CaseFailure, note: str) -> str:
    corpus_dir.mkdir(parents=True, exist_ok=True)
    shrunk_fingerprint = case_fingerprint(failure.shrunk)
    path = corpus_dir / f"{failure.profile}-{shrunk_fingerprint[:12]}.json"
    repro_io.dump_json(
        {
            "fingerprint": shrunk_fingerprint,
            "profile": failure.profile,
            "note": note,
            "case": failure.shrunk,
            "disagreements": [d.describe() for d in failure.disagreements],
        },
        path,
    )
    return str(path)


def run_fuzz(
    num_cases: int,
    seed: int,
    *,
    matrix: Sequence[str] | None = None,
    corpus_dir: str | Path | None = None,
    shrink: bool = True,
    log: Callable[[str], None] | None = None,
) -> FuzzReport:
    """Run ``num_cases`` seeded cases through the differential matrix.

    ``corpus_dir`` (default: no persistence) receives one shrunk repro
    file per failing case; ``shrink=False`` persists the unshrunk case
    (useful when a harness bug, not an engine bug, is suspected).
    """
    started = time.perf_counter()
    fingerprints: list[str] = []
    corner_hits: dict[str, int] = {}
    failures: list[CaseFailure] = []
    with MatrixHarness(matrix) as harness:
        for index in range(num_cases):
            case = generate_case(seed, index)
            fingerprint = case_fingerprint(case)
            fingerprints.append(fingerprint)
            corner_hits[case["profile"]] = (
                corner_hits.get(case["profile"], 0) + 1
            )
            _, disagreements = harness.run_case(case)
            disagreements = list(disagreements)
            disagreements += closure_oracle_disagreements(case)
            if not disagreements:
                continue
            signature = {(d.config, d.op) for d in disagreements}
            shrunk = case
            if shrink:
                shrunk = shrink_case(
                    case, _still_failing(harness, signature)
                )
            failure = CaseFailure(
                index, case["profile"], fingerprint, disagreements, shrunk
            )
            if corpus_dir is not None:
                failure.corpus_path = _persist(
                    Path(corpus_dir),
                    failure,
                    f"disagreement found by `repro fuzz --seed {seed}` "
                    f"at case {index}",
                )
            failures.append(failure)
            if log is not None:
                log(failure.describe())
    return FuzzReport(
        cases=num_cases,
        seed=seed,
        matrix=_matrix_names(matrix),
        digest=run_digest(fingerprints),
        elapsed_s=time.perf_counter() - started,
        failures=failures,
        corner_hits=corner_hits,
    )


def _matrix_names(matrix: Sequence[str] | None) -> list[str]:
    from .oracle import BASELINE, DEFAULT_MATRIX

    names = list(matrix) if matrix else list(DEFAULT_MATRIX)
    if BASELINE not in names:
        names.insert(0, BASELINE)
    return [n for n in DEFAULT_MATRIX if n in names]


def _nontrivial(baseline: dict[str, str]) -> bool:
    """Whether a case's answers pin anything a trivial case would not:
    a non-propagated target, a nonempty cover, or an empty view."""
    check = json.loads(baseline["check"])
    cover = json.loads(baseline["cover"])
    empty = json.loads(baseline["empty"])
    if any(not verdict for verdict in check.get("propagated", [])):
        return True
    if cover.get("cover"):
        return True
    return bool(empty.get("empty"))


def harvest_corpus(
    num_cases: int,
    seed: int,
    corpus_dir: str | Path,
    *,
    matrix: Sequence[str] | None = None,
    per_profile: int = 1,
) -> list[str]:
    """Seed the corpus with shrunk, answer-pinning anchor cases.

    When a fuzz run surfaces *no* disagreements there is nothing to
    persist via :func:`run_fuzz`, yet the corpus should still anchor the
    behaviors the run covered.  This scans the same seeded case stream,
    picks the first ``per_profile`` nontrivial agreeing cases of every
    profile, shrinks each under the predicate "the baseline's canonical
    answers are unchanged" (so reductions strip noise but never alter
    what the case pins), and writes corpus files whose ``expected``
    block freezes those answers for replay.
    """
    written: list[str] = []
    target = Path(corpus_dir)
    with MatrixHarness(matrix) as harness:
        chosen: dict[str, int] = {}
        for index in range(num_cases):
            case = generate_case(seed, index)
            profile = case["profile"]
            if chosen.get(profile, 0) >= per_profile:
                continue
            results, disagreements = harness.run_case(case)
            if disagreements or closure_oracle_disagreements(case):
                continue  # failing cases belong to run_fuzz's corpus path
            baseline = results[BASELINE]
            # The empty-projection corner never looks "nontrivial" (no
            # targets, empty cover) — the degenerate shape itself is
            # what the anchor pins.
            if profile != "empty-projection" and not _nontrivial(baseline):
                continue

            def unchanged(candidate: dict) -> bool:
                return harness.baseline_results(candidate) == baseline

            shrunk = shrink_case(case, unchanged)
            _, still_disagrees = harness.run_case(shrunk)
            if still_disagrees or closure_oracle_disagreements(shrunk):
                # Shrinking must not manufacture a disagreement the full
                # case did not have; keep the unshrunk case if it did.
                shrunk = case
            fingerprint = case_fingerprint(shrunk)
            path = target / f"{profile}-{fingerprint[:12]}.json"
            target.mkdir(parents=True, exist_ok=True)
            repro_io.dump_json(
                {
                    "fingerprint": fingerprint,
                    "profile": profile,
                    "note": (
                        f"answer-pinning anchor harvested from "
                        f"`repro fuzz --seed {seed}` case {index}; shrunk "
                        f"preserving the baseline's canonical answers"
                    ),
                    "case": shrunk,
                    "expected": harness.baseline_results(shrunk),
                },
                path,
            )
            chosen[profile] = chosen.get(profile, 0) + 1
            written.append(str(path))
    return written


def replay_corpus(
    paths: Sequence[str | Path],
    *,
    matrix: Sequence[str] | None = None,
    harness: MatrixHarness | None = None,
) -> list[str]:
    """Replay corpus files through the matrix; returns failure messages.

    An empty list means every file replayed green: full cross-config
    agreement, closure-oracle agreement, and baseline answers matching
    the file's committed ``expected`` block (when present).
    """
    problems: list[str] = []
    owned = harness is None
    if harness is None:
        harness = MatrixHarness(matrix)
    try:
        for path in paths:
            doc = repro_io.load_json(path)
            case = doc["case"]
            name = Path(path).name
            results, disagreements = harness.run_case(case)
            for d in disagreements:
                problems.append(f"{name}: {d.describe()}")
            for d in closure_oracle_disagreements(case):
                problems.append(f"{name}: {d.describe()}")
            expected = doc.get("expected")
            if expected:
                baseline = results["baseline"]
                for op, want in expected.items():
                    got = baseline.get(op)
                    if got != want:
                        problems.append(
                            f"{name}: baseline/{op} drifted: expected "
                            f"{want}, got {got}"
                        )
    finally:
        if owned:
            harness.close()
    return problems
