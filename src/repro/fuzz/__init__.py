"""Seeded property-based differential fuzzing (``repro fuzz``).

The correctness-tooling subsystem ROADMAP item 5(b) called for: random
(schema, Sigma, view, targets) workloads from the Section-5 generators
are answered by every execution path the system has grown — engine
settings (cache on/off, ``jobs``, shard plans including per-
``shard_index`` AND-recombination) and service endpoints (``local://``,
``tcp://``, ``http://``, a shard-worker fleet behind
:class:`~repro.api.orchestrator.ShardOrchestrator`, a
:class:`~repro.api.orchestrator.ReplicaSet`) — and every answer must be
byte-identical to the uncached local baseline.  Failing cases shrink to
minimal replayable JSON repro files under ``tests/fuzz_corpus/``, which
``tests/test_fuzz_corpus.py`` replays as tier-1 regression tests.

Layering::

    cases    seeded case generation over corner profiles; fingerprints
    oracle   the configuration matrix + canonical result comparison
    shrink   deterministic, monotone case minimization
    runner   run orchestration, corpus persistence, corpus replay

See ``docs/fuzzing.md`` for the workflow.
"""

from .cases import PROFILES, case_fingerprint, generate_case, parse_case, run_digest
from .oracle import (
    BASELINE,
    DEFAULT_MATRIX,
    Disagreement,
    MatrixHarness,
    closure_oracle_disagreements,
)
from .runner import CaseFailure, FuzzReport, replay_corpus, run_fuzz
from .shrink import case_size, shrink_case

__all__ = [
    "BASELINE",
    "CaseFailure",
    "DEFAULT_MATRIX",
    "Disagreement",
    "FuzzReport",
    "MatrixHarness",
    "PROFILES",
    "case_fingerprint",
    "case_size",
    "closure_oracle_disagreements",
    "generate_case",
    "parse_case",
    "replay_corpus",
    "run_digest",
    "run_fuzz",
    "shrink_case",
]
