"""The differential oracle: one case, every configuration, one answer.

:class:`MatrixHarness` owns one long-lived runner per matrix entry —
warm local services for the engine-settings axes, background TCP/HTTP
endpoints, a two-worker :class:`~repro.api.orchestrator.ShardOrchestrator`
over ``shard_worker`` servers and a :class:`~repro.api.orchestrator.ReplicaSet`
— and runs each case's check/cover/emptiness requests through all of
them.  Results are *canonicalized* (verdict lists, covers as sorted
canonical-JSON dependency documents, emptiness booleans; typed
:class:`~repro.api.ApiError` failures collapse to their taxonomy kind)
so agreement is byte-level string equality and never depends on
transport framing or response field order.

The reference entry is ``baseline``: an uncached local service, i.e. the
plain single-query procedures of :mod:`repro.propagation` with no memo,
no parallelism and no shard plan.  Every other entry must match it
exactly.  On top of the differential matrix,
:func:`closure_oracle_disagreements` checks the FD-over-projection
fragment against the *independent* textbook closure baseline
(:mod:`repro.propagation.closure_baseline`) — semantic cover equivalence
via :func:`repro.core.fd.equivalent`, since minimal covers are unique
only up to FD-theory equality.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Sequence

from .. import io as repro_io
from ..api import (
    ApiError,
    CheckRequest,
    CoverRequest,
    EmptinessRequest,
    PropagationService,
    UpdateSigmaRequest,
)
from ..api.client import connect
from ..api.orchestrator import ReplicaSet, ShardOrchestrator
from ..api.server import background_server
from ..core.fd import FD, equivalent, implies
from ..core.values import is_wildcard
from ..propagation.closure_baseline import closure_projection_cover
from .cases import is_fd_projection_case, parse_case

__all__ = [
    "BASELINE",
    "DEFAULT_MATRIX",
    "Disagreement",
    "MatrixHarness",
    "closure_oracle_disagreements",
]

#: The reference configuration every other entry must agree with.
BASELINE = "baseline"

#: Every matrix entry, in evaluation order.
DEFAULT_MATRIX = (
    BASELINE,
    "cache",
    "kernel",
    "store",
    "delta",
    "jobs2",
    "shards4",
    "shard-recombine",
    "tcp",
    "http",
    "orchestrator",
    "replicas",
)

_ALL_OPS = ("check", "cover", "empty")


@dataclass(frozen=True)
class Disagreement:
    """One configuration answering one op differently from the baseline."""

    config: str
    op: str
    expected: str
    actual: str

    def describe(self) -> str:
        return (
            f"{self.config}/{self.op}: expected {self.expected}, "
            f"got {self.actual}"
        )


def _canonical(value: Any) -> str:
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _canonical_cover(cover) -> str:
    docs = sorted(
        _canonical(repro_io.dependency_to_json(dep)) for dep in cover
    )
    return _canonical({"cover": docs})


class _Runner:
    """One matrix entry: typed requests against one execution path."""

    ops: Sequence[str] = _ALL_OPS

    def prepare(self, case: dict) -> None:
        """Per-case setup (endpoint entries register the case schema)."""

    def check(self, view, sigma, targets) -> str:
        raise NotImplementedError

    def cover(self, view, sigma) -> str:
        raise NotImplementedError

    def empty(self, view, sigma) -> str:
        raise NotImplementedError

    def close(self) -> None:
        pass


class _ServiceRunner(_Runner):
    """A warm local :class:`PropagationService` with fixed settings."""

    def __init__(self, **service_options) -> None:
        self.service = PropagationService(**service_options)

    def check(self, view, sigma, targets) -> str:
        verdict = self.service.check(
            CheckRequest(view=view, targets=targets, sigma=sigma)
        )
        return _canonical({"propagated": list(verdict.propagated)})

    def cover(self, view, sigma) -> str:
        result = self.service.cover(CoverRequest(view=view, sigma=sigma))
        return _canonical_cover(result.cover)

    def empty(self, view, sigma) -> str:
        result = self.service.emptiness(
            EmptinessRequest(view=view, sigma=sigma)
        )
        return _canonical({"empty": bool(result.empty)})

    def close(self) -> None:
        self.service.close()


class _ShardRecombineRunner(_ServiceRunner):
    """Per-``shard_index`` partial verdicts ANDed back into full answers.

    The distributed-seam contract: a ``shard_index=i`` verdict means "no
    violation within shard ``i`` of the ``shards``-way plan", so the AND
    over all indices must equal the single-engine verdict.  Covers are
    not shard-combinable (a partial engine refuses them), so this entry
    checks only.
    """

    ops = ("check",)

    def __init__(self, shards: int = 4) -> None:
        super().__init__()
        self.shards = shards

    def check(self, view, sigma, targets) -> str:
        combined = [True] * len(list(targets))
        for index in range(self.shards):
            verdict = self.service.check(
                CheckRequest(
                    view=view,
                    targets=targets,
                    sigma=sigma,
                    shards=self.shards,
                    shard_index=index,
                )
            )
            combined = [
                acc and bool(part)
                for acc, part in zip(combined, verdict.propagated)
            ]
        return _canonical({"propagated": combined})


class _DeltaRunner(_Runner):
    """The delta-aware recompute paths under a mid-stream Sigma edit.

    Per op this entry perturbs the case: it *adds* a fresh CFD on a
    relation the view reads via ``delta_sigma`` (driving the selective
    invalidation, the pair memo, the branch-cover memo and the cover
    seeds of one long-lived warm service), answers under the edited
    Sigma, and differentially compares that answer to a fresh **cold**
    service built on the same edited set — the byte-identity contract
    of the delta path.  A divergence poisons the returned string so it
    surfaces as an ordinary matrix disagreement.  The edit is then
    reverted (again via ``delta_sigma``) and the op re-answered under
    the restored Sigma; that answer is what the baseline comparison
    sees, so this entry also proves edit+revert round-trips to the
    original answers.
    """

    def __init__(self) -> None:
        self.service = PropagationService(use_cache=True)

    def prepare(self, case: dict) -> None:
        schema, sigma, view, _ = parse_case(case)
        self._schema = schema
        self.service.workspace.add_schema("default", schema)
        self.service.workspace.add_sigma("default", list(sigma))
        self._edit = self._novel_edit(schema, sigma, view)

    @staticmethod
    def _novel_edit(schema, sigma, view):
        """A CFD guaranteed absent from Sigma, on a relation the view
        reads (so the edit actually invalidates the case's warm lines)
        and with constants outside the case's value space (so the revert
        removes the edit and nothing else)."""
        from ..core.cfd import CFD
        from ..propagation.check import _as_cfds
        from ..propagation.engine import touched_relations

        relation = sorted(touched_relations(view))[0]
        attrs = list(schema.relation(relation).attribute_names)
        present = {frozenset(_as_cfds([dep])) for dep in sigma}
        constant = 999983
        while True:
            edit = CFD(
                relation,
                {attrs[0]: str(constant)},
                {attrs[-1]: str(constant + 4)},
            )
            if frozenset(_as_cfds([edit])) not in present:
                return edit
            constant += 1

    def _differential(self, run) -> str:
        """Edit, answer warm, compare to cold, revert; the restored
        answer (or the poisoned mismatch report) comes back."""
        self.service.delta_sigma(UpdateSigmaRequest(add=[self._edit]))
        warm = run(self.service)
        edited = list(self.service.workspace.sigma("default"))
        with PropagationService(use_cache=False) as cold:
            cold.workspace.add_schema("default", self._schema)
            cold.workspace.add_sigma("default", edited)
            expected = run(cold)
        self.service.delta_sigma(UpdateSigmaRequest(remove=[self._edit]))
        if warm != expected:
            return _canonical(
                {"delta-mismatch": {"warm": warm, "cold": expected}}
            )
        return run(self.service)

    def check(self, view, sigma, targets) -> str:
        def run(service):
            verdict = service.check(
                CheckRequest(view=view, targets=targets, sigma="default")
            )
            return _canonical({"propagated": list(verdict.propagated)})

        return self._differential(run)

    def cover(self, view, sigma) -> str:
        def run(service):
            result = service.cover(CoverRequest(view=view, sigma="default"))
            return _canonical_cover(result.cover)

        return self._differential(run)

    def empty(self, view, sigma) -> str:
        def run(service):
            result = service.emptiness(
                EmptinessRequest(view=view, sigma="default")
            )
            return _canonical({"empty": bool(result.empty)})

        return self._differential(run)

    def close(self) -> None:
        self.service.close()


class _ClientRunner(_Runner):
    """A typed client over a wire endpoint (``tcp://`` / ``http://``).

    Views and Sigma travel inline in every request; inline views parse
    against the endpoint's ``"default"`` schema registration, which
    :meth:`prepare` re-registers per case.
    """

    def __init__(self, client) -> None:
        self.client = client

    def prepare(self, case: dict) -> None:
        self.client.register_schema("default", case["schema"])

    def check(self, view, sigma, targets) -> str:
        verdict = self.client.check(
            CheckRequest(view=view, targets=targets, sigma=sigma)
        )
        return _canonical({"propagated": list(verdict.propagated)})

    def cover(self, view, sigma) -> str:
        result = self.client.cover(CoverRequest(view=view, sigma=sigma))
        return _canonical_cover(result.cover)

    def empty(self, view, sigma) -> str:
        result = self.client.emptiness(
            EmptinessRequest(view=view, sigma=sigma)
        )
        return _canonical({"empty": bool(result.empty)})

    def close(self) -> None:
        self.client.close()


class _OrchestratorRunner(_Runner):
    """A shard fleet: partial verdicts recombined *across endpoints*.

    Covers are refused by design (not shard-combinable) and emptiness is
    not part of the orchestrator surface, so this entry checks only.
    """

    ops = ("check",)

    def __init__(self, orchestrator: ShardOrchestrator) -> None:
        self.orchestrator = orchestrator

    def prepare(self, case: dict) -> None:
        self.orchestrator.register_schema("default", case["schema"])

    def check(self, view, sigma, targets) -> str:
        verdict = self.orchestrator.check(
            CheckRequest(view=view, targets=targets, sigma=sigma)
        )
        return _canonical({"propagated": list(verdict.propagated)})

    def close(self) -> None:
        self.orchestrator.close()


class _ReplicaRunner(_Runner):
    """A :class:`ReplicaSet` load-balancing over full-verdict endpoints."""

    def __init__(self, replicas: ReplicaSet) -> None:
        self.replicas = replicas

    def prepare(self, case: dict) -> None:
        self.replicas.register_schema("default", case["schema"])

    def check(self, view, sigma, targets) -> str:
        verdict = self.replicas.check(
            CheckRequest(view=view, targets=targets, sigma=sigma)
        )
        return _canonical({"propagated": list(verdict.propagated)})

    def cover(self, view, sigma) -> str:
        result = self.replicas.cover(CoverRequest(view=view, sigma=sigma))
        return _canonical_cover(result.cover)

    def empty(self, view, sigma) -> str:
        result = self.replicas.emptiness(
            EmptinessRequest(view=view, sigma=sigma)
        )
        return _canonical({"empty": bool(result.empty)})

    def close(self) -> None:
        self.replicas.close()


class MatrixHarness:
    """Every requested matrix entry, built once and kept warm for a run."""

    def __init__(self, matrix: Sequence[str] | None = None) -> None:
        names = list(matrix) if matrix else list(DEFAULT_MATRIX)
        if BASELINE not in names:
            names.insert(0, BASELINE)
        unknown = sorted(set(names) - set(DEFAULT_MATRIX))
        if unknown:
            raise ValueError(
                f"unknown matrix entries {unknown}; "
                f"known entries are {sorted(DEFAULT_MATRIX)}"
            )
        # Evaluation order is the canonical DEFAULT_MATRIX order so a
        # subset matrix still reports deterministically.
        self.names = [n for n in DEFAULT_MATRIX if n in names]
        self._runners: dict[str, _Runner] = {}
        self._contexts: list = []
        try:
            self._build()
        except BaseException:
            self.close()
            raise

    def _endpoint(self, transport: str, **server_options) -> str:
        """Start a background endpoint whose lifetime matches the harness."""
        service = PropagationService()
        self._contexts.append(service)
        context = background_server(service, transport, **server_options)
        url = context.__enter__()
        self._contexts.append(context)
        return url

    def _build(self) -> None:
        wanted = set(self.names)
        runners = self._runners
        if BASELINE in wanted:
            runners[BASELINE] = _ServiceRunner(use_cache=False)
        if "cache" in wanted:
            runners["cache"] = _ServiceRunner(use_cache=True)
        if "kernel" in wanted:
            # The packed chase kernel, pinned explicitly so the entry
            # exercises it even when REPRO_KERNEL=baseline (the CI
            # matrix sets exactly that to flip the roles: the *other*
            # entries then run the baseline kernel and this one stays
            # the packed side of the differential).
            runners["kernel"] = _ServiceRunner(use_cache=True, kernel="bitset")
        if "store" in wanted:
            # A fleet-shared network store behind the cached service: the
            # persistent tier answers over the store:// wire, so payload
            # encode/decode and single-flight promotion are in the loop.
            from ..store.memory import MemoryStore
            from ..store.server import background_store_server

            context = background_store_server(MemoryStore())
            store_url = context.__enter__()
            self._contexts.append(context)
            runners["store"] = _ServiceRunner(store_url=store_url)
        if "delta" in wanted:
            runners["delta"] = _DeltaRunner()
        if "jobs2" in wanted:
            runners["jobs2"] = _ServiceRunner(jobs=2)
        if "shards4" in wanted:
            runners["shards4"] = _ServiceRunner(shards=4)
        if "shard-recombine" in wanted:
            runners["shard-recombine"] = _ShardRecombineRunner(shards=4)
        tcp_url = http_url = None
        if wanted & {"tcp", "replicas"}:
            tcp_url = self._endpoint("tcp")
        if wanted & {"http", "replicas"}:
            http_url = self._endpoint("http")
        if "tcp" in wanted:
            runners["tcp"] = _ClientRunner(connect(tcp_url))
        if "http" in wanted:
            runners["http"] = _ClientRunner(connect(http_url))
        if "orchestrator" in wanted:
            workers = [
                self._endpoint("tcp", shard_worker=True) for _ in range(2)
            ]
            runners["orchestrator"] = _OrchestratorRunner(
                ShardOrchestrator(workers)
            )
        if "replicas" in wanted:
            runners["replicas"] = _ReplicaRunner(
                ReplicaSet([tcp_url, http_url])
            )

    # ------------------------------------------------------------------
    # Case evaluation.
    # ------------------------------------------------------------------

    @staticmethod
    def _run_op(runner: _Runner, op: str, view, sigma, targets) -> str:
        try:
            if op == "check":
                return runner.check(view, sigma, targets)
            if op == "cover":
                return runner.cover(view, sigma)
            return runner.empty(view, sigma)
        except ApiError as exc:
            return _canonical({"error": exc.kind})

    def run_case(self, case: dict) -> tuple[dict, list[Disagreement]]:
        """Run one case through every entry.

        Returns ``(results, disagreements)`` where ``results`` maps
        ``config -> op -> canonical string`` (ops an entry does not
        serve are absent) and ``disagreements`` lists every non-baseline
        answer that differs from the baseline's for the same op.
        """
        schema, sigma, view, targets = parse_case(case)
        results: dict[str, dict[str, str]] = {}
        for name in self.names:
            runner = self._runners[name]
            runner.prepare(case)
            results[name] = {
                op: self._run_op(runner, op, view, sigma, targets)
                for op in runner.ops
            }
        reference = results[BASELINE]
        disagreements = [
            Disagreement(name, op, reference[op], answer)
            for name in self.names
            if name != BASELINE
            for op, answer in results[name].items()
            if op in reference and answer != reference[op]
        ]
        return results, disagreements

    def baseline_results(self, case: dict) -> dict[str, str]:
        """The baseline entry's canonical answers alone (corpus replay)."""
        schema, sigma, view, targets = parse_case(case)
        runner = self._runners[BASELINE]
        runner.prepare(case)
        return {
            op: self._run_op(runner, op, view, sigma, targets)
            for op in runner.ops
        }

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        for runner in self._runners.values():
            try:
                runner.close()
            except Exception:
                pass
        self._runners = {}
        # Unwind endpoints after the clients/fleets that talk to them.
        for context in reversed(self._contexts):
            try:
                if hasattr(context, "__exit__"):
                    context.__exit__(None, None, None)
                else:
                    context.close()
            except Exception:
                pass
        self._contexts = []

    def __enter__(self) -> "MatrixHarness":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# The independent closure-baseline oracle (FD-over-projection fragment).
# ----------------------------------------------------------------------


def closure_oracle_disagreements(case: dict) -> list[Disagreement]:
    """Check an FD-over-projection case against the textbook baseline.

    Applies only to cases :func:`~repro.fuzz.cases.is_fd_projection_case`
    recognizes; returns ``[]`` for everything else.  The baseline entry's
    answers are recomputed here (uncached service) rather than threaded
    through, so this oracle is self-contained for corpus replay.
    """
    if not is_fd_projection_case(case):
        return []
    schema, sigma, view, targets = parse_case(case)
    atom = view.atoms[0]
    mapping = atom.mapping_dict
    renamed = [
        FD(
            view.name,
            tuple(mapping[a] for a in dep.lhs),
            tuple(mapping[a] for a in dep.rhs),
        )
        for dep in sigma
    ]
    attrs = list(view.es_attributes())
    expected_cover = closure_projection_cover(
        renamed, view.name, attrs, view.projection
    )

    out: list[Disagreement] = []
    with PropagationService(use_cache=False) as service:
        verdict = service.check(
            CheckRequest(view=view, targets=targets, sigma=sigma)
        )
        for phi, got in zip(targets, verdict.propagated):
            want = implies(expected_cover, FD(view.name, phi.lhs, phi.rhs))
            if bool(got) != want:
                out.append(
                    Disagreement(
                        "closure-oracle", "check", str(want), str(bool(got))
                    )
                )
        cover = service.cover(CoverRequest(view=view, sigma=sigma)).cover
        if all(
            all(is_wildcard(e) for _, e in phi.lhs + phi.rhs) for phi in cover
        ):
            engine_fds = [
                FD(view.name, phi.lhs_attrs, phi.rhs_attrs) for phi in cover
            ]
            if not equivalent(engine_fds, expected_cover):
                out.append(
                    Disagreement(
                        "closure-oracle",
                        "cover",
                        _canonical_cover(expected_cover),
                        _canonical_cover(cover),
                    )
                )
        else:
            out.append(
                Disagreement(
                    "closure-oracle",
                    "cover",
                    "all-wildcard (plain-FD) cover",
                    _canonical_cover(cover),
                )
            )
        empty = service.emptiness(
            EmptinessRequest(view=view, sigma=sigma)
        ).empty
        # A selection-free, constant-free projection view over FD-only
        # sources always admits a nonempty satisfying instance.
        if empty:
            out.append(
                Disagreement("closure-oracle", "empty", "False", "True")
            )
    return out
