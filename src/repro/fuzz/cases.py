"""Seeded case generation for the differential fuzzer.

A *case* is a plain JSON document — schema, Sigma, view and check
targets in the :mod:`repro.io` wire format plus the profile tag that
generated it — so every case is replayable byte-for-byte from its file
alone, with no reference to generator code or seeds.  Case identity is
the SHA-256 fingerprint of the canonical serialization; a fuzz run's
identity is the digest of its fingerprint sequence, which is how
``repro fuzz`` proves that re-running a seed reproduces the same cases.

Generation is profile-driven: ``PROFILES[index % len(PROFILES)]`` picks
the corner family and :func:`repro.generators.case_rng` derives one
private random stream per ``(run seed, case index)`` pair, so neither
the profile rotation nor any case's content depends on global
:mod:`random` state or on how many cases ran before it.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Iterable

from .. import io as repro_io
from ..core.cfd import CFD
from ..core.fd import FD
from ..core.values import WILDCARD
from ..generators import (
    case_rng,
    random_cfds,
    random_schema,
    random_spc_view,
    random_spcu_view,
)

__all__ = [
    "PROFILES",
    "case_fingerprint",
    "generate_case",
    "parse_case",
    "run_digest",
]

#: Constants for view-level target patterns: a small pool so targets
#: collide with the selection/Sigma constants often enough to matter.
_TARGET_POOL = ("1", "2", "3", "7")


def _small_schema(rng: random.Random, num_relations: int = 3):
    return random_schema(
        rng, num_relations=num_relations, min_attributes=3, max_attributes=5
    )


def _random_fds(rng: random.Random, relation) -> list[FD]:
    """FD-only Sigma in the shape of the closure-baseline fragment."""
    names = list(relation.attribute_names)
    fds = []
    for _ in range(len(names)):
        lhs = rng.sample(names, rng.randint(1, 2))
        rhs = rng.choice([a for a in names if a not in lhs])
        fds.append(FD(relation.name, lhs, (rhs,)))
    return fds


def _random_targets(
    rng: random.Random, view, count: int, fd_only: bool = False
) -> list[FD | CFD]:
    """Check targets over the view's projected attributes."""
    projection = list(view.projection)
    if len(projection) < 2:
        return []
    targets: list[FD | CFD] = []
    for _ in range(count):
        width = rng.randint(1, min(2, len(projection) - 1))
        chosen = rng.sample(projection, width + 1)
        lhs_attrs, rhs_attr = chosen[:-1], chosen[-1]
        if fd_only or rng.random() < 0.5:
            targets.append(FD(view.name, tuple(lhs_attrs), (rhs_attr,)))
            continue
        lhs = {
            a: (WILDCARD if rng.random() < 0.6 else rng.choice(_TARGET_POOL))
            for a in lhs_attrs
        }
        rhs = WILDCARD if rng.random() < 0.6 else rng.choice(_TARGET_POOL)
        targets.append(CFD(view.name, lhs, {rhs_attr: rhs}))
    return targets


# ----------------------------------------------------------------------
# Profiles: one builder per corner family, rotated round-robin.
# ----------------------------------------------------------------------


def _spc_mixed(rng: random.Random) -> tuple:
    schema = _small_schema(rng)
    sigma = random_cfds(rng, schema, 5, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spc_view(
        rng, schema, num_projected=4, num_selections=2, num_atoms=2
    )
    return schema, sigma, view, _random_targets(rng, view, 2)


def _fd_projection(rng: random.Random) -> tuple:
    """The closure-baseline fragment: FD sources, projection-only view."""
    schema = random_schema(
        rng, num_relations=1, min_attributes=5, max_attributes=7
    )
    relation = next(iter(schema))
    sigma = _random_fds(rng, relation)
    view = random_spc_view(
        rng,
        schema,
        num_projected=len(relation.attributes) - 2,
        num_selections=0,
        num_atoms=1,
    )
    return schema, sigma, view, _random_targets(rng, view, 3, fd_only=True)


def _empty_projection(rng: random.Random) -> tuple:
    schema = _small_schema(rng)
    sigma = random_cfds(rng, schema, 4, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spc_view(
        rng, schema, num_projected=0, num_selections=2, num_atoms=2
    )
    return schema, sigma, view, []


def _union_single(rng: random.Random) -> tuple:
    schema = _small_schema(rng)
    sigma = random_cfds(rng, schema, 4, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spcu_view(
        rng, schema, num_branches=1, num_projected=3, num_selections=1,
        num_atoms=2,
    )
    return schema, sigma, view, _random_targets(rng, view, 2)


def _union_identical(rng: random.Random) -> tuple:
    schema = _small_schema(rng)
    sigma = random_cfds(rng, schema, 4, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spcu_view(
        rng, schema, num_branches=3, num_projected=3, num_selections=1,
        num_atoms=1, identical_branches=True,
    )
    return schema, sigma, view, _random_targets(rng, view, 2)


def _union_mixed(rng: random.Random) -> tuple:
    schema = _small_schema(rng)
    sigma = random_cfds(rng, schema, 5, max_lhs=2, min_lhs=1, var_pct=0.5)
    view = random_spcu_view(
        rng, schema, num_branches=2, num_projected=3, num_selections=1,
        num_atoms=1,
    )
    return schema, sigma, view, _random_targets(rng, view, 2)


def _constant_lhs(rng: random.Random) -> tuple:
    schema = _small_schema(rng)
    sigma = random_cfds(
        rng, schema, 4, max_lhs=2, min_lhs=1, var_pct=0.4, constant_lhs=True
    )
    view = random_spc_view(
        rng, schema, num_projected=4, num_selections=1, num_atoms=2
    )
    return schema, sigma, view, _random_targets(rng, view, 2)


def _wide_lhs(rng: random.Random) -> tuple:
    """LHS width clamps to arity-1: the widest CFDs the schema admits."""
    schema = _small_schema(rng)
    sigma = random_cfds(rng, schema, 4, max_lhs=9, min_lhs=3, var_pct=0.5)
    view = random_spc_view(
        rng, schema, num_projected=5, num_selections=1, num_atoms=2
    )
    return schema, sigma, view, _random_targets(rng, view, 2)


#: Ordered profile table; ``index % len(PROFILES)`` picks the builder.
PROFILES: dict[str, Any] = {
    "spc-mixed": _spc_mixed,
    "fd-projection": _fd_projection,
    "empty-projection": _empty_projection,
    "union-single": _union_single,
    "union-identical": _union_identical,
    "union-mixed": _union_mixed,
    "constant-lhs": _constant_lhs,
    "wide-lhs": _wide_lhs,
}


# ----------------------------------------------------------------------
# Case documents.
# ----------------------------------------------------------------------


def generate_case(seed: int, index: int) -> dict:
    """Case *index* of the run seeded *seed*, as a replayable document."""
    names = list(PROFILES)
    profile = names[index % len(names)]
    rng = case_rng(seed, index)
    schema, sigma, view, targets = PROFILES[profile](rng)
    return {
        "profile": profile,
        "schema": repro_io.schema_to_json(schema),
        "sigma": repro_io.dependencies_to_json(sigma),
        "view": repro_io.view_to_json(view),
        "targets": repro_io.dependencies_to_json(targets),
    }


def parse_case(case: dict) -> tuple:
    """``(schema, sigma, view, targets)`` objects of a case document.

    Raises (:class:`repro.io.FormatError` or a validation error from the
    algebra layer) on malformed documents — the shrinker uses that as
    its candidate-validity check.
    """
    schema = repro_io.schema_from_json(case["schema"])
    sigma = repro_io.dependencies_from_json(case["sigma"])
    view = repro_io.view_from_json(case["view"], schema)
    targets = repro_io.dependencies_from_json(case["targets"])
    return schema, sigma, view, targets


def case_fingerprint(case: dict) -> str:
    """SHA-256 of the canonical serialization (case identity)."""
    canonical = json.dumps(case, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_digest(fingerprints: Iterable[str]) -> str:
    """One digest over a whole run's fingerprint sequence, in order."""
    joined = "\n".join(fingerprints)
    return hashlib.sha256(joined.encode()).hexdigest()


def is_union_case(case: dict) -> bool:
    """Whether the case's view document is an SPCU branch list."""
    return "branches" in case["view"]


def is_fd_projection_case(case: dict) -> bool:
    """Whether the independent closure-baseline oracle decides this case.

    Structural, not profile-tag-based, so shrunk corpus files keep their
    oracle even after edits: FD-only Sigma and FD-only targets over a
    single-atom, selection-free, constant-free SPC view.
    """
    view = case["view"]
    if "branches" in view:
        return False
    if view.get("selection") or view.get("constants"):
        return False
    if len(view.get("atoms", ())) != 1:
        return False
    deps = list(case["sigma"]) + list(case["targets"])
    return all(dep.get("kind") == "fd" for dep in deps)
