"""Deterministic case minimization for failing fuzz cases.

:func:`shrink_case` greedily reduces a failing case document while a
caller-supplied predicate (``still_failing``) keeps returning ``True``.
Reduction passes run in a fixed order — drop a Sigma dependency, drop a
check target, drop a union branch, drop a selection atom, drop a
projection column (from *every* branch, preserving union
compatibility), narrow one dependency's LHS by one attribute, drop an
unreferenced schema relation — and each candidate is strictly smaller
under :func:`case_size`, so shrinking is

- **deterministic**: candidates are enumerated in document order with
  no randomness, so the same input and predicate always shrink to the
  same output;
- **monotone**: every accepted step strictly decreases ``case_size``,
  so the loop terminates and the result is never larger than the input;
- **failure-preserving**: a candidate is accepted only when it still
  parses (:func:`~repro.fuzz.cases.parse_case`) *and* the predicate
  still holds, so the shrunk case exhibits the original disagreement.

Candidates are plain deep-copied JSON documents — the shrinker never
mutates its input, and the output is directly persistable as a corpus
file.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from .cases import parse_case

__all__ = ["case_size", "shrink_case"]


def case_size(case: dict) -> int:
    """The size metric shrinking strictly decreases.

    Counts every droppable element: schema relations and attributes,
    Sigma dependencies and their LHS entries, view branches, selection
    atoms and projection columns, targets and their LHS entries.
    """
    size = 0
    for relation in case["schema"].get("relations", []):
        size += 1 + len(relation.get("attributes", []))
    for dep in list(case["sigma"]) + list(case["targets"]):
        size += 1 + len(dep.get("lhs", ()))
    for branch in _branches(case["view"]):
        size += 1
        size += len(branch.get("selection", []))
        size += len(branch.get("projection", []))
    return size


def _branches(view_doc: dict) -> list[dict]:
    if "branches" in view_doc:
        return list(view_doc["branches"])
    return [view_doc]


def _replace(case: dict, **parts) -> dict:
    out = copy.deepcopy(case)
    out.update(copy.deepcopy(parts))
    return out


def _drop_index(items: list, index: int) -> list:
    return [item for i, item in enumerate(items) if i != index]


def _narrowed(dep: dict, key_index: int) -> dict | None:
    """*dep* with one LHS entry removed, or ``None`` if not narrowable."""
    out = copy.deepcopy(dep)
    lhs = out.get("lhs")
    if isinstance(lhs, dict):
        if len(lhs) < 1:
            return None
        keys = sorted(lhs)
        if key_index >= len(keys):
            return None
        del lhs[keys[key_index]]
        return out
    if isinstance(lhs, list):
        if key_index >= len(lhs) or len(lhs) <= 1:
            # An FD needs a nonempty LHS; CFDs admit empty (constant) LHS.
            return None
        out["lhs"] = _drop_index(lhs, key_index)
        return out
    return None


def _candidates(case: dict) -> Iterator[dict]:
    """Every one-step reduction of *case*, in deterministic order."""
    # 1. Drop one Sigma dependency.
    for i in range(len(case["sigma"])):
        yield _replace(case, sigma=_drop_index(case["sigma"], i))
    # 2. Drop one check target.
    for i in range(len(case["targets"])):
        yield _replace(case, targets=_drop_index(case["targets"], i))
    view = case["view"]
    # 3. Drop one union branch (keeping at least one).
    if "branches" in view and len(view["branches"]) > 1:
        for i in range(len(view["branches"])):
            reduced = copy.deepcopy(view)
            reduced["branches"] = _drop_index(reduced["branches"], i)
            yield _replace(case, view=reduced)
    # 4. Drop one selection atom (per branch).
    for b, branch in enumerate(_branches(view)):
        for i in range(len(branch.get("selection", []))):
            reduced = copy.deepcopy(view)
            target = (
                reduced["branches"][b] if "branches" in reduced else reduced
            )
            target["selection"] = _drop_index(target["selection"], i)
            yield _replace(case, view=reduced)
    # 5. Drop one projection column — from every branch at once, so
    #    union branches stay union-compatible.
    arity = min(
        (len(b.get("projection", [])) for b in _branches(view)), default=0
    )
    for i in range(arity):
        reduced = copy.deepcopy(view)
        for branch in _branches(reduced):
            branch["projection"] = _drop_index(branch["projection"], i)
        yield _replace(case, view=reduced)
    # 6. Narrow one dependency's LHS by one attribute.
    for field in ("sigma", "targets"):
        for i, dep in enumerate(case[field]):
            lhs = dep.get("lhs", ())
            for k in range(len(lhs)):
                narrowed = _narrowed(dep, k)
                if narrowed is None:
                    continue
                reduced_deps = copy.deepcopy(case[field])
                reduced_deps[i] = narrowed
                yield _replace(case, **{field: reduced_deps})
    # 7. Drop one schema relation no atom or dependency references.
    used = {dep.get("relation") for dep in case["sigma"]}
    for branch in _branches(view):
        for atom in branch.get("atoms", []):
            used.add(atom.get("source"))
    relations = case["schema"].get("relations", [])
    for i, relation in enumerate(relations):
        if relation.get("name") in used:
            continue
        reduced_schema = copy.deepcopy(case["schema"])
        reduced_schema["relations"] = _drop_index(
            reduced_schema["relations"], i
        )
        yield _replace(case, schema=reduced_schema)


def _valid(case: dict) -> bool:
    try:
        parse_case(case)
    except Exception:
        return False
    return True


def shrink_case(
    case: dict,
    still_failing: Callable[[dict], bool],
    *,
    max_steps: int = 10_000,
) -> dict:
    """Greedily minimize *case* while ``still_failing`` holds.

    Restarts the pass sequence after every accepted reduction (a smaller
    case may unlock reductions an earlier pass skipped); stops at the
    first full sweep with no accepted candidate.  ``max_steps`` bounds
    predicate invocations for pathological predicates.
    """
    case = copy.deepcopy(case)
    steps = 0
    improved = True
    while improved:
        improved = False
        for candidate in _candidates(case):
            steps += 1
            if steps > max_steps:
                return case
            if case_size(candidate) >= case_size(case):
                continue
            if not _valid(candidate):
                continue
            if still_failing(candidate):
                case = candidate
                improved = True
                break
    return case
