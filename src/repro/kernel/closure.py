"""Attribute closure on int bitmasks instead of frozenset algebra.

``_closure_fixpoint`` in :mod:`repro.core.fd` grows a Python set by
repeated subset tests (``set(fd.lhs) <= closure``).  Here the FD set is
compiled once into an attribute interner plus ``(lhs_mask, rhs_mask)``
int pairs, and the fixpoint runs on word operations: a premise is
contained iff ``lhs_mask & ~closed == 0`` and applying an FD is a single
``closed |= rhs_mask``.

Compiled programs are memoized per FD set (the hot pattern is many
closures under one Sigma — the engine's closure fast path computes one
closure per unique LHS against a fixed FD list), bounded by the shared
:class:`~repro.core.lru.LRUCache` policy.

The contract is exact: ``bitset_closure(attrs, fds)`` returns the same
frozenset as ``_closure_fixpoint(attrs, fds)`` for every input —
``tests/test_kernel.py`` differentials the two on seeded generator
streams.
"""

from __future__ import annotations

from typing import Iterable

from ..core.lru import LRUCache

__all__ = ["bitset_closure", "compile_fds", "clear_program_cache"]

#: Compiled closure programs per FD set.  4096 distinct Sigmas in flight
#: is far beyond any real batch; the bound only guards long-lived servers.
_PROGRAMS: LRUCache = LRUCache(4096)


def compile_fds(fds: frozenset) -> tuple[dict, list[str], list[tuple[int, int]]]:
    """Compile an FD set into ``(attr_index, attr_names, mask_pairs)``.

    ``attr_index`` interns every attribute occurring in the FDs to a bit
    position; attributes outside the FDs never influence a closure, so
    the caller keeps them aside.  ``mask_pairs`` holds one
    ``(lhs_mask, rhs_mask)`` per FD, in sorted-FD order for determinism.
    """
    program = _PROGRAMS.get(fds)
    if program is not None:
        return program
    index: dict[str, int] = {}
    names: list[str] = []

    def intern(attr: str) -> int:
        bit = index.get(attr)
        if bit is None:
            bit = len(names)
            index[attr] = bit
            names.append(attr)
        return bit

    pairs: list[tuple[int, int]] = []
    for fd in sorted(fds, key=repr):
        lhs_mask = 0
        for attr in fd.lhs:
            lhs_mask |= 1 << intern(attr)
        rhs_mask = 0
        for attr in fd.rhs:
            rhs_mask |= 1 << intern(attr)
        pairs.append((lhs_mask, rhs_mask))
    program = (index, names, pairs)
    _PROGRAMS.put(fds, program)
    return program


def bitset_closure(attrs: Iterable[str], fds: frozenset) -> frozenset[str]:
    """The closure ``X+`` of *attrs* under *fds*, computed on bitmasks.

    *fds* must be a frozenset (the memo key the caller already built);
    attributes of *attrs* that no FD mentions pass through untouched.
    """
    if not fds:
        return frozenset(attrs)
    index, names, pairs = compile_fds(fds)
    closed = 0
    outside: list[str] = []
    for attr in attrs:
        bit = index.get(attr)
        if bit is None:
            outside.append(attr)
        else:
            closed |= 1 << bit
    pending = pairs
    changed = True
    while changed and pending:
        changed = False
        remaining: list[tuple[int, int]] = []
        for lhs_mask, rhs_mask in pending:
            if lhs_mask & ~closed == 0:
                if rhs_mask & ~closed:
                    closed |= rhs_mask
                    changed = True
            else:
                remaining.append((lhs_mask, rhs_mask))
        pending = remaining
    result = set(outside)
    bit = 0
    while closed:
        if closed & 1:
            result.add(names[bit])
        closed >>= 1
        bit += 1
    return frozenset(result)


def clear_program_cache() -> None:
    """Drop every compiled closure program (test isolation hook)."""
    _PROGRAMS.clear()
