"""The factorised, bit-packed single-chase kernel for branch pairs.

The baseline pair loop in :mod:`repro.propagation.check` materializes a
symbolic instance per branch pair, couples it through the query's LHS
pattern and chases with ``dict``/``SymVar`` churn.  This module replays
exactly that computation on a *packed* representation:

- every cell of a materialized pair is interned to a dense integer id —
  constants by value (Sigma pattern constants first, then instance
  constants in walk order), chase variables after them in
  first-occurrence order — so ``equate``/``resolve`` become array
  union-find operations;
- the source CFDs compile once per template into flat per-row programs
  (premise checks as ``(cell, const_node)`` id pairs, Case-1 group keys
  as cell-id tuples) consumed by a fixpoint loop;
- the k² branch-pair space is factorised: pairs whose packed structure
  is identical share one *template*, the template's sigma-chased base
  state is computed once, and coupled chase outcomes are cached per
  packed premise signature ``(template, lhs pattern)`` — so isomorphic
  pairs and same-LHS queries never re-chase.

Soundness rests on chase confluence: the extended chase applies only
equality-generating consequences, so its result is the least fixpoint of
a closure operator — order-independent, and ``closure(base ∪ coupling) =
closure(closure(base) ∪ coupling)``.  The packed verdict (same class /
class constant) therefore coincides with the baseline's resolved-cell
comparison; when a violation *is* found, the caller rebuilds the witness
database through the baseline machinery for the flagged pair, so even
counterexamples are byte-identical.  ``tests/test_kernel.py`` and the
fuzz matrix enforce all of this differentially.

The kernel covers exactly the shared-single-chase setting
(``BranchPairCache.can_share_chase``); every other construct falls back
to the baseline (see ``docs/kernel.md``).
"""

from __future__ import annotations

from typing import Any, Iterable

from ..core.chase import SymVar
from ..core.lru import LRUCache
from ..core.values import is_const, is_wildcard

__all__ = ["PackedPairRunner", "UNDEFINED"]

#: Sentinel chase outcome: the coupled instance is unsatisfiable.
UNDEFINED = object()

_MISSING = object()


class _Template:
    """The packed form shared by all structurally identical branch pairs.

    ``const_boundary`` splits the node space: ids below it are the
    constants present at build time (each its own singleton value class),
    ids at or above are chase variables — except ids appended later by
    :meth:`PackedPairRunner._coupled_state` for pattern constants unseen
    at build time, which carry their own id in ``cnode`` directly.
    """

    __slots__ = (
        "const_ids",
        "const_boundary",
        "node_count",
        "equalities",
        "const_rules",
        "pair_rules",
        "cells1",
        "cells2",
        "base_state",
        "outcomes",
    )

    def __init__(self) -> None:
        self.const_ids: dict[Any, int] = {}
        self.const_boundary = 0
        self.node_count = 0
        self.equalities: list[tuple[int, int]] = []
        # [(checks, rhs_cell, target_const_node)]
        self.const_rules: list[tuple[tuple[tuple[int, int], ...], int, int]] = []
        # [[(checks, key_cells, rhs_cell)]] — one program per Case-1 CFD
        self.pair_rules: list[
            list[tuple[tuple[tuple[int, int], ...], tuple[int, ...], int]]
        ] = []
        self.cells1: dict[str, int] = {}
        self.cells2: dict[str, int] = {}
        self.base_state: Any = None  # lazy: (parent, cnode) | UNDEFINED
        self.outcomes: LRUCache | None = None  # lhs -> (parent, cnode) | UNDEFINED

    def intern_const(self, value: Any) -> int:
        """Node id for *value*, appending past the var range if new."""
        node = self.const_ids.get(value)
        if node is None:
            node = self.node_count
            self.const_ids[value] = node
            self.node_count += 1
        return node


def _find(parent: list[int], node: int) -> int:
    while parent[node] != node:
        parent[node] = parent[parent[node]]
        node = parent[node]
    return node


class _Conflict(Exception):
    """Two distinct constants were equated — the chase is undefined."""


def _union(parent: list[int], cnode: list[int], a: int, b: int) -> bool:
    ra = _find(parent, a)
    rb = _find(parent, b)
    if ra == rb:
        return False
    ca = cnode[ra]
    cb = cnode[rb]
    if ca >= 0 and cb >= 0 and ca != cb:
        raise _Conflict
    parent[rb] = ra
    if ca < 0 and cb >= 0:
        cnode[ra] = cb
    return True


class PackedPairRunner:
    """One Sigma's packed pair loop over one :class:`BranchPairCache`.

    Built (and cached) per ``(view cache, sigma_key)``; ``find_violation``
    answers the Case-1/Case-2 half of ``_pair_counterexample`` — it
    returns the first violating ordered pair, or ``None``.  The caller
    owns witness reconstruction and the decision of when this kernel
    applies (single-chase setting, cache enabled); after a run it must
    consult :attr:`usable` — a ``False`` means the runner met a construct
    it cannot intern (e.g. an unhashable constant) and the whole query
    must be re-answered on the baseline path.
    """

    def __init__(self, sigma: list, cache, capacity: int | None = None) -> None:
        self._sigma = sigma
        self._cache = cache  # BranchPairCache (base pairs + counters)
        self._capacity = capacity
        self._templates: dict[tuple, _Template] = {}
        self._packs: dict[tuple[int, int], _Template | None] = {}
        self.usable = True

    @property
    def evictions(self) -> int:
        return sum(
            template.outcomes.evictions
            for template in self._templates.values()
            if template.outcomes is not None
        )

    # ------------------------------------------------------------------
    # Packing: pair -> template (+ structural dedup).
    # ------------------------------------------------------------------

    def _pack(self, i: int, j: int) -> _Template | None:
        pack = self._packs.get((i, j), _MISSING)
        if pack is not _MISSING:
            return pack
        base = self._cache.base_pair(i, j)
        if base is None:
            self._packs[(i, j)] = None
            return None
        instance, cells1, cells2 = base

        # Deterministic node numbering, constants strictly before vars:
        # Sigma pattern constants in compiled order, then the instance's
        # own constants in sorted-relation row-major walk order, then the
        # chase variables in the same walk order.  Two pairs whose walks
        # produce identical node sequences are semantically isomorphic
        # and share one template.
        const_ids: dict[Any, int] = {}
        const_values: list[Any] = []

        def intern_const(value: Any) -> int:
            node = const_ids.get(value)
            if node is None:
                node = len(const_values)
                const_ids[value] = node
                const_values.append(value)
            return node

        try:
            for cfd in self._sigma:
                if cfd.is_equality:
                    continue
                for _, entry in cfd.lhs:
                    if is_const(entry):
                        intern_const(entry.value)
                if is_const(cfd.rhs_entry):
                    intern_const(cfd.rhs_entry.value)

            resolved: dict[str, list[dict[str, Any]]] = {}
            for rel in sorted(instance.relations):
                resolved[rel] = [
                    {attr: instance.resolve(row[attr]) for attr in sorted(row)}
                    for row in instance.relations[rel]
                ]
            rc1 = {a: instance.resolve(c) for a, c in sorted(cells1.items())}
            rc2 = {a: instance.resolve(c) for a, c in sorted(cells2.items())}
            for rows in resolved.values():
                for row in rows:
                    for value in row.values():
                        if not isinstance(value, SymVar):
                            intern_const(value)
            for cellmap in (rc1, rc2):
                for value in cellmap.values():
                    if not isinstance(value, SymVar):
                        intern_const(value)

            offset = len(const_values)
            var_ids: dict[SymVar, int] = {}

            def node_of(value: Any) -> int:
                if isinstance(value, SymVar):
                    node = var_ids.get(value)
                    if node is None:
                        node = offset + len(var_ids)
                        var_ids[value] = node
                    return node
                return const_ids[value]

            sig_parts: list[Any] = [tuple(const_values)]
            packed_rows: dict[str, list[dict[str, int]]] = {}
            for rel, rows in resolved.items():
                rows_out = []
                for row in rows:
                    packed = {attr: node_of(value) for attr, value in row.items()}
                    rows_out.append(packed)
                    sig_parts.append((rel, tuple(packed.items())))
                packed_rows[rel] = rows_out
            c1 = {attr: node_of(value) for attr, value in rc1.items()}
            c2 = {attr: node_of(value) for attr, value in rc2.items()}
        except TypeError:
            # Unhashable constant — the runner cannot intern this
            # instance; the whole query falls back to the baseline.
            self.usable = False
            self._packs[(i, j)] = None
            return None

        signature = (
            tuple(sig_parts),
            tuple(sorted(c1.items())),
            tuple(sorted(c2.items())),
        )
        template = self._templates.get(signature)
        if template is None:
            template = self._build_template(
                const_ids, offset, packed_rows, c1, c2, offset + len(var_ids)
            )
            self._templates[signature] = template
        self._packs[(i, j)] = template
        return template

    def _build_template(
        self, const_ids, const_boundary, packed_rows, c1, c2, node_count
    ) -> _Template:
        template = _Template()
        template.const_ids = dict(const_ids)
        template.const_boundary = const_boundary
        template.node_count = node_count
        template.cells1 = c1
        template.cells2 = c2
        template.outcomes = LRUCache(self._capacity)

        for cfd in self._sigma:
            rows = packed_rows.get(cfd.relation, [])
            if cfd.is_equality:
                a = cfd.lhs[0][0]
                b = cfd.rhs[0][0]
                template.equalities.extend((row[a], row[b]) for row in rows)
                continue
            checks_proto = [
                (name, template.const_ids[entry.value])
                for name, entry in cfd.lhs
                if not is_wildcard(entry)
            ]
            rhs_attr = cfd.rhs_attr
            rhs_entry = cfd.rhs_entry
            if is_const(rhs_entry):
                target = template.const_ids[rhs_entry.value]
                for row in rows:
                    checks = tuple((row[name], cn) for name, cn in checks_proto)
                    template.const_rules.append((checks, row[rhs_attr], target))
            elif len(rows) > 1:
                # A single matching row forms a singleton group — no
                # equating can happen, so one-row programs are no-ops.
                lhs_names = [name for name, _ in cfd.lhs]
                template.pair_rules.append(
                    [
                        (
                            tuple((row[name], cn) for name, cn in checks_proto),
                            tuple(row[name] for name in lhs_names),
                            row[rhs_attr],
                        )
                        for row in rows
                    ]
                )
        return template

    # ------------------------------------------------------------------
    # The packed chase.
    # ------------------------------------------------------------------

    @staticmethod
    def _fixpoint(template: _Template, parent: list[int], cnode: list[int]) -> bool:
        """Chase to fixpoint; ``False`` means undefined (conflict).

        The find/union steps are inlined (no helper calls) — this loop is
        the entire hot path of a cold sweep and CPython call overhead was
        the dominant cost of the non-inlined version.
        """
        const_rules = template.const_rules
        pair_rules = template.pair_rules
        changed = True
        while changed:
            changed = False
            for checks, rhs_cell, target in const_rules:
                forced = True
                for cell, want in checks:
                    while parent[cell] != cell:
                        parent[cell] = parent[parent[cell]]
                        cell = parent[cell]
                    if cnode[cell] != want:
                        forced = False
                        break
                if not forced:
                    continue
                # union(rhs_cell, target); target is a constant node
                ra = rhs_cell
                while parent[ra] != ra:
                    parent[ra] = parent[parent[ra]]
                    ra = parent[ra]
                rb = target
                while parent[rb] != rb:
                    parent[rb] = parent[parent[rb]]
                    rb = parent[rb]
                if ra == rb:
                    continue
                ca = cnode[ra]
                cb = cnode[rb]
                if ca >= 0 and cb >= 0 and ca != cb:
                    return False
                parent[rb] = ra
                if ca < 0 and cb >= 0:
                    cnode[ra] = cb
                changed = True
            for program in pair_rules:
                if len(program) == 2:
                    # The dominant shape (single-branch views pair two
                    # copies): compare the two rows' group keys directly,
                    # skipping the anchors dict and key-tuple churn.
                    (checks_a, key_a, rhs_a), (checks_b, key_b, rhs_b) = program
                    forced = True
                    for cell, want in checks_a:
                        while parent[cell] != cell:
                            parent[cell] = parent[parent[cell]]
                            cell = parent[cell]
                        if cnode[cell] != want:
                            forced = False
                            break
                    if forced:
                        for cell, want in checks_b:
                            while parent[cell] != cell:
                                parent[cell] = parent[parent[cell]]
                                cell = parent[cell]
                            if cnode[cell] != want:
                                forced = False
                                break
                    if not forced:
                        continue
                    same = True
                    for idx, cell in enumerate(key_a):
                        while parent[cell] != cell:
                            parent[cell] = parent[parent[cell]]
                            cell = parent[cell]
                        other = key_b[idx]
                        while parent[other] != other:
                            parent[other] = parent[parent[other]]
                            other = parent[other]
                        if cell != other:
                            same = False
                            break
                    if not same:
                        continue
                    ra = rhs_a
                    while parent[ra] != ra:
                        parent[ra] = parent[parent[ra]]
                        ra = parent[ra]
                    rb = rhs_b
                    while parent[rb] != rb:
                        parent[rb] = parent[parent[rb]]
                        rb = parent[rb]
                    if ra == rb:
                        continue
                    ca = cnode[ra]
                    cb = cnode[rb]
                    if ca >= 0 and cb >= 0 and ca != cb:
                        return False
                    parent[rb] = ra
                    if ca < 0 and cb >= 0:
                        cnode[ra] = cb
                    changed = True
                    continue
                anchors: dict[tuple[int, ...], int] = {}
                for checks, key_cells, rhs_cell in program:
                    forced = True
                    for cell, want in checks:
                        while parent[cell] != cell:
                            parent[cell] = parent[parent[cell]]
                            cell = parent[cell]
                        if cnode[cell] != want:
                            forced = False
                            break
                    if not forced:
                        continue
                    key_list = []
                    for cell in key_cells:
                        while parent[cell] != cell:
                            parent[cell] = parent[parent[cell]]
                            cell = parent[cell]
                        key_list.append(cell)
                    key = tuple(key_list)
                    anchor = anchors.get(key)
                    if anchor is None:
                        anchors[key] = rhs_cell
                        continue
                    ra = anchor
                    while parent[ra] != ra:
                        parent[ra] = parent[parent[ra]]
                        ra = parent[ra]
                    rb = rhs_cell
                    while parent[rb] != rb:
                        parent[rb] = parent[parent[rb]]
                        rb = parent[rb]
                    if ra == rb:
                        continue
                    ca = cnode[ra]
                    cb = cnode[rb]
                    if ca >= 0 and cb >= 0 and ca != cb:
                        return False
                    parent[rb] = ra
                    if ca < 0 and cb >= 0:
                        cnode[ra] = cb
                    changed = True
        return True

    def _base_state(self, template: _Template):
        state = template.base_state
        if state is not None:
            return state
        parent = list(range(template.node_count))
        cnode = [
            node if node < template.const_boundary else -1
            for node in range(template.node_count)
        ]
        try:
            for a, b in template.equalities:
                _union(parent, cnode, a, b)
        except _Conflict:
            template.base_state = UNDEFINED
            return UNDEFINED
        if not self._fixpoint(template, parent, cnode):
            template.base_state = UNDEFINED
            return UNDEFINED
        template.base_state = (parent, cnode)
        return template.base_state

    def _coupled_state(self, template: _Template, lhs):
        """Chase outcome for one packed premise signature (cached).

        Mirrors the baseline's coupled/chased tier bookkeeping on the
        shared :class:`BranchPairCache` counters so the engine stats and
        perf-smoke assertions read the same signals either way.
        """
        cache = self._cache
        state = template.outcomes.get(lhs, _MISSING)
        if state is not _MISSING:
            cache.coupled_hits += 1
            cache.chased_hits += 1
            return state
        cache.coupled_misses += 1
        cache.chased_misses += 1
        cache.chase_invocations += 1
        base = self._base_state(template)
        if base is UNDEFINED:
            # Unsatisfiable before coupling; the baseline would discover
            # the same conflict inside its coupled chase.
            template.outcomes.put(lhs, UNDEFINED)
            return UNDEFINED
        couplings: list[tuple[int, int]] = []
        for attr, entry in lhs:
            cell1 = template.cells1[attr]
            cell2 = template.cells2[attr]
            if is_const(entry):
                node = template.intern_const(entry.value)
                couplings.append((cell1, node))
                couplings.append((cell2, node))
            else:
                couplings.append((cell1, cell2))
        parent = list(base[0])
        cnode = list(base[1])
        for node in range(len(parent), template.node_count):
            parent.append(node)
            cnode.append(node)  # nodes appended past base are constants
        try:
            for a, b in couplings:
                _union(parent, cnode, a, b)
        except _Conflict:
            template.outcomes.put(lhs, UNDEFINED)
            return UNDEFINED
        if not self._fixpoint(template, parent, cnode):
            template.outcomes.put(lhs, UNDEFINED)
            return UNDEFINED
        state = (parent, cnode)
        template.outcomes.put(lhs, state)
        return state

    # ------------------------------------------------------------------
    # The pair loop.
    # ------------------------------------------------------------------

    def find_violation(
        self, phi, pairs: Iterable[tuple[int, int]]
    ) -> tuple[int, int] | None:
        """First ordered pair on which *phi* is violated, else ``None``.

        *phi* must be normal form, non-equality, non-trivial; *pairs*
        must iterate in the baseline loop's order so the flagged pair —
        and hence the reconstructed witness — is identical.  A ``None``
        with :attr:`usable` now ``False`` is *not* an answer: rerun the
        query on the baseline.
        """
        rhs_attr = phi.rhs_attr
        rhs_entry = phi.rhs_entry
        rhs_const = is_const(rhs_entry)
        for i, j in pairs:
            template = self._pack(i, j)
            if template is None:
                if not self.usable:
                    return None
                continue  # unsatisfiable branch pair: nothing to violate
            state = self._coupled_state(template, phi.lhs)
            if state is UNDEFINED:
                continue
            parent, cnode = state
            r1 = _find(parent, template.cells1[rhs_attr])
            r2 = _find(parent, template.cells2[rhs_attr])
            violated = r1 != r2
            if not violated and rhs_const:
                want = template.const_ids.get(rhs_entry.value, -2)
                violated = cnode[r1] != want
            if violated:
                return (i, j)
        return None
