"""``EquivalenceClasses`` union-find on int arrays instead of dicts.

A drop-in for :class:`repro.propagation.eqclasses.EquivalenceClasses`:
attributes are interned to dense integer ids once at construction, and
``find``/``union``/``set_key`` run on a flat parent list with
path-halving — no per-step dict hashing of attribute strings.

The semantics mirror the baseline *exactly*, including observable
incidentals the cover pipeline depends on:

- ``union(a, b)`` merges ``b``'s root under ``a``'s root (the merge
  direction decides which attribute names each class's root, and
  ``classes()`` sorts buckets by root — so ``EQ2CFD`` output order is
  identical);
- key conflicts return the same :class:`BottomEQ` witnesses, built from
  the same attribute and value pair.

``compute_eq(..., kernel="bitset")`` in
:mod:`repro.propagation.eqclasses` swaps this class in; every consumer
(``_fires_globally``, ``eq2cfd``, the domain-constraint substitution in
``cover.py``) goes through the shared public API so nothing else
changes.  ``tests/test_kernel.py`` differentials the two on seeded
random operation streams and generator-built views.
"""

from __future__ import annotations

from typing import Any, Iterable

__all__ = ["PackedEquivalenceClasses"]

_NO_KEY = object()


class PackedEquivalenceClasses:
    """A union-find over interned view attributes with per-class keys."""

    def __init__(self, attributes: Iterable[str]) -> None:
        from ..propagation.eqclasses import BottomEQ  # avoid import cycle

        self._bottom = BottomEQ
        self._names: list[str] = []
        self._index: dict[str, int] = {}
        for attr in attributes:
            if attr not in self._index:
                self._index[attr] = len(self._names)
                self._names.append(attr)
        n = len(self._names)
        self._parent: list[int] = list(range(n))
        self._keys: list[Any] = [_NO_KEY] * n

    # -- union-find ----------------------------------------------------

    def _find(self, node: int) -> int:
        parent = self._parent
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def find(self, attribute: str) -> str:
        return self._names[self._find(self._index[attribute])]

    def union(self, a: str, b: str):
        ra = self._find(self._index[a])
        rb = self._find(self._index[b])
        if ra == rb:
            return None
        ka = self._keys[ra]
        kb = self._keys[rb]
        if ka is not _NO_KEY and kb is not _NO_KEY and ka != kb:
            return self._bottom(a, (ka, kb))
        self._parent[rb] = ra
        if kb is not _NO_KEY and ka is _NO_KEY:
            self._keys[ra] = kb
        return None

    def set_key(self, attribute: str, value: Any):
        root = self._find(self._index[attribute])
        existing = self._keys[root]
        if existing is not _NO_KEY:
            if existing != value:
                return self._bottom(attribute, (existing, value))
            return None
        self._keys[root] = value
        return None

    def key(self, attribute: str) -> Any | None:
        """The class key (constant forced on the class) or ``None``."""
        value = self._keys[self._find(self._index[attribute])]
        return None if value is _NO_KEY else value

    def has_key(self, attribute: str) -> bool:
        return self._keys[self._find(self._index[attribute])] is not _NO_KEY

    def same(self, a: str, b: str) -> bool:
        return self._find(self._index[a]) == self._find(self._index[b])

    def classes(self) -> list[list[str]]:
        buckets: dict[str, list[str]] = {}
        for node, attribute in enumerate(self._names):
            buckets.setdefault(self._names[self._find(node)], []).append(attribute)
        return [sorted(members) for _, members in sorted(buckets.items())]

    def representative(self, attribute: str, prefer: Iterable[str]) -> str:
        """The class member used to stand for the class (Figure 2 line 8):
        a member of *prefer* (the projection list) when one exists."""
        preferred = set(prefer)
        root = self._find(self._index[attribute])
        members = [
            name
            for node, name in enumerate(self._names)
            if self._find(node) == root
        ]
        in_y = sorted(m for m in members if m in preferred)
        if in_y:
            return in_y[0]
        return sorted(members)[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for members in self.classes():
            key = self.key(members[0])
            suffix = f"={key!r}" if self.has_key(members[0]) else ""
            parts.append("{" + ",".join(members) + "}" + suffix)
        return "PackedEQ(" + " ".join(parts) + ")"
