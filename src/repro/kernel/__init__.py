"""The bit-packed fast path for cold propagation queries.

Interns attributes, constants and chase variables to dense integer ids
so the hot fixpoints — attribute closure, ``ComputeEQ`` union-find, and
the branch-pair chase — run on flat int arrays instead of
frozenset/dict/``SymVar`` algebra.  Selected per engine with
``kernel="bitset"`` (the default; ``REPRO_KERNEL`` overrides the
default), with the baseline implementations kept intact as the
differential oracle and the automatic fallback for constructs the
kernel does not cover.  See ``docs/kernel.md``.
"""

from .closure import bitset_closure, clear_program_cache, compile_fds
from .config import DEFAULT_KERNEL, ENV_VAR, KERNELS, resolve_kernel, validate_kernel
from .eqpack import PackedEquivalenceClasses

__all__ = [
    "DEFAULT_KERNEL",
    "ENV_VAR",
    "KERNELS",
    "PackedEquivalenceClasses",
    "bitset_closure",
    "clear_program_cache",
    "compile_fds",
    "resolve_kernel",
    "validate_kernel",
]
