"""Kernel selection: which chase/closure implementation answers a query.

Two kernels exist (``KERNELS``):

- ``"bitset"`` — the factorised, bit-packed fast path of this package:
  attribute closures on int bitmasks, equivalence classes on int
  union-find, and the single-chase branch-pair loop on a packed
  union-find over interned cell ids (:mod:`repro.kernel.chase`).
- ``"baseline"`` — the original frozenset/dict implementation, kept as
  the differential oracle.

The kernel is an *engine* setting (``PropagationEngine(kernel=...)``,
service/wire ``kernel`` field, CLI ``--kernel``), resolved here from the
``REPRO_KERNEL`` environment variable with default ``"bitset"``.  It is
deliberately **not** part of any memo or persistent cache key: both
kernels answer byte-identically (the fuzz matrix enforces it), so warm
lines written under one kernel stay valid under the other.

The bitset kernel covers exactly the *single-chase* setting (no
finite-domain attribute in the view, or ``assume_infinite``, and no
``max_instantiations`` cap) on a cache-enabled engine; anything else
falls back to the baseline automatically (see ``docs/kernel.md``).
"""

from __future__ import annotations

import os

__all__ = ["DEFAULT_KERNEL", "KERNELS", "resolve_kernel", "validate_kernel"]

KERNELS = ("bitset", "baseline")
DEFAULT_KERNEL = "bitset"

#: Environment knob consulted when no explicit kernel is given.
ENV_VAR = "REPRO_KERNEL"


def validate_kernel(value: str) -> str:
    """Check *value* names a known kernel; returns it unchanged."""
    if value not in KERNELS:
        raise ValueError(
            f"unknown kernel {value!r}; expected one of {', '.join(KERNELS)}"
        )
    return value


def resolve_kernel(value: str | None = None) -> str:
    """The effective kernel: *value*, else ``$REPRO_KERNEL``, else bitset."""
    if value is not None:
        return validate_kernel(value)
    env = os.environ.get(ENV_VAR)
    if env:
        return validate_kernel(env)
    return DEFAULT_KERNEL
