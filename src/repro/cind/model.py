"""Conditional inclusion dependencies (CINDs), per Bravo/Fan/Ma VLDB'07.

The paper's concluding future work points at CINDs — inclusion
dependencies with pattern conditions — and at studying their propagation
together with CFDs.  This package implements the formalism and the part
of the propagation story that is derivable today (see
:mod:`repro.cind.propagation`).

A CIND is written ``(R1[X; Xp] ⊆ R2[Y; Yp], tp)``:

- ``R1[X] ⊆ R2[Y]`` is a standard inclusion dependency (``X`` and ``Y``
  same length),
- ``Xp`` are condition attributes of ``R1`` with constants ``tp[Xp]``
  selecting which ``R1`` tuples the inclusion applies to,
- ``Yp`` are attributes of ``R2`` whose constants ``tp[Yp]`` must hold on
  the witnessing tuple.

``D |= psi`` iff for every ``t1`` in ``R1`` with ``t1[Xp] = tp[Xp]``
there exists ``t2`` in ``R2`` with ``t2[Y] = t1[X]`` and
``t2[Yp] = tp[Yp]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Sequence

from ..algebra.instance import DatabaseInstance


@dataclass(frozen=True)
class CIND:
    """A conditional inclusion dependency.

    ``lhs_condition`` and ``rhs_condition`` map attribute names to the
    constants of the pattern tuple (``Xp``/``Yp``); both may be empty, in
    which case the CIND degenerates to a traditional IND.
    """

    lhs_relation: str
    lhs_attrs: tuple[str, ...]
    rhs_relation: str
    rhs_attrs: tuple[str, ...]
    lhs_condition: tuple[tuple[str, Any], ...] = ()
    rhs_condition: tuple[tuple[str, Any], ...] = ()

    def __init__(
        self,
        lhs_relation: str,
        lhs_attrs: Sequence[str],
        rhs_relation: str,
        rhs_attrs: Sequence[str],
        lhs_condition: Mapping[str, Any] | None = None,
        rhs_condition: Mapping[str, Any] | None = None,
    ) -> None:
        if len(lhs_attrs) != len(rhs_attrs):
            raise ValueError(
                f"IND lists differ in length: {lhs_attrs} vs {rhs_attrs}"
            )
        if len(set(lhs_attrs)) != len(lhs_attrs):
            raise ValueError(f"duplicate attributes in {lhs_attrs}")
        if len(set(rhs_attrs)) != len(rhs_attrs):
            raise ValueError(f"duplicate attributes in {rhs_attrs}")
        lhs_condition = dict(lhs_condition or {})
        rhs_condition = dict(rhs_condition or {})
        overlap = set(lhs_condition) & set(lhs_attrs)
        if overlap:
            raise ValueError(
                f"condition attributes {sorted(overlap)} overlap the "
                "inclusion list (put the constant in the pattern only)"
            )
        object.__setattr__(self, "lhs_relation", lhs_relation)
        object.__setattr__(self, "lhs_attrs", tuple(lhs_attrs))
        object.__setattr__(self, "rhs_relation", rhs_relation)
        object.__setattr__(self, "rhs_attrs", tuple(rhs_attrs))
        object.__setattr__(
            self, "lhs_condition", tuple(sorted(lhs_condition.items()))
        )
        object.__setattr__(
            self, "rhs_condition", tuple(sorted(rhs_condition.items()))
        )

    @property
    def is_plain_ind(self) -> bool:
        return not self.lhs_condition and not self.rhs_condition

    # ------------------------------------------------------------------
    # Satisfaction.
    # ------------------------------------------------------------------

    def holds_on(self, database: DatabaseInstance) -> bool:
        """Whether *database* satisfies this CIND."""
        return not any(True for _ in self.violations(database))

    def violations(self, database: DatabaseInstance):
        """Yield LHS tuples with no witnessing RHS tuple."""
        lhs_rows = database.relation(self.lhs_relation).rows
        rhs_rows = database.relation(self.rhs_relation).rows

        witnesses = set()
        rhs_cond = dict(self.rhs_condition)
        for row in rhs_rows:
            if all(row[a] == v for a, v in rhs_cond.items()):
                witnesses.add(tuple(row[a] for a in self.rhs_attrs))

        lhs_cond = dict(self.lhs_condition)
        for row in lhs_rows:
            if not all(row[a] == v for a, v in lhs_cond.items()):
                continue
            key = tuple(row[a] for a in self.lhs_attrs)
            if key not in witnesses:
                yield row

    # ------------------------------------------------------------------

    def rename_lhs(self, mapping: Mapping[str, str], relation: str | None = None) -> "CIND":
        """Rename the LHS side's attributes (for view-space transport)."""
        return CIND(
            relation or self.lhs_relation,
            [mapping.get(a, a) for a in self.lhs_attrs],
            self.rhs_relation,
            self.rhs_attrs,
            {mapping.get(a, a): v for a, v in self.lhs_condition},
            dict(self.rhs_condition),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def side(rel, attrs, cond):
            cond_str = (
                "; " + ",".join(f"{a}={v!r}" for a, v in cond) if cond else ""
            )
            return f"{rel}[{','.join(attrs)}{cond_str}]"

        return (
            side(self.lhs_relation, self.lhs_attrs, self.lhs_condition)
            + " ⊆ "
            + side(self.rhs_relation, self.rhs_attrs, self.rhs_condition)
        )
