"""Deriving CINDs across a view (the tractable slice of the future work).

Full CFD+CIND propagation is open (and interacting CFDs and CINDs makes
even implication undecidable), but one family of CINDs is *derivable by
construction* for any SPC view ``V = pi_Y(Rc x sigma_F(R1 x ... x Rn))``:

  every view tuple's sub-tuple on the projected attributes of atom ``j``
  comes verbatim from a tuple of atom ``j``'s source relation —

so for each atom the **view-to-source CIND**

    V[Y_j ; guards] ⊆ S[orig(Y_j) ; selection constants on atom j]

holds on ``V(D) ∪ D`` for every source instance ``D``, where ``Y_j`` are
the projected attributes originating from atom ``j``, the RHS condition
carries the ``A = 'a'`` selection constants the view forces on that
atom's *non-projected* attributes, and the LHS has no condition (every
view tuple qualifies).

These are exactly the provenance facts data-integration systems need
("every offer row is backed by a Product row with country = 'UK'"), and
they are verified empirically in the tests by evaluating views on random
instances.

``derive_source_view_cinds`` also emits the reverse *source-to-view*
CINDs for single-atom views whose selection constants fully describe
membership — the case where view membership is decidable tuple-locally:
a source tuple matching all the selection constants must appear in the
view, giving ``S[orig(Y_1) ; selection constants] ⊆ V[Y_1]``.
"""

from __future__ import annotations

from ..algebra.ops import AttrEq, ConstEq
from ..algebra.spc import SPCView
from .model import CIND


def derive_view_source_cinds(view: SPCView) -> list[CIND]:
    """The provenance CINDs ``V[Y_j] ⊆ S_j[...]`` for every atom."""
    out: list[CIND] = []
    projected = set(view.projection)
    const_selection: dict[str, object] = {}
    for atom_sel in view.selection:
        if isinstance(atom_sel, ConstEq):
            const_selection[atom_sel.attr] = atom_sel.value

    for atom in view.atoms:
        view_names = []
        source_names = []
        rhs_condition: dict[str, object] = {}
        for src, view_name in atom.mapping:
            if view_name in projected:
                view_names.append(view_name)
                source_names.append(src)
            elif view_name in const_selection:
                rhs_condition[src] = const_selection[view_name]
        if not view_names:
            continue
        out.append(
            CIND(
                view.name,
                view_names,
                atom.source,
                source_names,
                rhs_condition=rhs_condition,
            )
        )
    return out


def derive_source_view_cinds(view: SPCView) -> list[CIND]:
    """Reverse CINDs ``S[...] ⊆ V[...]`` where membership is tuple-local.

    Sound only for single-atom views whose selection involves no
    attribute-equality atoms (an ``A = B`` condition or a join makes view
    membership depend on other tuples); such views yield the CIND whose
    LHS condition carries the selection constants.
    """
    if len(view.atoms) != 1 or view.constants:
        return []
    if any(isinstance(s, AttrEq) for s in view.selection):
        return []
    atom = view.atoms[0]
    projected = set(view.projection)
    reverse = {view_name: src for src, view_name in atom.mapping}

    lhs_condition: dict[str, object] = {}
    for atom_sel in view.selection:
        assert isinstance(atom_sel, ConstEq)
        lhs_condition[reverse[atom_sel.attr]] = atom_sel.value

    source_names = []
    view_names = []
    for src, view_name in atom.mapping:
        if view_name in projected and src not in lhs_condition:
            source_names.append(src)
            view_names.append(view_name)
    if not source_names:
        return []
    return [
        CIND(
            atom.source,
            source_names,
            view.name,
            view_names,
            lhs_condition=lhs_condition,
        )
    ]
