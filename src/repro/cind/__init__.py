"""Conditional inclusion dependencies and their derivable view facts."""

from .model import CIND
from .propagation import derive_source_view_cinds, derive_view_source_cinds

__all__ = ["CIND", "derive_source_view_cinds", "derive_view_source_cinds"]
