"""Relational schemas.

A relation schema is a named, ordered list of attributes, each with a
domain (Section 2 of the paper).  A database schema is a collection of
relation schemas; views are defined over database schemas.

Attribute identity is by *name within a schema*.  The renaming operator of
SPC views produces fresh attribute names (the paper requires the attributes
of distinct relation atoms in a product to be disjoint), which we implement
with ``RelationSchema.renamed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .domains import Domain, STRING


@dataclass(frozen=True, slots=True)
class Attribute:
    """An attribute: a name paired with its domain."""

    name: str
    domain: Domain = STRING

    def renamed(self, new_name: str) -> "Attribute":
        return Attribute(new_name, self.domain)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}:{self.domain.name}"


class RelationSchema:
    """A relation schema ``R(A1, ..., Ak)`` with per-attribute domains."""

    __slots__ = ("name", "attributes", "_by_name")

    def __init__(self, name: str, attributes: Iterable[Attribute | str]) -> None:
        attrs = tuple(
            a if isinstance(a, Attribute) else Attribute(a) for a in attributes
        )
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate attribute names in schema {name!r}: {names}")
        self.name = name
        self.attributes: tuple[Attribute, ...] = attrs
        self._by_name: dict[str, Attribute] = {a.name: a for a in attrs}

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self.attributes)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def __contains__(self, attribute_name: str) -> bool:
        return attribute_name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def attribute(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"schema {self.name!r} has no attribute {name!r}; "
                f"attributes are {self.attribute_names}"
            ) from None

    def domain_of(self, name: str) -> Domain:
        return self.attribute(name).domain

    def index_of(self, name: str) -> int:
        for i, a in enumerate(self.attributes):
            if a.name == name:
                return i
        raise KeyError(f"schema {self.name!r} has no attribute {name!r}")

    def has_finite_domain_attribute(self) -> bool:
        """Whether any attribute draws from a finite domain.

        This is the schema property that separates the paper's
        infinite-domain setting from the general setting.
        """
        return any(a.domain.is_finite for a in self.attributes)

    def renamed(self, new_name: str, prefix: str) -> tuple["RelationSchema", dict[str, str]]:
        """Renaming operator: fresh schema with ``prefix``-qualified names.

        Returns the renamed schema and the old-name -> new-name mapping.
        """
        mapping = {a.name: f"{prefix}{a.name}" for a in self.attributes}
        renamed_attrs = [a.renamed(mapping[a.name]) for a in self.attributes]
        return RelationSchema(new_name, renamed_attrs), mapping

    def project(self, names: Iterable[str], new_name: str | None = None) -> "RelationSchema":
        """Schema of a projection onto *names* (order follows *names*)."""
        attrs = [self.attribute(n) for n in names]
        return RelationSchema(new_name or self.name, attrs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self.name == other.name and self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash((self.name, self.attributes))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(a) for a in self.attributes)
        return f"{self.name}({inner})"


class DatabaseSchema:
    """A collection of relation schemas, addressable by name."""

    __slots__ = ("relations",)

    def __init__(self, relations: Iterable[RelationSchema]) -> None:
        rels = list(relations)
        names = [r.name for r in rels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate relation names: {names}")
        self.relations: dict[str, RelationSchema] = {r.name: r for r in rels}

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def relation(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(
                f"database schema has no relation {name!r}; "
                f"relations are {sorted(self.relations)}"
            ) from None

    def has_finite_domain_attribute(self) -> bool:
        return any(r.has_finite_domain_attribute() for r in self)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DatabaseSchema({list(self.relations.values())!r})"


def attributes_of(schema: RelationSchema | Mapping[str, Domain]) -> dict[str, Domain]:
    """Normalize a schema-ish object to a name -> domain mapping."""
    if isinstance(schema, RelationSchema):
        return {a.name: a.domain for a in schema.attributes}
    return dict(schema)
