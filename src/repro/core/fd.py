"""Traditional functional dependencies and their classical machinery.

FDs are the degenerate case of CFDs whose pattern tuples are all wildcards,
but the classical FD algorithms (attribute closure, implication, minimal
cover, full closure) are needed independently:

- as source dependencies for "propagation from FDs to CFDs" (Section 3.1),
- as the baseline formalism of Table 2, and
- for the textbook closure-based cover method the paper argues against
  (Section 4.1 / ``repro.propagation.closure_baseline``).
"""

from __future__ import annotations

from collections import namedtuple
from dataclasses import dataclass
from itertools import combinations
from typing import AbstractSet, Iterable, Sequence

from .lru import LRUCache


@dataclass(frozen=True)
class FD:
    """A functional dependency ``relation: X -> Y``.

    ``lhs`` and ``rhs`` are stored as sorted tuples of attribute names so
    that equal dependencies compare and hash equal.
    """

    relation: str
    lhs: tuple[str, ...]
    rhs: tuple[str, ...]

    def __init__(self, relation: str, lhs: Iterable[str], rhs: Iterable[str] | str) -> None:
        if isinstance(rhs, str):
            rhs = (rhs,)
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", tuple(sorted(set(lhs))))
        object.__setattr__(self, "rhs", tuple(sorted(set(rhs))))
        if not self.rhs:
            raise ValueError("an FD needs a nonempty right-hand side")
        object.__setattr__(
            self, "_hash", hash((self.relation, self.lhs, self.rhs))
        )

    def __hash__(self) -> int:
        # Matches the frozen-dataclass derivation over the compared
        # fields, but precomputed: FDs live inside frozenset cache keys
        # that the engine hashes millions of times.
        return self._hash

    @property
    def attributes(self) -> frozenset[str]:
        return frozenset(self.lhs) | frozenset(self.rhs)

    def is_trivial(self) -> bool:
        """True iff ``rhs`` is contained in ``lhs``."""
        return set(self.rhs) <= set(self.lhs)

    def split(self) -> list["FD"]:
        """Normal form: one FD per RHS attribute."""
        return [FD(self.relation, self.lhs, (b,)) for b in self.rhs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lhs = ",".join(self.lhs) or "()"
        rhs = ",".join(self.rhs)
        return f"{self.relation}({lhs} -> {rhs})"


def attribute_closure(
    attrs: Iterable[str], fds: Iterable[FD], use_cache: bool = True
) -> frozenset[str]:
    """The closure ``X+`` of an attribute set under a set of FDs.

    Linear-time fixpoint: repeatedly add the RHS of every FD whose LHS is
    already contained in the closure.  All FDs are assumed to live on the
    same relation; callers filter by relation name first.

    Results are memoized keyed on the frozen LHS plus a fingerprint of the
    FD set (the set itself, order-insensitive), so changing Sigma in any
    way reaches a different cache line.  The memo is LRU-bounded
    (:class:`~repro.core.lru.LRUCache`) so batch workloads with unbounded
    Sigma/LHS diversity cannot grow it without limit; misses route
    through the configured kernel (``REPRO_KERNEL``) — the bit-packed
    fixpoint of :mod:`repro.kernel.closure` by default.
    ``use_cache=False`` bypasses both the memo and the kernel (the
    ablation escape hatch and differential oracle); generators of FDs
    are consumed either way.
    """
    if use_cache:
        key = (frozenset(attrs), frozenset(fds))
        cached = _closure_memo.get(key, _MISSING)
        if cached is not _MISSING:
            return cached
        result = _closure_kernel(key[0], key[1])
        _closure_memo.put(key, result)
        return result
    return _closure_fixpoint(attrs, fds)


_MISSING = object()

#: The bounded attribute-closure memo.  65536 lines matches the bound the
#: old ``functools.lru_cache`` carried; the LRUCache exposes the hit/miss
#: telemetry the engine folds into ``EngineStats``.
_closure_memo: LRUCache = LRUCache(65536)

CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


def _closure_kernel(attrs: frozenset[str], fds: frozenset[FD]) -> frozenset[str]:
    from ..kernel.closure import bitset_closure
    from ..kernel.config import resolve_kernel

    if resolve_kernel() == "bitset":
        return bitset_closure(attrs, fds)
    return _closure_fixpoint(attrs, fds)


def closure_cache_info() -> CacheInfo:
    """Hit/miss statistics of the attribute-closure memo (for tests/stats)."""
    return CacheInfo(
        hits=_closure_memo.hits,
        misses=_closure_memo.misses,
        maxsize=_closure_memo.capacity,
        currsize=len(_closure_memo),
    )


def clear_closure_cache() -> None:
    """Drop every memoized attribute closure (counters keep running)."""
    _closure_memo.clear()


def _closure_fixpoint(attrs: Iterable[str], fds: Iterable[FD]) -> frozenset[str]:
    closure = set(attrs)
    pending = list(fds)
    changed = True
    while changed:
        changed = False
        remaining: list[FD] = []
        for fd in pending:
            if set(fd.lhs) <= closure:
                before = len(closure)
                closure.update(fd.rhs)
                if len(closure) != before:
                    changed = True
            else:
                remaining.append(fd)
        pending = remaining
    return frozenset(closure)


def implies(fds: Iterable[FD], fd: FD) -> bool:
    """Whether a set of FDs implies *fd* (all on ``fd.relation``)."""
    same_relation = [f for f in fds if f.relation == fd.relation]
    return set(fd.rhs) <= attribute_closure(fd.lhs, same_relation)


def equivalent(first: Iterable[FD], second: Iterable[FD]) -> bool:
    """Whether two FD sets imply each other."""
    first = list(first)
    second = list(second)
    return all(implies(second, f) for f in first) and all(
        implies(first, f) for f in second
    )


def minimal_cover(fds: Iterable[FD]) -> list[FD]:
    """A minimal cover in the classical sense.

    Splits RHSs, removes extraneous LHS attributes, then removes redundant
    FDs.  Deterministic: processes dependencies in sorted order.
    """
    current: list[FD] = []
    for fd in fds:
        current.extend(f for f in fd.split() if not f.is_trivial())
    current = sorted(set(current), key=repr)

    # Remove extraneous LHS attributes.
    reduced: list[FD] = []
    for fd in current:
        lhs = list(fd.lhs)
        for attr in list(lhs):
            if len(lhs) <= 1:
                break
            trial = [a for a in lhs if a != attr]
            if implies(current, FD(fd.relation, trial, fd.rhs)):
                lhs = trial
        reduced.append(FD(fd.relation, lhs, fd.rhs))
    current = reduced

    # Remove redundant FDs.
    result = list(current)
    for fd in list(current):
        rest = [f for f in result if f != fd]
        if fd in result and implies(rest, fd):
            result = rest
    return result


def fd_closure(
    relation: str,
    attributes: Sequence[str],
    fds: Iterable[FD],
    max_lhs: int | None = None,
) -> list[FD]:
    """The full closure ``F+`` restricted to nontrivial, single-RHS FDs.

    This is the exponential object underlying the textbook propagation-cover
    method (compute ``F+``, project): it enumerates every LHS subset of
    *attributes* (optionally capped at ``max_lhs`` attributes) and takes
    its attribute closure.  Kept deliberately naive — it is the baseline the
    paper's Example 4.1 and Section 4.1 discuss, and the ablation benchmark
    measures its blow-up against RBR.  The closure memo is bypassed here
    for the same reason: a cached baseline would measure dict lookups, not
    the method (and would flood the memo with 2^n throwaway lines).
    """
    fds = [f for f in fds if f.relation == relation]
    result: list[FD] = []
    attrs = sorted(set(attributes))
    top = len(attrs) if max_lhs is None else min(max_lhs, len(attrs))
    for size in range(top + 1):
        for lhs in combinations(attrs, size):
            closed = attribute_closure(lhs, fds, use_cache=False)
            for b in sorted(closed - set(lhs)):
                result.append(FD(relation, lhs, (b,)))
    return result


def project_fds(
    fds: Iterable[FD], attributes: AbstractSet[str], relation: str | None = None
) -> list[FD]:
    """Keep only FDs whose attributes all lie within *attributes*.

    The second half of the textbook method: project ``F+`` onto the view
    schema.
    """
    kept = []
    for fd in fds:
        if fd.attributes <= attributes:
            if relation is None:
                kept.append(fd)
            else:
                kept.append(FD(relation, fd.lhs, fd.rhs))
    return kept
