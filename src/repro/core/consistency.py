"""CFD consistency (satisfiability).

A set of CFDs is *consistent* if some nonempty instance satisfies it
(Section 3.3).  Unlike traditional FDs — always satisfiable — CFDs can
contradict each other through their constants: ``(A -> A, (_ || a))`` and
``(A -> A, (_ || b))`` with ``a != b`` admit no nonempty instance.

The test chases a single fully-variable tuple: pair rules are vacuous on a
singleton, so the tuple survives iff the unary (constant-forcing)
consequences of the CFDs are conflict-free.  Infinite domains: one chase
(PTIME).  General setting: one chase per finite-domain instantiation, and
the set is consistent iff *some* instantiation survives (the NP
procedure of [8], reproduced for Theorem 3.7's lower-bound discussion).
"""

from __future__ import annotations

from typing import Any, Iterable

from .cfd import CFD
from .chase import (
    ChaseStatus,
    SymbolicInstance,
    VarFactory,
    chase_with_instantiations,
    premise_positions,
)
from .domains import Domain, STRING
from .schema import RelationSchema


def _attribute_universe(
    relation: str, sigma: Iterable[CFD], schema: RelationSchema | None
) -> dict[str, Domain]:
    if schema is not None:
        return {a.name: a.domain for a in schema.attributes}
    names: set[str] = set()
    for dep in sigma:
        if dep.relation == relation:
            names.update(dep.attributes)
    return {name: STRING for name in sorted(names)}


def is_consistent(
    sigma: Iterable[CFD],
    relation: str | None = None,
    schema: RelationSchema | None = None,
    max_instantiations: int | None = None,
) -> bool:
    """Whether a nonempty instance satisfying *sigma* exists.

    With several relations involved, each relation is tested separately
    (CFDs never cross relations) and all must be satisfiable.
    """
    sigma = list(sigma)
    relations = {relation} if relation else {dep.relation for dep in sigma}
    for rel in sorted(relations):
        deps = [dep for dep in sigma if dep.relation == rel]
        if not _relation_consistent(rel, deps, schema, max_instantiations):
            return False
    return True


def _relation_consistent(
    relation: str,
    sigma: list[CFD],
    schema: RelationSchema | None,
    max_instantiations: int | None,
) -> bool:
    factory = VarFactory()
    instance = SymbolicInstance()
    universe = _attribute_universe(relation, sigma, schema)
    instance.add_tuple(
        relation, {name: factory.fresh(domain) for name, domain in universe.items()}
    )
    for result in chase_with_instantiations(
        instance,
        sigma,
        limit=max_instantiations,
        positions=premise_positions(sigma),
    ):
        if result.status is ChaseStatus.SATISFIABLE:
            return True
    return False


def witness_tuple(
    sigma: Iterable[CFD],
    relation: str,
    schema: RelationSchema | None = None,
) -> dict[str, Any] | None:
    """A concrete tuple satisfying *sigma* on *relation*, or ``None``.

    Useful for tests and for the instance generator: the surviving chase
    tableau instantiated with fresh constants.
    """
    sigma = [dep for dep in sigma if dep.relation == relation]
    factory = VarFactory()
    instance = SymbolicInstance()
    universe = _attribute_universe(relation, sigma, schema)
    instance.add_tuple(
        relation, {name: factory.fresh(domain) for name, domain in universe.items()}
    )
    for result in chase_with_instantiations(
        instance, sigma, positions=premise_positions(sigma)
    ):
        if result.status is ChaseStatus.SATISFIABLE:
            concrete = result.instance.instantiate().concrete()
            return concrete[relation][0]
    return None
