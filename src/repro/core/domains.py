"""Attribute domains.

The paper's complexity results split on a single schema property: whether
attributes with a *finite* domain (Boolean, date, enumerations, ...) may be
present.  In the *infinite-domain setting* propagation via SPCU views is in
PTIME; in the *general setting* it becomes coNP-complete (Theorems 3.1-3.3).

``Domain`` captures both cases.  An infinite domain only needs to hand out
arbitrarily many fresh constants (for chase counterexample construction);
a finite domain enumerates its values so the coNP procedures can instantiate
chase variables over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence


@dataclass(frozen=True)
class Domain:
    """An attribute domain, either infinite or finite.

    Parameters
    ----------
    name:
        Human-readable name, e.g. ``"string"`` or ``"bool"``.
    values:
        For a finite domain, the tuple of all domain values.  ``None`` means
        the domain is infinite.
    """

    name: str
    values: tuple[Any, ...] | None = None

    def __post_init__(self) -> None:
        if self.values is not None and len(self.values) == 0:
            raise ValueError("a finite domain must have at least one value")
        if self.values is not None and len(set(self.values)) != len(self.values):
            raise ValueError("finite domain values must be distinct")

    @property
    def is_finite(self) -> bool:
        return self.values is not None

    @property
    def size(self) -> int:
        """Number of values; raises for infinite domains."""
        if self.values is None:
            raise ValueError(f"domain {self.name!r} is infinite")
        return len(self.values)

    def __contains__(self, value: Any) -> bool:
        if self.values is None:
            return True
        return value in self.values

    def __iter__(self) -> Iterator[Any]:
        if self.values is None:
            raise ValueError(f"cannot enumerate infinite domain {self.name!r}")
        return iter(self.values)

    def fresh_constants(self, count: int, taken: Sequence[Any] = ()) -> list[Any]:
        """Return *count* domain values distinct from each other and *taken*.

        For infinite domains fresh constants always exist; for finite
        domains a ``ValueError`` is raised when the domain is exhausted
        (callers in the general-setting procedures enumerate instead).
        """
        taken_set = set(taken)
        result: list[Any] = []
        if self.values is None:
            i = 0
            while len(result) < count:
                candidate = f"${self.name}#{i}"
                if candidate not in taken_set:
                    result.append(candidate)
                    taken_set.add(candidate)
                i += 1
            return result
        for candidate in self.values:
            if len(result) == count:
                break
            if candidate not in taken_set:
                result.append(candidate)
                taken_set.add(candidate)
        if len(result) < count:
            raise ValueError(
                f"finite domain {self.name!r} has no {count} fresh values "
                f"outside {sorted(map(repr, taken_set))}"
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.values is None:
            return f"Domain({self.name!r})"
        return f"Domain({self.name!r}, {self.values!r})"


#: The default infinite domains used throughout the paper's examples.
STRING = Domain("string")
INT = Domain("int")
REAL = Domain("real")

#: Stock finite domains.
BOOL = Domain("bool", (False, True))


def finite(name: str, values: Sequence[Any]) -> Domain:
    """Convenience constructor for a finite domain."""
    return Domain(name, tuple(values))
