"""A capacity-bounded least-recently-used map with telemetry counters.

Lives in :mod:`repro.core` (dependency-free) so that core modules —
the attribute-closure memo in :mod:`repro.core.fd`, the kernel's
compiled-program caches — can bound their memos without importing the
propagation layer.  :mod:`repro.propagation.cache` re-exports it as the
engine's in-memory cache tier; see that module for how the counters fold
into :class:`~repro.propagation.engine.EngineStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """A least-recently-used map with telemetry counters.

    ``capacity=None`` means unbounded (no eviction ever).  ``get`` bumps
    recency and counts a hit or miss; ``put`` inserts or refreshes and
    evicts the least recently used entry once the capacity is exceeded,
    counting each eviction.  ``__contains__`` and ``clear`` touch neither
    recency nor counters — counters describe *lookup traffic*, and they
    survive ``clear`` the same way engine stats survive
    :meth:`~repro.propagation.engine.PropagationEngine.clear`.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"LRU capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()

    def get(self, key: Any, default: Any = None) -> Any:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Any, value: Any) -> None:
        if key in self._data:
            self._data[key] = value
            self._data.move_to_end(key)
            return
        self._data[key] = value
        if self.capacity is not None and len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def keys(self):
        """Keys from least to most recently used (eviction order)."""
        return list(self._data.keys())

    def values(self):
        """Values from least to most recently used (no recency change)."""
        return list(self._data.values())

    def discard(self, key: Any) -> bool:
        """Drop *key* if present (invalidation — not counted as eviction).

        Evictions count capacity pressure; discards are deliberate
        invalidation (``engine.invalidate_relations``) and are reported
        by their caller instead.
        """
        return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        self._data.clear()

    def __contains__(self, key: Any) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.capacity is None else self.capacity
        return (
            f"LRUCache(len={len(self._data)}/{cap}, "
            f"{self.hits}h/{self.misses}m, evictions={self.evictions})"
        )
