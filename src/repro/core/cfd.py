"""Conditional functional dependencies (Definition 2.1).

A CFD ``R(X -> Y, tp)`` is an embedded FD ``X -> Y`` plus a pattern tuple
``tp`` over ``X`` and ``Y`` whose entries are constants or the unnamed
variable ``'_'``.  View CFDs may additionally take the special equality form
``R(A -> B, (x || x))``, which asserts ``t[A] = t[B]`` for every tuple and
encodes the selection conditions of SPC views in the same framework.

Semantics (Section 2.1): an instance ``D`` satisfies ``phi`` iff for every
pair of tuples ``t1, t2`` (the pair ``t1 = t2`` included), whenever
``t1[X] = t2[X]`` and both match ``tp[X]``, then ``t1[Y] = t2[Y]`` and both
match ``tp[Y]``.  Including the identical pair is what gives constant-RHS
CFDs their single-tuple force: a lone tuple matching ``tp[X]`` must already
carry the constants of ``tp[Y]``.

Construction convenience: pattern entries may be given as raw values (which
are wrapped as constants), as the string ``"_"`` (wildcard), or as the
``PatternValue`` objects of :mod:`repro.core.values`.  To express a genuine
constant underscore use ``Const("_")`` explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from .fd import FD
from .values import (
    Const,
    PatternValue,
    SPECIAL,
    WILDCARD,
    const,
    is_const,
    is_special,
    is_wildcard,
    matches,
    meet,
    value_matches,
)

PatternItems = tuple[tuple[str, PatternValue], ...]


def _coerce(entry: Any) -> PatternValue:
    if isinstance(entry, (Const,)) or is_wildcard(entry) or is_special(entry):
        return entry
    if entry == "_":
        return WILDCARD
    return const(entry)


def _as_items(pattern: Mapping[str, Any] | Iterable[tuple[str, Any]]) -> PatternItems:
    if isinstance(pattern, Mapping):
        pairs = pattern.items()
    else:
        pairs = pattern
    items = tuple(sorted((name, _coerce(entry)) for name, entry in pairs))
    names = [name for name, _ in items]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate attributes in pattern: {names}")
    return items


@dataclass(frozen=True)
class CFD:
    """A conditional functional dependency in general or normal form.

    Attributes
    ----------
    relation:
        Name of the relation (or view) schema the CFD is defined on.
    lhs:
        Sorted ``(attribute, pattern entry)`` pairs for ``X``.
    rhs:
        Sorted ``(attribute, pattern entry)`` pairs for ``Y``; normal form
        has exactly one pair.
    """

    relation: str
    lhs: PatternItems
    rhs: PatternItems

    def __init__(
        self,
        relation: str,
        lhs: Mapping[str, Any] | Iterable[tuple[str, Any]],
        rhs: Mapping[str, Any] | Iterable[tuple[str, Any]],
    ) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", _as_items(lhs))
        object.__setattr__(self, "rhs", _as_items(rhs))
        if not self.rhs:
            raise ValueError("a CFD needs a nonempty right-hand side")
        special_l = [v for _, v in self.lhs if is_special(v)]
        special_r = [v for _, v in self.rhs if is_special(v)]
        if special_l or special_r:
            if not (
                len(self.lhs) == 1
                and len(self.rhs) == 1
                and special_l
                and special_r
            ):
                raise ValueError(
                    "the special variable x may only appear in the "
                    "equality form R(A -> B, (x || x))"
                )
        # Hot-path caches (reasoning code touches these millions of times).
        object.__setattr__(self, "_lhs_attrs", tuple(n for n, _ in self.lhs))
        object.__setattr__(self, "_rhs_attrs", tuple(n for n, _ in self.rhs))
        object.__setattr__(
            self,
            "_attributes",
            frozenset(self._lhs_attrs) | frozenset(self._rhs_attrs),
        )
        object.__setattr__(self, "_lhs_map", dict(self.lhs))
        object.__setattr__(
            self, "_is_equality", len(self.rhs) == 1 and bool(special_r)
        )
        if len(self.rhs) == 1:
            object.__setattr__(self, "_rhs_attr", self.rhs[0][0])
            object.__setattr__(self, "_rhs_entry", self.rhs[0][1])
        else:
            object.__setattr__(self, "_rhs_attr", None)
            object.__setattr__(self, "_rhs_entry", None)
        object.__setattr__(
            self, "_hash", hash((self.relation, self.lhs, self.rhs))
        )

    def __hash__(self) -> int:
        # Matches the frozen-dataclass derivation over the compared
        # fields, but precomputed: CFDs live inside frozenset cache keys
        # that the engine hashes millions of times.
        return self._hash

    # ------------------------------------------------------------------
    # Constructors for the common shapes.
    # ------------------------------------------------------------------

    @classmethod
    def equality(cls, relation: str, a: str, b: str) -> "CFD":
        """The view CFD ``R(A -> B, (x || x))`` asserting ``A = B``."""
        return cls(relation, {a: SPECIAL}, {b: SPECIAL})

    @classmethod
    def constant(cls, relation: str, attribute: str, value: Any) -> "CFD":
        """The CFD ``R(A -> A, (_ || a))`` asserting ``A = 'a'`` everywhere."""
        return cls(relation, {attribute: WILDCARD}, {attribute: value})

    @classmethod
    def from_fd(cls, fd: FD) -> "CFD":
        """Embed a traditional FD as a CFD with an all-wildcard pattern."""
        return cls(
            fd.relation,
            {a: WILDCARD for a in fd.lhs},
            {b: WILDCARD for b in fd.rhs},
        )

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def lhs_attrs(self) -> tuple[str, ...]:
        return self._lhs_attrs  # type: ignore[attr-defined]

    @property
    def rhs_attrs(self) -> tuple[str, ...]:
        return self._rhs_attrs  # type: ignore[attr-defined]

    @property
    def attributes(self) -> frozenset[str]:
        return self._attributes  # type: ignore[attr-defined]

    def lhs_entry(self, attribute: str) -> PatternValue:
        try:
            return self._lhs_map[attribute]  # type: ignore[attr-defined]
        except KeyError:
            raise KeyError(attribute) from None

    @property
    def rhs_attr(self) -> str:
        """The single RHS attribute; requires normal form."""
        attr = self._rhs_attr  # type: ignore[attr-defined]
        if attr is None:
            raise ValueError(f"CFD {self} is not in normal form")
        return attr

    @property
    def rhs_entry(self) -> PatternValue:
        """The single RHS pattern entry; requires normal form."""
        entry = self._rhs_entry  # type: ignore[attr-defined]
        if entry is None:
            raise ValueError(f"CFD {self} is not in normal form")
        return entry

    @property
    def is_equality(self) -> bool:
        """Whether this is the special ``(x || x)`` equality form."""
        return self._is_equality  # type: ignore[attr-defined]

    @property
    def is_normal_form(self) -> bool:
        return len(self.rhs) == 1

    def embedded_fd(self) -> FD:
        """The standard FD embedded in this CFD."""
        return FD(self.relation, self.lhs_attrs, self.rhs_attrs)

    def is_constant_cfd(self) -> bool:
        """Whether the CFD forces a constant on every tuple it applies to.

        True for normal-form CFDs whose RHS entry is a constant and whose
        LHS entries are all wildcards — e.g. ``(A -> A, (_ || a))`` — which
        act as global domain constraints (Section 3.3, Example 3.1).
        """
        if not self.is_normal_form or not is_const(self.rhs_entry):
            return False
        return all(is_wildcard(v) for _, v in self.lhs)

    # ------------------------------------------------------------------
    # Structural properties.
    # ------------------------------------------------------------------

    def normalize(self) -> list["CFD"]:
        """Equivalent set of normal-form (single-RHS-attribute) CFDs."""
        if self.is_normal_form:
            return [self]
        return [CFD(self.relation, dict(self.lhs), {name: entry}) for name, entry in self.rhs]

    def is_trivial(self) -> bool:
        """Triviality per Section 4.1.

        A normal-form CFD ``(X -> A, tp)`` is trivial iff ``A`` occurs in
        ``X`` and either the two pattern entries for ``A`` are equal, or
        the LHS entry is a constant while the RHS entry is ``'_'``.
        Note ``(A -> A, (_ || a))`` is *not* trivial: it forces a constant.
        The equality form is trivial only when both sides name the same
        attribute.
        """
        if self.is_equality:
            return self.lhs[0][0] == self.rhs[0][0]
        if not self.is_normal_form:
            return all(
                CFD(self.relation, dict(self.lhs), {n: e}).is_trivial()
                for n, e in self.rhs
            )
        a = self.rhs_attr
        if a not in self.lhs_attrs:
            return False
        eta1 = self.lhs_entry(a)
        eta2 = self.rhs_entry
        if eta1 == eta2:
            return True
        return is_const(eta1) and is_wildcard(eta2)

    def simplified(self) -> "CFD":
        """Canonical rewrite of self-referential constant CFDs.

        ``(X A -> A, (tx, _ || a))`` is equivalent to ``(X -> A, (tx || a))``:
        any tuple matching ``tx`` pairs with itself, so the constant is
        forced without consulting ``A`` on the left.  Normal-form CFDs not
        of this shape are returned unchanged.  The rewrite keeps procedure
        RBR's resolvents in a form whose LHS never mentions the attribute
        being dropped (Section 4.2's point (b) about ``AX -> A`` CFDs).
        """
        if not self.is_normal_form or self.is_equality:
            return self
        a = self.rhs_attr
        if a not in self.lhs_attrs:
            return self
        if is_wildcard(self.lhs_entry(a)) and is_const(self.rhs_entry):
            return self.drop_lhs_attribute(a)
        return self

    # ------------------------------------------------------------------
    # Satisfaction.
    # ------------------------------------------------------------------

    def holds_on(self, tuples: Iterable[Mapping[str, Any]]) -> bool:
        """Whether every tuple collection satisfies this CFD.

        *tuples* is any iterable of attribute-name -> value mappings.
        """
        return not any(True for _ in self.violations(tuples))

    def violations(
        self, tuples: Iterable[Mapping[str, Any]]
    ) -> Iterable[tuple[Mapping[str, Any], ...]]:
        """Yield witnesses of violation.

        For the equality form and for single-tuple (constant RHS) failures
        the witness is a 1-tuple; for embedded-FD failures it is a pair.
        """
        tuples = list(tuples)
        if self.is_equality:
            a = self.lhs[0][0]
            b = self.rhs[0][0]
            for t in tuples:
                if t[a] != t[b]:
                    yield (t,)
            return

        lhs = self.lhs
        rhs = self.rhs
        # Single-tuple check: a matching tuple must carry the RHS constants.
        groups: dict[tuple[Any, ...], list[Mapping[str, Any]]] = {}
        for t in tuples:
            if all(value_matches(t[name], entry) for name, entry in lhs):
                if not all(value_matches(t[name], entry) for name, entry in rhs):
                    yield (t,)
                    continue
                key = tuple(t[name] for name, _ in lhs)
                groups.setdefault(key, []).append(t)
        # Pair check: within a matching group all RHS values agree.
        for group in groups.values():
            first = group[0]
            for other in group[1:]:
                if any(first[name] != other[name] for name, _ in rhs):
                    yield (first, other)

    # ------------------------------------------------------------------
    # Attribute surgery (used by PropCFD_SPC).
    # ------------------------------------------------------------------

    def rename(self, mapping: Mapping[str, str], relation: str | None = None) -> "CFD":
        """Rename attributes via *mapping* (identity for absent names)."""
        new_lhs = {mapping.get(n, n): e for n, e in self.lhs}
        new_rhs = {mapping.get(n, n): e for n, e in self.rhs}
        if len(new_lhs) != len(self.lhs) or len(new_rhs) != len(self.rhs):
            raise ValueError(f"renaming {mapping} collapses attributes of {self}")
        return CFD(relation or self.relation, new_lhs, new_rhs)

    def substitute(self, old: str, new: str) -> "CFD | None":
        """Replace attribute *old* by *new* (Lemma 4.3 substitution).

        If *new* already occurs on the same side, the two pattern entries
        are merged with ``meet``; when the meet is undefined the CFD can
        never fire on the constrained view and ``None`` is returned.
        """
        if old == new:
            return self

        def merge(items: PatternItems) -> dict[str, PatternValue] | None:
            out: dict[str, PatternValue] = {}
            for name, entry in items:
                name = new if name == old else name
                if name in out:
                    merged = meet(out[name], entry)
                    if merged is None:
                        return None
                    out[name] = merged
                else:
                    out[name] = entry
            return out

        lhs = merge(self.lhs)
        rhs = merge(self.rhs)
        if lhs is None or rhs is None:
            return None
        return CFD(self.relation, lhs, rhs)

    def drop_lhs_attribute(self, attribute: str) -> "CFD":
        """The CFD with *attribute* removed from the LHS (pattern included)."""
        remaining = {n: e for n, e in self.lhs if n != attribute}
        return CFD(self.relation, remaining, dict(self.rhs))

    def with_relation(self, relation: str) -> "CFD":
        return CFD(relation, dict(self.lhs), dict(self.rhs))

    # ------------------------------------------------------------------

    def matches_lhs_pattern(self, other: "CFD") -> bool:
        """Whether the LHS patterns of two same-LHS CFDs are compatible."""
        if self.lhs_attrs != other.lhs_attrs:
            return False
        return all(
            matches(e1, e2)
            for (_, e1), (_, e2) in zip(self.lhs, other.lhs)
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lhs_names = ",".join(n for n, _ in self.lhs) or "()"
        rhs_names = ",".join(n for n, _ in self.rhs)
        lhs_pat = ",".join(repr(e) for _, e in self.lhs) or "()"
        rhs_pat = ",".join(repr(e) for _, e in self.rhs)
        return f"{self.relation}([{lhs_names}] -> [{rhs_names}], ({lhs_pat} || {rhs_pat}))"
