"""CFD implication: ``Sigma |= phi``.

Implication is the degenerate propagation problem where the view is the
identity mapping (Corollary 3.6).  In the infinite-domain setting it is
decidable in quadratic time [Fan et al., TODS]; with finite-domain
attributes it is coNP-complete.  Both procedures here are chase-based:

1. Build the *canonical 2-tuple instance* for ``phi = (X -> A, tp)``:
   two tuples over ``R`` that share a value on every ``X`` attribute
   (the pattern constant when ``tp[X]`` gives one, a shared variable
   otherwise) and carry fresh distinct variables elsewhere.
2. Chase with ``Sigma``.
3. ``Sigma |= phi`` iff the chase is undefined (no pair of tuples can
   match the premise in any instance satisfying ``Sigma`` — vacuous
   implication) or the chase forces the two RHS cells to be equal and,
   when ``tp[A]`` is a constant, equal to it.

The general setting wraps step 2-3 in an enumeration over instantiations
of finite-domain variables: ``Sigma |= phi`` iff *every* instantiation
passes.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from .cfd import CFD
from .fd import FD
from .chase import (
    ChaseStatus,
    SymbolicInstance,
    SymVar,
    Value,
    VarFactory,
    chase,
    chase_with_instantiations,
    premise_positions,
)
from .domains import Domain, STRING
from .schema import RelationSchema
from .values import Const, is_const, is_wildcard, leq


def _domain_of(schema: RelationSchema | None, attribute: str) -> Domain:
    if schema is None:
        return STRING
    return schema.domain_of(attribute)


def _attributes_for(
    phi: CFD, sigma: Iterable[CFD], schema: RelationSchema | None
) -> list[str]:
    """The attribute universe the canonical instance must cover."""
    if schema is not None:
        return list(schema.attribute_names)
    names: set[str] = set(phi.attributes)
    for dep in sigma:
        if dep.relation == phi.relation:
            names.update(dep.attributes)
    return sorted(names)


def canonical_pair_instance(
    phi: CFD,
    sigma: Iterable[CFD],
    schema: RelationSchema | None = None,
) -> tuple[SymbolicInstance, dict[str, Value], dict[str, Value]]:
    """The 2-tuple instance encoding a hypothetical violation of *phi*.

    Returns the instance together with the two rows (shared references, so
    chase results are observable through them).
    """
    factory = VarFactory()
    instance = SymbolicInstance()
    attributes = _attributes_for(phi, sigma, schema)
    lhs = dict(phi.lhs)

    row1: dict[str, Value] = {}
    row2: dict[str, Value] = {}
    for name in attributes:
        domain = _domain_of(schema, name)
        entry = lhs.get(name)
        if entry is not None and is_const(entry):
            row1[name] = entry.value
            row2[name] = entry.value
        elif entry is not None and is_wildcard(entry):
            shared = factory.fresh(domain)
            row1[name] = shared
            row2[name] = shared
        else:
            row1[name] = factory.fresh(domain)
            row2[name] = factory.fresh(domain)
    stored1 = instance.add_tuple(phi.relation, row1)
    stored2 = instance.add_tuple(phi.relation, row2)
    return instance, stored1, stored2


def _pair_conclusion_holds(
    instance: SymbolicInstance,
    row1: Mapping[str, Value],
    row2: Mapping[str, Value],
    phi: CFD,
) -> bool:
    """After a successful chase, does the conclusion of *phi* hold by force?"""
    attr = phi.rhs_attr
    entry = phi.rhs_entry
    left = instance.resolve(row1[attr])
    right = instance.resolve(row2[attr])
    if left != right:
        return False
    if is_const(entry):
        return left == entry.value
    return True


def _equality_conclusion_holds(
    instance: SymbolicInstance, row: Mapping[str, Value], phi: CFD
) -> bool:
    a = phi.lhs[0][0]
    b = phi.rhs[0][0]
    return instance.resolve(row[a]) == instance.resolve(row[b])


def implies(
    sigma: Iterable[CFD],
    phi: CFD,
    schema: RelationSchema | None = None,
    max_instantiations: int | None = None,
) -> bool:
    """Decide ``Sigma |= phi``.

    With *schema* given, finite-domain attributes are honoured and the
    general-setting (coNP) procedure runs — exhaustively unless
    ``max_instantiations`` caps the enumeration, in which case the result
    is *sound for non-implication* (a found counterexample is real) but a
    ``True`` answer may be optimistic.  Without finite-domain attributes
    the single chase is both sound and complete (PTIME).

    Plain FDs are accepted on either side (embedded as all-wildcard
    CFDs), mirroring ``propagates``.
    """
    if isinstance(phi, FD):
        phi = CFD.from_fd(phi)
    sigma = [
        normal
        for dep in sigma
        if dep.relation == phi.relation
        for normal in (
            CFD.from_fd(dep) if isinstance(dep, FD) else dep
        ).normalize()
    ]
    fast_paths = schema is None or not schema.has_finite_domain_attribute()

    for normal_phi in phi.normalize():
        if normal_phi.is_trivial():
            continue
        if normal_phi.is_equality:
            implied = _implied_equality(
                sigma, normal_phi, schema, max_instantiations
            )
        else:
            relevant = sigma
            if fast_paths:
                quick, closure = _quick_verdict(sigma, normal_phi)
                if quick is not None:
                    if not quick:
                        return False
                    continue
                if closure is not None:
                    # Only rules that could ever fire in the canonical
                    # chase (see _fires_abstractly) can influence the
                    # outcome; drop the rest to keep the chase small.
                    relevant = [
                        dep
                        for dep in sigma
                        if _fires_abstractly(dep, closure)
                    ]
            implied = _implied_normal(
                relevant, normal_phi, schema, max_instantiations
            )
        if not implied:
            return False
    return True


def _quick_verdict(
    sigma: list[CFD], phi: CFD
) -> tuple[bool | None, frozenset[str] | None]:
    """Chase-free fast paths for the infinite-domain setting.

    Returns ``True``/``False`` only when the answer is certain; ``None``
    sends the query to the chase.  Two screens:

    *Subsumption* (fast True): some ``psi = (Z -> A, sp)`` with
    ``Z ⊆ X``, each ``tp[a] <= sp[a]`` on ``Z`` and ``sp[A] <= tp[A]``
    directly implies ``phi = (X -> A, tp)``.

    *Reachability* (fast False): the chase can only write to an attribute
    through a rule concluding it, and a rule only fires once all its LHS
    attributes are "active" (shared by the canonical pair or written).
    If ``A`` is unreachable from ``X`` at the attribute level and no pair
    of firable rules could force conflicting constants (which would make
    the premise unsatisfiable and the implication vacuous), the chase
    cannot identify the RHS cells, so ``phi`` is not implied.  Equality
    CFDs alias attributes and disable the screen.
    """
    lhs_attrs = set(phi.lhs_attrs)
    lhs = dict(phi.lhs)
    if any(dep.is_equality for dep in sigma):
        return None, None

    for dep in sigma:
        if dep.rhs_attr != phi.rhs_attr:
            continue
        if not set(dep.lhs_attrs) <= lhs_attrs:
            continue
        if not leq(dep.rhs_entry, phi.rhs_entry):
            continue
        if all(leq(lhs[a], e) for a, e in dep.lhs):
            return True, None

    closure = set(lhs_attrs)
    changed = True
    while changed:
        changed = False
        for dep in sigma:
            if dep.rhs_attr in closure:
                continue
            if _fires_abstractly(dep, closure):
                closure.add(dep.rhs_attr)
                changed = True
    frozen = frozenset(closure)
    if phi.rhs_attr in closure:
        return None, frozen

    constants: dict[str, set] = {}
    for attr, entry in phi.lhs:
        if is_const(entry):
            constants.setdefault(attr, set()).add(entry.value)
    for dep in sigma:
        if is_const(dep.rhs_entry) and _fires_abstractly(dep, closure):
            constants.setdefault(dep.rhs_attr, set()).add(dep.rhs_entry.value)
    if any(len(values) > 1 for values in constants.values()):
        return None, frozen  # a vacuous implication is possible; chase decides
    return False, frozen


def _fires_abstractly(dep: CFD, closure: set[str] | frozenset[str]) -> bool:
    """Attribute-level over-approximation of "this rule could fire".

    The single-tuple rule of a constant-RHS CFD places no requirement on
    wildcard LHS positions (any value matches), so only its constant LHS
    positions must be active.  The pair rule of a wildcard-RHS CFD needs
    forced equality on every LHS position, hence all of them active.
    """
    const_rhs = is_const(dep.rhs_entry)
    for attr, entry in dep.lhs:
        if const_rhs and is_wildcard(entry):
            continue
        if attr not in closure:
            return False
    return True


def _implied_normal(
    sigma: list[CFD],
    phi: CFD,
    schema: RelationSchema | None,
    max_instantiations: int | None,
) -> bool:
    instance, row1, row2 = canonical_pair_instance(phi, sigma, schema)
    rhs = phi.rhs_attr
    for result in chase_with_instantiations(
        instance,
        sigma,
        limit=max_instantiations,
        positions=premise_positions(sigma),
        extra_values=(row1[rhs], row2[rhs]),
    ):
        if result.status is ChaseStatus.UNDEFINED:
            continue
        # Re-check the premise: an instantiation may have broken the
        # forced equality of the X cells (e.g. a finite-domain variable
        # pair assigned different values cannot witness a violation) or
        # violated a constant in tp[X].
        if not _premise_survives(result.instance, phi):
            continue
        if not _pair_conclusion_holds(result.instance, row1, row2, phi):
            return False
    return True


def _premise_survives(instance: SymbolicInstance, phi: CFD) -> bool:
    rows = instance.rows(phi.relation)
    row1, row2 = rows[0], rows[1]
    for name, entry in phi.lhs:
        left = instance.resolve(row1[name])
        right = instance.resolve(row2[name])
        if left != right:
            return False
        if is_const(entry):
            assert isinstance(entry, Const)
            if not isinstance(left, SymVar) and left != entry.value:
                return False
    return True


def _implied_equality(
    sigma: list[CFD],
    phi: CFD,
    schema: RelationSchema | None,
    max_instantiations: int | None,
) -> bool:
    factory = VarFactory()
    instance = SymbolicInstance()
    attributes = _attributes_for(phi, sigma, schema)
    row = {
        name: factory.fresh(_domain_of(schema, name)) for name in attributes
    }
    stored = instance.add_tuple(phi.relation, row)
    a = phi.lhs[0][0]
    b = phi.rhs[0][0]
    for result in chase_with_instantiations(
        instance,
        sigma,
        limit=max_instantiations,
        positions=premise_positions(sigma),
        extra_values=(stored[a], stored[b]),
    ):
        if result.status is ChaseStatus.UNDEFINED:
            continue
        if not _equality_conclusion_holds(result.instance, stored, phi):
            return False
    return True


def equivalent(
    first: Iterable[CFD],
    second: Iterable[CFD],
    schema: RelationSchema | None = None,
) -> bool:
    """Whether two CFD sets imply each other."""
    first = list(first)
    second = list(second)
    return all(implies(second, phi, schema) for phi in first) and all(
        implies(first, phi, schema) for phi in second
    )
