"""Core formalism: domains, schemas, FDs, CFDs, the chase, implication.

This package implements the dependency theory of Sections 2 and the
decision procedures it rests on.  Everything else in :mod:`repro` (views,
propagation, generators) builds on these primitives.
"""

from .cfd import CFD
from .chase import (
    ChaseResult,
    ChaseStatus,
    SymbolicInstance,
    SymVar,
    VarFactory,
    chase,
    chase_with_instantiations,
)
from .consistency import is_consistent, witness_tuple
from .domains import BOOL, Domain, INT, REAL, STRING, finite
from .fd import FD, attribute_closure, fd_closure, minimal_cover, project_fds
from .fd import implies as fd_implies
from .implication import equivalent, implies
from .mincover import min_cover, partitioned_min_cover
from .schema import Attribute, DatabaseSchema, RelationSchema
from .values import (
    Const,
    PatternValue,
    SPECIAL,
    SpecialVar,
    WILDCARD,
    Wildcard,
    const,
    is_const,
    is_special,
    is_wildcard,
    leq,
    matches,
    meet,
    value_matches,
)

__all__ = [
    "Attribute",
    "BOOL",
    "CFD",
    "ChaseResult",
    "ChaseStatus",
    "Const",
    "DatabaseSchema",
    "Domain",
    "FD",
    "INT",
    "PatternValue",
    "REAL",
    "RelationSchema",
    "SPECIAL",
    "STRING",
    "SpecialVar",
    "SymVar",
    "SymbolicInstance",
    "VarFactory",
    "WILDCARD",
    "Wildcard",
    "attribute_closure",
    "chase",
    "chase_with_instantiations",
    "const",
    "equivalent",
    "fd_closure",
    "fd_implies",
    "finite",
    "implies",
    "is_const",
    "is_consistent",
    "is_special",
    "is_wildcard",
    "leq",
    "matches",
    "meet",
    "min_cover",
    "minimal_cover",
    "partitioned_min_cover",
    "project_fds",
    "value_matches",
    "witness_tuple",
]
