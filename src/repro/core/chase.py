"""The extended chase over symbolic instances.

Every decision procedure in the paper — CFD implication, consistency,
propagation via SPCU views (Theorems 3.1/3.5), emptiness (Theorems 3.7/3.8)
and their general-setting variants — reduces to running a *chase* over a
small symbolic instance whose cells are constants or ordered variables.

The chase rules are the two cases of the Theorem 3.7 proof:

- **Case 1** (RHS pattern ``'_'``): for tuples ``t, t'`` that agree on ``X``
  and (necessarily) match ``tp[X]``, equalize ``t[A]`` and ``t'[A]`` —
  merging two variables toward the smaller one, binding a variable to a
  constant, or failing on two distinct constants.
- **Case 2** (RHS pattern a constant ``a``): any tuple matching ``tp[X]``
  must have ``t[A] = a``; bind or fail.

A rule fires only when its premise is *forced*: a variable never matches a
constant pattern entry (it might take a different value), and two cells are
equal only when they resolve to the same variable or the same constant.
This is exactly what makes the final tableau instantiate to a satisfying
instance when the chase terminates without failure: assigning pairwise
distinct fresh constants to the surviving variables cannot trigger any CFD.

The chase terminates because every merge or binding strictly decreases the
number of distinct symbolic values; an undefined ("failed") chase means the
symbolic instance is unsatisfiable under the dependencies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .cfd import CFD
from .domains import Domain
from .values import Const, is_const, is_wildcard


@dataclass(frozen=True, slots=True, order=True)
class SymVar:
    """A chase variable with a total order (merge direction) and a domain."""

    id: int
    domain: Domain = field(compare=False, default=Domain("string"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"v{self.id}"


Value = Any  # SymVar or a plain constant


class VarFactory:
    """Hands out fresh, totally ordered chase variables."""

    def __init__(self) -> None:
        self._next = 0

    def fresh(self, domain: Domain) -> SymVar:
        var = SymVar(self._next, domain)
        self._next += 1
        return var


class ChaseStatus(Enum):
    """Outcome of a chase run."""

    SATISFIABLE = "satisfiable"
    UNDEFINED = "undefined"


class SymbolicInstance:
    """A multi-relation instance whose cells are constants or variables.

    Tuples are stored as attribute-name -> value dicts.  A substitution
    environment maps merged variables to their representatives; cells are
    read through :meth:`resolve`.
    """

    def __init__(self) -> None:
        self.relations: dict[str, list[dict[str, Value]]] = {}
        self._env: dict[SymVar, Value] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    def add_tuple(self, relation: str, row: Mapping[str, Value]) -> dict[str, Value]:
        """Store a tuple.  The stored dict must never be mutated afterwards
        (all later refinement goes through the substitution environment);
        :meth:`copy` relies on this to share rows between forks."""
        stored = dict(row)
        self.relations.setdefault(relation, []).append(stored)
        return stored

    def copy(self) -> "SymbolicInstance":
        """A fork of this instance sharing the row storage.

        Row dicts are immutable after :meth:`add_tuple` — every chase step
        mutates only the substitution environment — so copies share them
        structurally (hash-consed tuples) and fork only ``_env`` and the
        per-relation row *lists*.  This turns the copy done before every
        chase from O(cells) into O(rows + env), which is what makes the
        batch engine's cached-skeleton reuse cheap.
        """
        clone = SymbolicInstance()
        clone.relations = {rel: list(rows) for rel, rows in self.relations.items()}
        clone._env = dict(self._env)
        return clone

    # ------------------------------------------------------------------
    # Substitution environment.
    # ------------------------------------------------------------------

    def resolve(self, value: Value) -> Value:
        """Follow the substitution chain to the current representative."""
        seen = []
        while isinstance(value, SymVar) and value in self._env:
            seen.append(value)
            value = self._env[value]
        for var in seen[:-1]:
            self._env[var] = value
        return value

    def bind(self, var: SymVar, value: Value) -> None:
        self._env[var] = value

    def equate(self, left: Value, right: Value) -> bool:
        """Equalize two cells; return False when they are distinct constants.

        Variable-variable merges are directed toward the ``<``-smaller
        variable, matching the appendix ("let t[A] = t'[A] if
        t'[A] <= t[A]").
        """
        left = self.resolve(left)
        right = self.resolve(right)
        if left == right:
            return True
        left_var = isinstance(left, SymVar)
        right_var = isinstance(right, SymVar)
        if left_var and right_var:
            if right < left:
                self.bind(left, right)
            else:
                self.bind(right, left)
            return True
        if left_var:
            self.bind(left, right)
            return True
        if right_var:
            self.bind(right, left)
            return True
        return False

    # ------------------------------------------------------------------
    # Views of the data.
    # ------------------------------------------------------------------

    def rows(self, relation: str) -> list[dict[str, Value]]:
        return self.relations.get(relation, [])

    def resolved_row(self, row: Mapping[str, Value]) -> dict[str, Value]:
        return {name: self.resolve(value) for name, value in row.items()}

    def variables(self) -> list[SymVar]:
        """All distinct live (representative) variables, in order."""
        found: set[SymVar] = set()
        for rows in self.relations.values():
            for row in rows:
                for value in row.values():
                    value = self.resolve(value)
                    if isinstance(value, SymVar):
                        found.add(value)
        return sorted(found)

    def finite_domain_variables(self) -> list[SymVar]:
        return [v for v in self.variables() if v.domain.is_finite]

    def apply_assignment(self, assignment: Mapping[SymVar, Any]) -> None:
        for var, value in assignment.items():
            resolved = self.resolve(var)
            if isinstance(resolved, SymVar):
                self.bind(resolved, value)

    def instantiate(self, factory_prefix: str = "fresh") -> "SymbolicInstance":
        """Replace surviving variables by pairwise distinct fresh constants.

        Only valid after a successful chase; the result is a concrete
        instance (as a :class:`SymbolicInstance` whose cells are constants).
        Fresh constants are drawn per domain, avoiding constants already
        present anywhere in the instance.
        """
        taken: set[Any] = set()
        for rows in self.relations.values():
            for row in rows:
                for value in row.values():
                    value = self.resolve(value)
                    if not isinstance(value, SymVar):
                        taken.add(value)
        clone = self.copy()
        for var in clone.variables():
            if var.domain.is_finite:
                # Surviving finite-domain variables are unconstrained
                # (either the caller enumerated all premise positions, or
                # no dependency reads them): any domain value will do, and
                # distinctness is preferred but not required.
                remaining = [v for v in var.domain if v not in taken]
                fresh = remaining[0] if remaining else next(iter(var.domain))
            else:
                fresh = var.domain.fresh_constants(1, taken=list(taken))[0]
            taken.add(fresh)
            clone.bind(var, fresh)
        return clone

    def concrete(self) -> dict[str, list[dict[str, Any]]]:
        """Materialize fully resolved rows (must contain no variables)."""
        out: dict[str, list[dict[str, Any]]] = {}
        for rel, rows in self.relations.items():
            materialized = []
            for row in rows:
                resolved = self.resolved_row(row)
                if any(isinstance(v, SymVar) for v in resolved.values()):
                    raise ValueError("instance still contains variables")
                materialized.append(resolved)
            out[rel] = materialized
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for rel, rows in self.relations.items():
            rendered = ", ".join(str(self.resolved_row(r)) for r in rows)
            parts.append(f"{rel}: [{rendered}]")
        return "SymbolicInstance(" + "; ".join(parts) + ")"


def _premise_forced(
    instance: SymbolicInstance, row: Mapping[str, Value], cfd: CFD
) -> bool:
    """Whether *row* necessarily matches the LHS pattern of *cfd*.

    Constants must equal the pattern constant; variables match only the
    wildcard (they could take other values, so a rule must not fire).
    """
    for name, entry in cfd.lhs:
        if is_wildcard(entry):
            continue
        value = instance.resolve(row[name])
        if isinstance(value, SymVar):
            return False
        assert isinstance(entry, Const)
        if value != entry.value:
            return False
    return True


def _apply_cfd(instance: SymbolicInstance, cfd: CFD) -> tuple[bool, bool]:
    """Apply one normal-form CFD once; returns (changed, ok)."""
    changed = False

    if cfd.is_equality:
        a = cfd.lhs[0][0]
        b = cfd.rhs[0][0]
        for row in instance.rows(cfd.relation):
            left = instance.resolve(row[a])
            right = instance.resolve(row[b])
            if left != right:
                if not instance.equate(left, right):
                    return changed, False
                changed = True
        return changed, True

    rhs_attr = cfd.rhs_attr
    rhs_entry = cfd.rhs_entry
    matching: list[dict[str, Value]] = [
        row
        for row in instance.rows(cfd.relation)
        if _premise_forced(instance, row, cfd)
    ]

    if is_const(rhs_entry):
        # Case 2: single-tuple rule.
        target = rhs_entry.value
        for row in matching:
            value = instance.resolve(row[rhs_attr])
            if value == target:
                continue
            if isinstance(value, SymVar):
                instance.bind(value, target)
                changed = True
            else:
                return changed, False
        return changed, True

    # Case 1: pair rule.  Two rows agree on X only when their resolved X
    # cells are *identical* symbolic values (same variable or same
    # constant), so grouping by the resolved key captures exactly the
    # forced-equal pairs.
    groups: dict[tuple[Value, ...], dict[str, Value]] = {}
    for row in matching:
        key = tuple(instance.resolve(row[name]) for name, _ in cfd.lhs)
        anchor = groups.get(key)
        if anchor is None:
            groups[key] = row
            continue
        left = instance.resolve(anchor[rhs_attr])
        right = instance.resolve(row[rhs_attr])
        if left != right:
            if not instance.equate(left, right):
                return changed, False
            changed = True
    return changed, True


@dataclass
class ChaseResult:
    """Outcome of :func:`chase`: final instance plus status."""

    status: ChaseStatus
    instance: SymbolicInstance
    steps: int = 0

    @property
    def undefined(self) -> bool:
        return self.status is ChaseStatus.UNDEFINED


def chase(instance: SymbolicInstance, dependencies: Iterable[CFD]) -> ChaseResult:
    """Run the extended chase to fixpoint (mutates *instance*).

    *dependencies* may be general-form CFDs; they are normalized first.
    Returns :class:`ChaseResult`; status ``UNDEFINED`` means the symbolic
    instance cannot be realized under the dependencies.
    """
    normalized: list[CFD] = []
    for dep in dependencies:
        normalized.extend(dep.normalize())

    steps = 0
    changed = True
    while changed:
        changed = False
        for cfd in normalized:
            step_changed, ok = _apply_cfd(instance, cfd)
            steps += 1
            if not ok:
                return ChaseResult(ChaseStatus.UNDEFINED, instance, steps)
            if step_changed:
                changed = True
    return ChaseResult(ChaseStatus.SATISFIABLE, instance, steps)


def finite_domain_assignments(
    variables: Sequence[SymVar], limit: int | None = None
) -> Iterator[dict[SymVar, Any]]:
    """Enumerate all instantiations of finite-domain variables.

    This is the nondeterministic guess of the general-setting (coNP/NP)
    procedures, made deterministic by exhaustive enumeration.  ``limit``
    caps the number of assignments (the paper's heuristic escape hatch);
    ``None`` enumerates everything.
    """
    domains = [list(v.domain) for v in variables]
    count = 0
    for combo in itertools.product(*domains):
        if limit is not None and count >= limit:
            return
        count += 1
        yield dict(zip(variables, combo))


def premise_positions(dependencies: Iterable[CFD]) -> dict[str, set[str]]:
    """The (relation, attribute) positions read by some rule premise.

    Chase rules fire on LHS cells only (equality-form CFDs read both
    sides).  A finite-domain variable occurring exclusively outside these
    positions can never enable, disable, or fail a rule, so the
    general-setting enumeration need not branch on it.
    """
    positions: dict[str, set[str]] = {}
    for dep in dependencies:
        bucket = positions.setdefault(dep.relation, set())
        bucket.update(dep.lhs_attrs)
        if dep.is_equality:
            bucket.update(dep.rhs_attrs)
    return positions


def _branchable_variable(
    instance: SymbolicInstance,
    positions: dict[str, set[str]] | None,
    extra_values: Sequence[Value],
) -> SymVar | None:
    """The next finite-domain variable the enumeration must branch on."""
    if positions is None:
        finite_vars = instance.finite_domain_variables()
        return finite_vars[0] if finite_vars else None
    candidates: set[SymVar] = set()
    for rel, rows in instance.relations.items():
        watched = positions.get(rel)
        if not watched:
            continue
        for row in rows:
            for attr in watched:
                if attr not in row:
                    continue
                value = instance.resolve(row[attr])
                if isinstance(value, SymVar) and value.domain.is_finite:
                    candidates.add(value)
    for value in extra_values:
        value = instance.resolve(value)
        if isinstance(value, SymVar) and value.domain.is_finite:
            candidates.add(value)
    return min(candidates) if candidates else None


def chase_with_instantiations(
    instance: SymbolicInstance,
    dependencies: Iterable[CFD],
    limit: int | None = None,
    positions: dict[str, set[str]] | None = None,
    extra_values: Sequence[Value] = (),
    on_chase=None,
) -> Iterator[ChaseResult]:
    """Chase over every finite-domain instantiation, yielding survivors.

    Implements the general-setting guess-and-check procedures: conceptually
    one chase per total assignment of the finite-domain variables, with
    only the *satisfiable* outcomes yielded (undefined chases witness
    nothing, so every caller discards them).  When no finite-domain
    variables occur a single chase runs — the infinite-domain PTIME case.

    The enumeration backtracks instead of materializing the full
    cross-product: after each partial assignment the instance is chased,
    and a failed chase prunes every extension (chase derivations stay
    valid under specialization).  When *positions* is given (use
    :func:`premise_positions`), branching is further restricted to
    finite-domain variables occurring in rule-premise cells or among
    *extra_values* (the cells the caller's final check reads); variables
    outside those positions cannot influence any outcome and are left
    symbolic in the yielded results.  Worst-case behaviour is still
    exponential — the problems are coNP-complete — but the pruning makes
    the Theorem 3.2 reduction family tractable at test sizes.

    ``limit`` caps the number of yielded results (the paper's heuristic
    escape hatch); exhaustive enumeration needs ``limit=None``.
    ``on_chase`` (a zero-argument callable) is invoked once per internal
    chase run — instrumentation for callers that meter chase work.
    """
    dependencies = list(dependencies)
    budget = [limit]

    def search(current: SymbolicInstance) -> Iterator[ChaseResult]:
        if on_chase is not None:
            on_chase()
        result = chase(current, dependencies)
        if result.status is ChaseStatus.UNDEFINED:
            return
        var = _branchable_variable(result.instance, positions, extra_values)
        if var is None:
            if budget[0] is not None:
                if budget[0] <= 0:
                    return
                budget[0] -= 1
            yield result
            return
        for value in var.domain:
            if budget[0] is not None and budget[0] <= 0:
                return
            candidate = result.instance.copy()
            candidate.bind(var, value)
            yield from search(candidate)

    yield from search(instance.copy())
