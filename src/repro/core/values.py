"""Pattern-value algebra for conditional functional dependencies.

A CFD pattern tuple assigns each attribute one of three kinds of entries
(Definition 2.1 of the paper):

- a *constant* ``'a'`` drawn from the attribute's domain,
- the *unnamed variable* ``'_'`` (wildcard), which stands for any domain
  value, or
- the *special variable* ``x`` used only in view CFDs of the shape
  ``R(A -> B, (x || x))``, which encode the selection condition ``A = B``.

This module makes the three operators the paper uses on pattern entries
first-class functions:

``matches``
    The match relation (written with an asymp symbol in the paper):
    two entries match if they are equal constants or either is ``'_'``.

``leq``
    The partial order of Section 4.2: ``a <= b`` iff ``a`` and ``b`` are the
    same constant, or ``b`` is ``'_'``.  It gates A-resolution.

``meet``
    The ``min``/``(+)`` operation used when building resolvents: the more
    specific of two comparable entries; ``None`` when the entries are
    distinct constants (the resolvent is then undefined — this is how
    constants "block transitivity" in procedure RBR).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True, slots=True)
class Const:
    """A constant pattern entry, wrapping a domain value."""

    value: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.value)


@dataclass(frozen=True, slots=True)
class Wildcard:
    """The unnamed variable ``'_'``; all instances are interchangeable."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "_"


@dataclass(frozen=True, slots=True)
class SpecialVar:
    """The special variable ``x`` of view CFDs ``(A -> B, (x || x))``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "x"


#: Canonical singletons.  Pattern code should use these rather than
#: constructing new instances, although equality works either way.
WILDCARD = Wildcard()
SPECIAL = SpecialVar()

PatternValue = Union[Const, Wildcard, SpecialVar]

#: Interning table for constant pattern entries (hash-consing).  Keys pair
#: the value with its concrete type so entries for values that merely
#: *compare* equal (``1``, ``1.0``, ``True``) never share an object —
#: identity must be at least as fine as equality for soundness.  The table
#: is capped: once full, new constants are simply allocated uncached.
_CONST_INTERN: dict[tuple[type, Any], Const] = {}
_CONST_INTERN_CAP = 1 << 16


def const(value: Any) -> Const:
    """Wrap a raw domain value as a constant pattern entry (interned).

    Equal values of the same type share one :class:`Const` object, making
    pattern-entry comparison an identity check on the hot paths.  Unhashable
    values fall back to a fresh allocation.
    """
    try:
        key = (type(value), value)
        entry = _CONST_INTERN.get(key)
    except TypeError:
        return Const(value)
    if entry is None:
        entry = Const(value)
        if len(_CONST_INTERN) < _CONST_INTERN_CAP:
            _CONST_INTERN[key] = entry
    return entry


def is_const(entry: PatternValue) -> bool:
    """True iff *entry* is a constant pattern entry."""
    return isinstance(entry, Const)


def is_wildcard(entry: PatternValue) -> bool:
    """True iff *entry* is the unnamed variable ``'_'``."""
    return isinstance(entry, Wildcard)


def is_special(entry: PatternValue) -> bool:
    """True iff *entry* is the special variable ``x``."""
    return isinstance(entry, SpecialVar)


def matches(a: PatternValue, b: PatternValue) -> bool:
    """The match relation on pattern entries.

    ``matches(a, b)`` holds iff ``a == b`` or one of the two entries is the
    wildcard.  The special variable only matches itself and the wildcard
    (it is never compared against constants by any paper procedure).
    """
    if is_wildcard(a) or is_wildcard(b):
        return True
    return a == b


def leq(a: PatternValue, b: PatternValue) -> bool:
    """The partial order on pattern entries: ``a <= b``.

    Holds iff ``a`` and ``b`` are the same constant, or ``b`` is ``'_'``.
    Note the order is *not* symmetric: a constant is strictly below the
    wildcard.
    """
    if is_wildcard(b):
        return True
    return a == b


def meet(a: PatternValue, b: PatternValue) -> PatternValue | None:
    """The more specific of two comparable entries; ``None`` if incomparable.

    Implements the ``min(tp[C], t'p[C])`` of the resolvent construction:
    returns the constant when one side is a constant and the other the
    wildcard, either side when they are equal, and ``None`` for two
    distinct constants (the resolvent is undefined).
    """
    if is_wildcard(a):
        return b
    if is_wildcard(b):
        return a
    if a == b:
        return a
    return None


def value_matches(value: Any, entry: PatternValue) -> bool:
    """Whether a concrete *value* from a tuple matches a pattern *entry*.

    A value matches the wildcard unconditionally and a constant entry iff it
    equals the wrapped constant.  The special variable matches any value
    (the equality it encodes is between two attributes of the same tuple
    and is enforced separately by the satisfaction check).
    """
    if is_wildcard(entry) or is_special(entry):
        return True
    assert isinstance(entry, Const)
    return value == entry.value
