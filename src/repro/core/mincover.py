"""``MinCover``: minimal covers of CFD sets (Section 4.1).

A *minimal cover* of ``Sigma`` is an equivalent subset with neither
redundant CFDs nor redundant LHS attributes: for every
``phi = R(X -> A, tp)`` in the cover there is no proper ``Z`` of ``X``
such that replacing ``phi`` by ``phi' = R(Z -> A, (tp[Z] || tp[A]))``
still implies ``phi``.  Only nontrivial CFDs are kept.

The procedure follows [8] (cubic in ``|Sigma|`` given the quadratic
implication test): normalize, drop trivial CFDs, trim LHS attributes, then
drop redundant CFDs.  It is used three ways by ``PropCFD_SPC``:

- to simplify the input source CFDs (Figure 2, line 1),
- partition-wise during ``RBR`` to curb intermediate growth (the paper's
  Section 4.3 optimization), and
- on the final result (Figure 2, line 13).
"""

from __future__ import annotations

from typing import Iterable

from .cfd import CFD
from .implication import implies
from .schema import RelationSchema


def min_cover(
    sigma: Iterable[CFD],
    schema: RelationSchema | None = None,
) -> list[CFD]:
    """Compute a minimal cover of *sigma*.

    Deterministic: CFDs are processed in sorted (repr) order so the same
    input always yields the same cover.  The result consists of
    normal-form, nontrivial CFDs.
    """
    normalized: list[CFD] = []
    for dep in sigma:
        for phi in dep.normalize():
            phi = phi.simplified()
            if not phi.is_trivial():
                normalized.append(phi)

    # Implication never crosses relations, so minimize each relation's
    # CFDs independently (this also keeps the implication tests small).
    by_relation: dict[str, list[CFD]] = {}
    for phi in normalized:
        by_relation.setdefault(phi.relation, []).append(phi)

    result: list[CFD] = []
    for relation in sorted(by_relation):
        result.extend(_min_cover_relation(by_relation[relation], schema))
    return result


def _min_cover_relation(
    sigma: list[CFD], schema: RelationSchema | None
) -> list[CFD]:
    current = sorted(set(sigma), key=repr)

    current = [_trim_lhs(phi, current, schema) for phi in current]
    current = sorted(set(current), key=repr)

    result = list(current)
    for phi in list(current):
        if phi not in result:
            continue
        rest = [other for other in result if other != phi]
        if implies(rest, phi, schema):
            result = rest
    return result


def _trim_lhs(
    phi: CFD, sigma: list[CFD], schema: RelationSchema | None
) -> CFD:
    """Remove redundant LHS attributes from *phi* w.r.t. *sigma*.

    Attribute ``B`` is redundant when the strengthened CFD with ``B``
    dropped is already implied by the full set; dropping it can only make
    ``phi`` stronger, so the set stays equivalent.
    """
    if phi.is_equality:
        return phi
    trimmed = phi
    for name, _ in list(trimmed.lhs):
        if len(trimmed.lhs) <= 1:
            break
        candidate = trimmed.drop_lhs_attribute(name)
        if candidate.is_trivial():
            continue
        if implies(sigma, candidate, schema):
            trimmed = candidate
    return trimmed


def partitioned_min_cover(
    sigma: Iterable[CFD],
    partition_size: int,
    schema: RelationSchema | None = None,
) -> list[CFD]:
    """MinCover applied partition-wise (the paper's RBR optimization).

    Partitions *sigma* into blocks of ``partition_size`` and minimizes each
    independently: removes redundancy "to an extent, without increasing the
    worst-case complexity" (Section 4.3) — each block costs
    ``O(partition_size^2)`` implication tests.
    """
    sigma = list(sigma)
    if partition_size <= 0:
        raise ValueError("partition_size must be positive")
    result: list[CFD] = []
    for start in range(0, len(sigma), partition_size):
        block = sigma[start : start + partition_size]
        result.extend(min_cover(block, schema))
    return result
