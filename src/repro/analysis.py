"""High-level propagation workflows (the paper's three applications).

These helpers package the decision procedures into the question shapes of
Section 1:

- :func:`partition_rules` — data cleaning: split target rules into
  *guaranteed* (propagated from the sources; validation can be skipped)
  and *must-validate*.
- :func:`verify_mapping` — data exchange: is the view a valid schema
  mapping for a set of predefined target CFDs?  Returns per-constraint
  verdicts plus counterexamples for the failures.
- :func:`update_is_rejectable` — data integration: can a proposed view
  insert be rejected *without touching the data*, because it already
  violates a propagated CFD?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from .algebra.spc import SPCView
from .algebra.spcu import SPCUView
from .core.cfd import CFD
from .core.mincover import min_cover
from .propagation.check import (
    Counterexample,
    DependencyLike,
    ViewLike,
    find_counterexample,
    propagates,
)
from .propagation.cover import prop_cfd_spc
from .propagation.spcu_cover import prop_cfd_spcu


@dataclass
class RulePartition:
    """Outcome of :func:`partition_rules`."""

    guaranteed: list[DependencyLike] = field(default_factory=list)
    must_validate: list[DependencyLike] = field(default_factory=list)


def partition_rules(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    rules: Iterable[DependencyLike],
) -> RulePartition:
    """Split *rules* by whether the sources guarantee them on the view."""
    sigma = list(sigma)
    partition = RulePartition()
    for rule in rules:
        if propagates(sigma, view, rule):
            partition.guaranteed.append(rule)
        else:
            partition.must_validate.append(rule)
    return partition


@dataclass
class MappingVerdict:
    """Outcome of :func:`verify_mapping`."""

    valid: bool
    failures: dict[str, Counterexample] = field(default_factory=dict)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.valid


def verify_mapping(
    sigma: Iterable[DependencyLike],
    view: ViewLike,
    target_constraints: Mapping[str, DependencyLike],
) -> MappingVerdict:
    """Check every named target constraint; collect counterexamples.

    The view qualifies as a schema mapping (in the sense of the paper's
    data-exchange application) iff the verdict is ``valid``.
    """
    sigma = list(sigma)
    failures: dict[str, Counterexample] = {}
    for name, constraint in target_constraints.items():
        witness = find_counterexample(sigma, view, constraint)
        if witness is not None:
            failures[name] = witness
    return MappingVerdict(valid=not failures, failures=failures)


def propagation_cover(
    sigma: Iterable[DependencyLike], view: ViewLike
) -> list[CFD]:
    """A propagation cover for either view shape (SPC exact, SPCU via the
    candidate-and-verify union extension)."""
    if isinstance(view, SPCUView):
        return prop_cfd_spcu(sigma, view)
    assert isinstance(view, SPCView)
    return prop_cfd_spc(sigma, view)


def update_is_rejectable(
    cover: Iterable[CFD],
    proposed_tuple: Mapping[str, Any],
    view_name: str = "V",
) -> CFD | None:
    """The propagated CFD a proposed single-tuple insert already violates.

    Only constant-RHS CFDs can reject a tuple in isolation (pair rules
    need a second tuple).  Returns the violated CFD, or ``None`` when the
    insert cannot be rejected without consulting the data — the exact
    criterion of the paper's data-integration example (inserting
    ``CC = '44', AC = '20', city = 'edi'`` violates ``phi4`` locally).
    """
    cover = min_cover(list(cover))
    for phi in cover:
        if phi.is_equality or not phi.attributes <= set(proposed_tuple):
            continue
        if not phi.holds_on([proposed_tuple]):
            return phi
    return None
