"""Relational algebra substrate: instances, expressions, normal forms."""

from .eval import evaluate
from .instance import DatabaseInstance, Relation
from .ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Difference,
    Expr,
    Product,
    Projection,
    RelationRef,
    Renaming,
    Selection,
    SelectionAtom,
    Union,
    classify,
    operators,
)
from .spc import RelationAtom, SPCView
from .spcu import SPCUView

__all__ = [
    "AttrEq",
    "ConstEq",
    "ConstantRelation",
    "DatabaseInstance",
    "Difference",
    "Expr",
    "Product",
    "Projection",
    "Relation",
    "RelationAtom",
    "RelationRef",
    "Renaming",
    "SPCUView",
    "SPCView",
    "Selection",
    "SelectionAtom",
    "Union",
    "classify",
    "evaluate",
    "operators",
]
