"""Concrete relation and database instances.

Rows are attribute-name -> value mappings (stored as plain dicts, exposed
as tuples of sorted items where hashability is needed).  Instances exist to
*validate* the symbolic machinery: the integration tests generate instances
satisfying the source dependencies, evaluate views on them, and check that
every propagated CFD indeed holds on the view — the defining property of
``Sigma |=_V phi``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping

from ..core.cfd import CFD
from ..core.fd import FD
from ..core.schema import DatabaseSchema, RelationSchema


class Relation:
    """An instance of a relation schema: a set of rows.

    Duplicate rows are collapsed (set semantics, as in the paper's
    relational model).
    """

    def __init__(
        self, schema: RelationSchema, rows: Iterable[Mapping[str, Any]] = ()
    ) -> None:
        self.schema = schema
        self._rows: dict[tuple[tuple[str, Any], ...], dict[str, Any]] = {}
        for row in rows:
            self.add(row)

    def add(self, row: Mapping[str, Any]) -> None:
        expected = set(self.schema.attribute_names)
        if set(row) != expected:
            raise ValueError(
                f"row attributes {sorted(row)} do not match schema "
                f"{sorted(expected)} of {self.schema.name!r}"
            )
        for attr in self.schema.attributes:
            if row[attr.name] not in attr.domain:
                raise ValueError(
                    f"value {row[attr.name]!r} outside domain "
                    f"{attr.domain.name!r} of {self.schema.name}.{attr.name}"
                )
        frozen = tuple(sorted(row.items()))
        self._rows[frozen] = dict(row)

    @property
    def rows(self) -> list[dict[str, Any]]:
        return list(self._rows.values())

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._rows.values())

    def __contains__(self, row: Mapping[str, Any]) -> bool:
        return tuple(sorted(row.items())) in self._rows

    def satisfies(self, dependency: CFD | FD) -> bool:
        """Whether this relation satisfies a CFD or FD."""
        if isinstance(dependency, FD):
            dependency = CFD.from_fd(dependency)
        if dependency.relation != self.schema.name:
            raise ValueError(
                f"dependency on {dependency.relation!r} checked against "
                f"relation {self.schema.name!r}"
            )
        return dependency.holds_on(self.rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema.name}, {len(self)} rows)"


class DatabaseInstance:
    """An instance of a database schema."""

    def __init__(
        self,
        schema: DatabaseSchema,
        relations: Mapping[str, Iterable[Mapping[str, Any]]] | None = None,
    ) -> None:
        self.schema = schema
        self.relations: dict[str, Relation] = {
            rel.name: Relation(rel) for rel in schema
        }
        if relations:
            for name, rows in relations.items():
                for row in rows:
                    self.relations[name].add(row)

    def relation(self, name: str) -> Relation:
        try:
            return self.relations[name]
        except KeyError:
            raise KeyError(f"instance has no relation {name!r}") from None

    def add(self, relation: str, row: Mapping[str, Any]) -> None:
        self.relation(relation).add(row)

    def satisfies(self, dependency: CFD | FD) -> bool:
        return self.relation(dependency.relation).satisfies(dependency)

    def satisfies_all(self, dependencies: Iterable[CFD | FD]) -> bool:
        return all(self.satisfies(dep) for dep in dependencies)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{n}:{len(r)}" for n, r in self.relations.items())
        return f"DatabaseInstance({inner})"
