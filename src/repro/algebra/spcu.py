"""The SPCU normal form: unions of union-compatible SPC views.

Section 2.2: an SPCU query can be written as ``V1 U ... U Vk`` where the
``Vi`` are union-compatible SPC queries in normal form.  ``from_expr``
performs the standard union-lifting rewrite (sigma, pi, rho and x all
distribute over union) and normalizes each branch.
"""

from __future__ import annotations

from typing import Sequence

from ..core.schema import DatabaseSchema, RelationSchema
from .instance import DatabaseInstance, Relation
from .ops import (
    Expr,
    Product,
    Projection,
    Renaming,
    Selection,
    Union as UnionOp,
)
from .spc import SPCView


class SPCUView:
    """A view ``V1 U ... U Vk`` of union-compatible SPC views."""

    def __init__(self, name: str, branches: Sequence[SPCView]) -> None:
        if not branches:
            raise ValueError("an SPCU view needs at least one branch")
        self.name = name
        self.branches = list(branches)
        first = branches[0].projection
        for branch in branches[1:]:
            if list(branch.projection) != list(first):
                raise ValueError(
                    "union branches are not union-compatible: "
                    f"{first} vs {branch.projection}"
                )

    @property
    def projection(self) -> list[str]:
        return list(self.branches[0].projection)

    def view_schema(self) -> RelationSchema:
        return self.branches[0].view_schema().project(
            self.projection, new_name=self.name
        )

    def has_finite_domain_attribute(self) -> bool:
        return any(b.has_finite_domain_attribute() for b in self.branches)

    def evaluate(self, db: DatabaseInstance) -> Relation:
        """Evaluate every branch and union the results (set semantics)."""
        result = Relation(self.view_schema())
        for branch in self.branches:
            for row in branch.evaluate(db):
                result.add(row)
        return result

    @classmethod
    def from_expr(cls, expr: Expr, db: DatabaseSchema, name: str = "V") -> "SPCUView":
        """Normalize a positive RA expression with unions (Corollary 2)."""
        branches = [
            SPCView.from_expr(branch, db, name=name)
            for branch in _lift_unions(expr)
        ]
        return cls(name, branches)

    @classmethod
    def from_spc(cls, view: SPCView) -> "SPCUView":
        """Wrap a single SPC view as a one-branch union."""
        return cls(view.name, [view])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SPCUView({self.name}, {len(self.branches)} branches)"


def _lift_unions(expr: Expr) -> list[Expr]:
    """Rewrite to a top-level union of union-free expressions."""
    if isinstance(expr, UnionOp):
        return _lift_unions(expr.left) + _lift_unions(expr.right)
    if isinstance(expr, Selection):
        return [Selection(b, expr.condition) for b in _lift_unions(expr.child)]
    if isinstance(expr, Projection):
        return [Projection(b, expr.attributes) for b in _lift_unions(expr.child)]
    if isinstance(expr, Renaming):
        return [
            Renaming(b, dict(expr.mapping)) for b in _lift_unions(expr.child)
        ]
    if isinstance(expr, Product):
        return [
            Product(left, right)
            for left in _lift_unions(expr.left)
            for right in _lift_unions(expr.right)
        ]
    return [expr]
