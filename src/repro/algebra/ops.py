"""Relational algebra expression trees.

Views are built from the operators the paper studies: selection (with
conjunctions of equality atoms ``A = B`` and ``A = 'a'``), projection,
Cartesian product, renaming, union, and — for full RA — set difference.
Constant relations (the ``Rc`` of the SPC normal form) are a leaf node.

Each node can compute its output schema against a database schema, and
``operators``/``classify`` report which fragment of RA an expression lives
in (S, P, C, SP, SC, PC, SPC, SPCU, RA) — the axis of Tables 1 and 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Mapping, Union

from ..core.schema import Attribute, DatabaseSchema, RelationSchema
from ..core.domains import Domain, STRING


# ----------------------------------------------------------------------
# Selection atoms.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AttrEq:
    """The selection atom ``A = B``."""

    left: str
    right: str

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.left}={self.right}"


@dataclass(frozen=True)
class ConstEq:
    """The selection atom ``A = 'a'``."""

    attr: str
    value: Any

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.attr}={self.value!r}"


SelectionAtom = Union[AttrEq, ConstEq]


# ----------------------------------------------------------------------
# Expression nodes.
# ----------------------------------------------------------------------


class Expr:
    """Base class for RA expressions."""

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class RelationRef(Expr):
    """A relation atom naming a source relation."""

    name: str

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        return db.relation(self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class ConstantRelation(Expr):
    """The single-tuple constant relation ``{(A1: a1, ..., Am: am)}``."""

    values: tuple[tuple[str, Any], ...]
    domains: tuple[tuple[str, Domain], ...] = ()

    def __init__(
        self,
        values: Mapping[str, Any],
        domains: Mapping[str, Domain] | None = None,
    ) -> None:
        object.__setattr__(self, "values", tuple(sorted(values.items())))
        domains = domains or {}
        object.__setattr__(
            self,
            "domains",
            tuple(sorted((a, domains.get(a, STRING)) for a in values)),
        )

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        return RelationSchema(
            "Rc", [Attribute(a, d) for a, d in self.domains]
        )

    def as_dict(self) -> dict[str, Any]:
        return dict(self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{a}:{v!r}" for a, v in self.values)
        return "{(" + inner + ")}"


@dataclass(frozen=True)
class Selection(Expr):
    """``sigma_F(child)`` for a conjunction ``F`` of equality atoms."""

    child: Expr
    condition: tuple[SelectionAtom, ...]

    def __init__(self, child: Expr, condition: Iterable[SelectionAtom]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "condition", tuple(condition))

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        schema = self.child.schema(db)
        for atom in self.condition:
            names = (
                (atom.left, atom.right) if isinstance(atom, AttrEq) else (atom.attr,)
            )
            for name in names:
                if name not in schema:
                    raise KeyError(
                        f"selection atom {atom!r} references unknown "
                        f"attribute {name!r}"
                    )
        return schema

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cond = " and ".join(map(repr, self.condition))
        return f"sigma[{cond}]({self.child!r})"


@dataclass(frozen=True)
class Projection(Expr):
    """``pi_Y(child)``."""

    child: Expr
    attributes: tuple[str, ...]

    def __init__(self, child: Expr, attributes: Iterable[str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "attributes", tuple(attributes))

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        child = self.child.schema(db)
        return child.project(self.attributes)

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"pi[{','.join(self.attributes)}]({self.child!r})"


@dataclass(frozen=True)
class Product(Expr):
    """Cartesian product; attribute names must be disjoint."""

    left: Expr
    right: Expr

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.schema(db)
        right = self.right.schema(db)
        overlap = set(left.attribute_names) & set(right.attribute_names)
        if overlap:
            raise ValueError(
                f"product operands share attributes {sorted(overlap)}; "
                "rename first"
            )
        return RelationSchema(
            f"({left.name}x{right.name})",
            list(left.attributes) + list(right.attributes),
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} x {self.right!r})"


@dataclass(frozen=True)
class Renaming(Expr):
    """``rho(child)`` with an injective attribute mapping."""

    child: Expr
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: Expr, mapping: Mapping[str, str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        child = self.child.schema(db)
        mapping = dict(self.mapping)
        new_names = [mapping.get(a.name, a.name) for a in child.attributes]
        if len(set(new_names)) != len(new_names):
            raise ValueError(f"renaming {mapping} is not injective on {child!r}")
        return RelationSchema(
            child.name,
            [a.renamed(n) for a, n in zip(child.attributes, new_names)],
        )

    def children(self) -> tuple[Expr, ...]:
        return (self.child,)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ",".join(f"{o}->{n}" for o, n in self.mapping)
        return f"rho[{inner}]({self.child!r})"


@dataclass(frozen=True)
class Union(Expr):
    """Set union of union-compatible operands."""

    left: Expr
    right: Expr

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.schema(db)
        right = self.right.schema(db)
        if left.attribute_names != right.attribute_names:
            raise ValueError(
                f"union operands are not compatible: "
                f"{left.attribute_names} vs {right.attribute_names}"
            )
        return left

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} U {self.right!r})"


@dataclass(frozen=True)
class Difference(Expr):
    """Set difference — lifts the language to full RA (undecidable rows)."""

    left: Expr
    right: Expr

    def schema(self, db: DatabaseSchema) -> RelationSchema:
        left = self.left.schema(db)
        right = self.right.schema(db)
        if left.attribute_names != right.attribute_names:
            raise ValueError("difference operands are not compatible")
        return left

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} - {self.right!r})"


# ----------------------------------------------------------------------
# Fragment classification.
# ----------------------------------------------------------------------


def operators(expr: Expr) -> frozenset[str]:
    """The set of operator letters used by *expr*.

    ``S`` selection, ``P`` projection, ``C`` Cartesian product (a constant
    relation also counts as ``C``, matching the paper's treatment of ``Q1``
    in Example 1.1 as a C query), ``U`` union, ``D`` difference.  Renaming
    is included in every fragment by default and not reported.
    """
    found: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, Selection):
            found.add("S")
        elif isinstance(node, Projection):
            found.add("P")
        elif isinstance(node, (Product, ConstantRelation)):
            found.add("C")
        elif isinstance(node, Union):
            found.add("U")
        elif isinstance(node, Difference):
            found.add("D")
        for child in node.children():
            walk(child)

    walk(expr)
    return frozenset(found)


def classify(expr: Expr) -> str:
    """Name the smallest paper fragment containing *expr*.

    One of ``"identity"``, ``"S"``, ``"P"``, ``"C"``, ``"SP"``, ``"SC"``,
    ``"PC"``, ``"SPC"``, ``"SPCU"``, or ``"RA"``.
    """
    ops = operators(expr)
    if "D" in ops:
        return "RA"
    if "U" in ops:
        return "SPCU"
    letters = "".join(letter for letter in "SPC" if letter in ops)
    return letters or "identity"
