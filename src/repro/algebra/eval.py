"""Direct evaluation of RA expression trees on database instances.

The normal-form classes have their own ``evaluate``; this module evaluates
*arbitrary* expression trees (difference included), which the tests use to
cross-check that normalization preserves semantics:
``evaluate(expr, D) == SPCView.from_expr(expr).evaluate(D)``.
"""

from __future__ import annotations

from typing import Any

from .instance import DatabaseInstance, Relation
from .ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Difference,
    Expr,
    Product,
    Projection,
    RelationRef,
    Renaming,
    Selection,
    Union as UnionOp,
)


def evaluate(expr: Expr, db: DatabaseInstance, name: str = "V") -> Relation:
    """Evaluate *expr* against *db*, returning a named relation."""
    schema = expr.schema(db.schema)
    rows = _rows(expr, db)
    out_schema = schema.project(schema.attribute_names, new_name=name)
    return Relation(out_schema, rows)


def _rows(expr: Expr, db: DatabaseInstance) -> list[dict[str, Any]]:
    if isinstance(expr, RelationRef):
        return [dict(r) for r in db.relation(expr.name).rows]

    if isinstance(expr, ConstantRelation):
        return [expr.as_dict()]

    if isinstance(expr, Selection):
        child = _rows(expr.child, db)
        return [row for row in child if _selected(row, expr)]

    if isinstance(expr, Projection):
        child = _rows(expr.child, db)
        seen: dict[tuple, dict[str, Any]] = {}
        for row in child:
            projected = {a: row[a] for a in expr.attributes}
            seen[tuple(sorted(projected.items()))] = projected
        return list(seen.values())

    if isinstance(expr, Renaming):
        child = _rows(expr.child, db)
        mapping = dict(expr.mapping)
        return [
            {mapping.get(name, name): value for name, value in row.items()}
            for row in child
        ]

    if isinstance(expr, Product):
        left = _rows(expr.left, db)
        right = _rows(expr.right, db)
        return [{**l, **r} for l in left for r in right]

    if isinstance(expr, UnionOp):
        left = _rows(expr.left, db)
        right = _rows(expr.right, db)
        seen = {tuple(sorted(r.items())): r for r in left + right}
        return list(seen.values())

    if isinstance(expr, Difference):
        left = _rows(expr.left, db)
        right = {tuple(sorted(r.items())) for r in _rows(expr.right, db)}
        return [r for r in left if tuple(sorted(r.items())) not in right]

    raise ValueError(f"cannot evaluate {expr!r}")


def _selected(row: dict[str, Any], expr: Selection) -> bool:
    for atom in expr.condition:
        if isinstance(atom, AttrEq):
            if row[atom.left] != row[atom.right]:
                return False
        else:
            assert isinstance(atom, ConstEq)
            if row[atom.attr] != atom.value:
                return False
    return True
