"""The SPC normal form and normalization into it.

Section 2.2: every SPC query can be written as

    pi_Y(Rc x Es),   Es = sigma_F(Ec),   Ec = R1 x ... x Rn

where ``Rc`` is a single-tuple constant relation, each ``Rj`` is a renamed
relation atom with pairwise disjoint attributes, and ``F`` conjoins
equality atoms ``A = B`` / ``A = 'a'``.  :class:`SPCView` is this normal
form made concrete; :func:`SPCView.from_expr` normalizes any
S/P/C/renaming expression tree into it (Corollary 2's polynomial-time
translation, phrased directly on the normal form rather than tableaux).

Attribute spaces: each relation atom maps its source attributes to unique
*view-space* names.  Projected attributes keep their user-facing output
names; non-projected attributes get internal qualified names.  The
propagation-cover algorithm works in view space throughout (it must reason
about the dropped attributes ``attr(Es) - Y``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence, Union

from ..core.cfd import CFD
from ..core.domains import Domain, STRING
from ..core.schema import Attribute, DatabaseSchema, RelationSchema
from .instance import DatabaseInstance, Relation
from .ops import (
    AttrEq,
    ConstEq,
    ConstantRelation,
    Expr,
    Product,
    Projection,
    RelationRef,
    Renaming,
    Selection,
    SelectionAtom,
    Union as UnionOp,
)


@dataclass(frozen=True)
class RelationAtom:
    """One renamed relation atom ``Rj = rho_j(S)`` of the product ``Ec``."""

    source: str
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, source: str, mapping: Mapping[str, str]) -> None:
        object.__setattr__(self, "source", source)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))
        view_names = [v for _, v in self.mapping]
        if len(set(view_names)) != len(view_names):
            raise ValueError(f"atom renaming is not injective: {mapping}")

    @property
    def mapping_dict(self) -> dict[str, str]:
        return dict(self.mapping)

    @property
    def view_attributes(self) -> tuple[str, ...]:
        return tuple(v for _, v in self.mapping)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"rho({self.source})"


class SPCView:
    """An SPC view in the paper's normal form.

    Parameters
    ----------
    name:
        Name of the view schema ``RV``.
    source_schema:
        The database schema the view is defined over.
    atoms:
        The relation atoms of ``Ec``, each mapping source attributes to
        pairwise disjoint view-space names.
    selection:
        Conjunction ``F`` of :class:`AttrEq` / :class:`ConstEq` atoms over
        view-space names.
    projection:
        The output attributes ``Y``, a list of view-space names and/or
        constant-relation attributes, in output order.
    constants:
        The constant relation ``Rc`` as an attribute -> value mapping;
        every key must appear in *projection*.
    constant_domains:
        Optional domains for the constant attributes (default: string).
    unsatisfiable:
        Set by normalization when the selection condition is contradictory
        at the syntactic level (two distinct literals equated); the view is
        then empty on every instance.
    """

    def __init__(
        self,
        name: str,
        source_schema: DatabaseSchema,
        atoms: Sequence[RelationAtom],
        selection: Iterable[SelectionAtom] = (),
        projection: Sequence[str] | None = None,
        constants: Mapping[str, Any] | None = None,
        constant_domains: Mapping[str, Domain] | None = None,
        unsatisfiable: bool = False,
    ) -> None:
        self.name = name
        self.source_schema = source_schema
        self.atoms = list(atoms)
        self.selection = list(selection)
        self.constants = dict(constants or {})
        self.constant_domains = dict(constant_domains or {})
        self.unsatisfiable = unsatisfiable

        seen: set[str] = set()
        for atom in self.atoms:
            if atom.source not in source_schema:
                raise KeyError(f"unknown source relation {atom.source!r}")
            source_rel = source_schema.relation(atom.source)
            if set(atom.mapping_dict) != set(source_rel.attribute_names):
                raise ValueError(
                    f"atom over {atom.source!r} must rename all attributes"
                )
            for view_name in atom.view_attributes:
                if view_name in seen:
                    raise ValueError(
                        f"view attribute {view_name!r} used by two atoms"
                    )
                seen.add(view_name)
        for const_attr in self.constants:
            if const_attr in seen:
                raise ValueError(
                    f"constant attribute {const_attr!r} collides with Es"
                )

        if projection is None:
            projection = sorted(seen) + sorted(self.constants)
        self.projection = list(projection)
        universe = seen | set(self.constants)
        for attr in self.projection:
            if attr not in universe:
                raise KeyError(f"projection attribute {attr!r} not produced")
        missing = set(self.constants) - set(self.projection)
        if missing:
            raise ValueError(f"constant attributes {sorted(missing)} not projected")
        for atom_sel in self.selection:
            names = (
                (atom_sel.left, atom_sel.right)
                if isinstance(atom_sel, AttrEq)
                else (atom_sel.attr,)
            )
            for n in names:
                if n not in seen:
                    raise KeyError(
                        f"selection references {n!r}, which is not an "
                        "attribute of Es"
                    )

    # ------------------------------------------------------------------
    # Attribute spaces and schemas.
    # ------------------------------------------------------------------

    def es_attributes(self) -> dict[str, Domain]:
        """All view-space attributes of ``Es`` with their domains."""
        out: dict[str, Domain] = {}
        for atom in self.atoms:
            source_rel = self.source_schema.relation(atom.source)
            for src, view_name in atom.mapping:
                out[view_name] = source_rel.domain_of(src)
        return out

    def extended_attributes(self) -> dict[str, Domain]:
        """``Es`` attributes plus the constant-relation attributes."""
        out = self.es_attributes()
        for attr in self.constants:
            out[attr] = self.constant_domains.get(attr, STRING)
        return out

    def view_schema(self) -> RelationSchema:
        domains = self.extended_attributes()
        return RelationSchema(
            self.name, [Attribute(a, domains[a]) for a in self.projection]
        )

    def dropped_attributes(self) -> list[str]:
        """``attr(Es) - Y``: the attributes procedure RBR must eliminate."""
        projected = set(self.projection)
        return [a for a in self.es_attributes() if a not in projected]

    def has_finite_domain_attribute(self) -> bool:
        return any(d.is_finite for d in self.extended_attributes().values())

    # ------------------------------------------------------------------
    # Source-CFD renaming (the Cartesian-product step of PropCFD_SPC).
    # ------------------------------------------------------------------

    def rename_source_cfds(self, sigma: Iterable[CFD]) -> list[CFD]:
        """``rho_j(Sigma)`` for every atom: source CFDs in view space."""
        renamed: list[CFD] = []
        for atom in self.atoms:
            mapping = atom.mapping_dict
            for dep in sigma:
                if dep.relation == atom.source:
                    renamed.append(dep.rename(mapping, relation=self.name))
        return renamed

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------

    def evaluate(self, db: DatabaseInstance) -> Relation:
        """Materialize the view over a database instance."""
        result = Relation(self.view_schema())
        if self.unsatisfiable:
            return result
        partials: list[dict[str, Any]] = [{}]
        for atom in self.atoms:
            source_rows = db.relation(atom.source).rows
            mapping = atom.mapping
            renamed_rows = [
                {view_name: row[src] for src, view_name in mapping}
                for row in source_rows
            ]
            partials = [
                {**acc, **renamed} for acc in partials for renamed in renamed_rows
            ]
        for row in partials:
            if not self._selected(row):
                continue
            full = dict(row)
            full.update(self.constants)
            result.add({a: full[a] for a in self.projection})
        return result

    def _selected(self, row: Mapping[str, Any]) -> bool:
        for atom_sel in self.selection:
            if isinstance(atom_sel, AttrEq):
                if row[atom_sel.left] != row[atom_sel.right]:
                    return False
            else:
                if row[atom_sel.attr] != atom_sel.value:
                    return False
        return True

    # ------------------------------------------------------------------
    # Expression-tree round trip.
    # ------------------------------------------------------------------

    def as_expr(self) -> Expr:
        """The normal form as an expression tree ``pi_Y(Rc x sigma_F(Ec))``."""
        product: Expr | None = None
        for atom in self.atoms:
            node: Expr = Renaming(RelationRef(atom.source), atom.mapping_dict)
            product = node if product is None else Product(product, node)
        if product is None:
            es: Expr | None = None
        else:
            es = Selection(product, self.selection) if self.selection else product
        if self.constants:
            rc: Expr = ConstantRelation(self.constants, self.constant_domains)
            es = rc if es is None else Product(rc, es)
        if es is None:
            raise ValueError("view has neither atoms nor constants")
        return Projection(es, self.projection)

    @classmethod
    def from_expr(cls, expr: Expr, db: DatabaseSchema, name: str = "V") -> "SPCView":
        """Normalize an S/P/C/renaming expression tree (Corollary 2)."""
        derivation = _derive(expr, db, _Counter())
        return derivation.finalize(cls, db, name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sel = " and ".join(map(repr, self.selection)) or "true"
        atoms = " x ".join(map(repr, self.atoms)) or "(empty)"
        return (
            f"SPCView({self.name}: pi[{','.join(self.projection)}]"
            f"(Rc={self.constants} x sigma[{sel}]({atoms})))"
        )


# ----------------------------------------------------------------------
# Normalization machinery.
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Col:
    qualified: str


@dataclass(frozen=True)
class _Lit:
    value: Any
    domain: Domain = STRING


_Term = Union[_Col, _Lit]


class _Counter:
    def __init__(self) -> None:
        self.next_atom = 0

    def take(self) -> int:
        value = self.next_atom
        self.next_atom += 1
        return value


@dataclass
class _Derivation:
    """Intermediate normalization state: atoms + selections + column map."""

    atoms: list[RelationAtom] = field(default_factory=list)
    selection: list[SelectionAtom] = field(default_factory=list)
    columns: dict[str, _Term] = field(default_factory=dict)
    unsatisfiable: bool = False

    def finalize(self, cls: type, db: DatabaseSchema, name: str) -> "SPCView":
        # Projected columns take their user-facing names; rename the
        # qualified view-space names accordingly.
        rename: dict[str, str] = {}
        constants: dict[str, Any] = {}
        constant_domains: dict[str, Domain] = {}
        for out_name, term in self.columns.items():
            if isinstance(term, _Lit):
                constants[out_name] = term.value
                constant_domains[out_name] = term.domain
            else:
                if term.qualified in rename:
                    raise ValueError(
                        "two output attributes reference the same column; "
                        "not expressible in the SPC normal form"
                    )
                rename[term.qualified] = out_name

        def rn(attr: str) -> str:
            return rename.get(attr, attr)

        atoms = [
            RelationAtom(
                atom.source, {src: rn(v) for src, v in atom.mapping}
            )
            for atom in self.atoms
        ]
        selection = [
            AttrEq(rn(a.left), rn(a.right))
            if isinstance(a, AttrEq)
            else ConstEq(rn(a.attr), a.value)
            for a in self.selection
        ]
        projection = list(self.columns)
        return cls(
            name,
            db,
            atoms,
            selection,
            projection,
            constants,
            constant_domains,
            unsatisfiable=self.unsatisfiable,
        )


def _derive(expr: Expr, db: DatabaseSchema, counter: _Counter) -> _Derivation:
    if isinstance(expr, RelationRef):
        j = counter.take()
        schema = db.relation(expr.name)
        mapping = {a: f"_{j}.{a}" for a in schema.attribute_names}
        return _Derivation(
            atoms=[RelationAtom(expr.name, mapping)],
            columns={a: _Col(mapping[a]) for a in schema.attribute_names},
        )

    if isinstance(expr, ConstantRelation):
        domains = dict(expr.domains)
        return _Derivation(
            columns={
                a: _Lit(v, domains.get(a, STRING)) for a, v in expr.values
            }
        )

    if isinstance(expr, Renaming):
        child = _derive(expr.child, db, counter)
        mapping = dict(expr.mapping)
        child.columns = {
            mapping.get(name, name): term for name, term in child.columns.items()
        }
        return child

    if isinstance(expr, Projection):
        child = _derive(expr.child, db, counter)
        child.columns = {name: child.columns[name] for name in expr.attributes}
        return child

    if isinstance(expr, Selection):
        child = _derive(expr.child, db, counter)
        for atom in expr.condition:
            _apply_selection_atom(child, atom)
        return child

    if isinstance(expr, Product):
        left = _derive(expr.left, db, counter)
        right = _derive(expr.right, db, counter)
        overlap = set(left.columns) & set(right.columns)
        if overlap:
            raise ValueError(f"product operands share attributes {sorted(overlap)}")
        return _Derivation(
            atoms=left.atoms + right.atoms,
            selection=left.selection + right.selection,
            columns={**left.columns, **right.columns},
            unsatisfiable=left.unsatisfiable or right.unsatisfiable,
        )

    if isinstance(expr, UnionOp):
        raise ValueError(
            "expression contains union; normalize with SPCUView.from_expr"
        )

    raise ValueError(f"not an SPC expression: {expr!r}")


def _apply_selection_atom(derivation: _Derivation, atom: SelectionAtom) -> None:
    if isinstance(atom, AttrEq):
        left = derivation.columns[atom.left]
        right = derivation.columns[atom.right]
        if isinstance(left, _Col) and isinstance(right, _Col):
            if left.qualified != right.qualified:
                derivation.selection.append(AttrEq(left.qualified, right.qualified))
        elif isinstance(left, _Col):
            assert isinstance(right, _Lit)
            derivation.selection.append(ConstEq(left.qualified, right.value))
        elif isinstance(right, _Col):
            assert isinstance(left, _Lit)
            derivation.selection.append(ConstEq(right.qualified, left.value))
        else:
            assert isinstance(left, _Lit) and isinstance(right, _Lit)
            if left.value != right.value:
                derivation.unsatisfiable = True
    else:
        term = derivation.columns[atom.attr]
        if isinstance(term, _Col):
            derivation.selection.append(ConstEq(term.qualified, atom.value))
        else:
            if term.value != atom.value:
                derivation.unsatisfiable = True
