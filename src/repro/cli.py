"""Command-line interface: a thin client of URL-addressed endpoints.

Drives the library from JSON files (formats in :mod:`repro.io`):

    repro check   --schema s.json --sigma deps.json --view v.json --phi target.json
    repro propagate-batch --schema s.json --sigma deps.json --view v.json --phi targets.json
    repro cover   --schema s.json --sigma deps.json --view v.json [--out cover.json]
    repro empty   --schema s.json --sigma deps.json --view v.json
    repro serve   [--schema ... --sigma ... --view ...] [--transport ndjson|http]
                  [--port N] [--shard-worker]
    repro store-serve [--port N] [--cache-dir DIR | --quota-entries N --quota-ttl S]
    repro validate --schema s.json --rules deps.json --data db.json
    repro repair  --schema s.json --rules deps.json --data db.json [--out fixed.json]
    repro fuzz    --cases N --seed S [--matrix baseline,cache,...]
                  [--corpus DIR] [--replay FILE ...] [--harvest]
    repro stream  [--trace t.json | --seed S --edits N] [--ops-per-edit M]
                  [--verify] [--out report.json]

Every analysis subcommand routes through the typed client SDK
(:func:`repro.api.connect`): the ``--endpoint URL`` flag (or the
``REPRO_ENDPOINT`` environment variable) picks where the work runs —

- ``local://`` (default): a fresh in-process
  :class:`~repro.api.PropagationService`, exactly the pre-endpoint
  behavior;
- ``tcp://host:port``: a long-lived ``repro serve --port`` NDJSON
  server, so repeated invocations share its warm cache;
- ``http://host:port``: a ``repro serve --transport http`` front end
  (loadbalancer-friendly).

Resilience flags (any service-routed subcommand): ``--retries N`` /
``--backoff S`` retry transient ``unavailable`` failures of idempotent
requests with exponential backoff, and ``--replica URL`` (repeated)
load-balances the request across identical workers with automatic
failover (see :mod:`repro.api.orchestrator`).

The input files are registered on the endpoint per invocation (names
``"default"``, the view also under its own name), then a typed request
is submitted and capability-routed server-side.  ``repro serve`` is the
other half: it keeps one warm service alive behind NDJSON (stdin or
``--port``) or HTTP (``--transport http``), and ``--shard-worker`` lets
it answer the partial ``shard_index`` requests a
:class:`~repro.api.ShardOrchestrator` fans across a fleet.

Engine knobs (shared by check / propagate-batch / cover / empty / serve):

- ``--no-cache`` gives the uncached ablation baseline;
- ``--stats`` prints the endpoint's engine counters to stderr;
- ``--cache-dir DIR`` persists verdicts/covers in a schema-versioned
  sqlite store under ``DIR``, shared across processes (warm restarts);
- ``--store-url URL`` (or ``REPRO_STORE_URL``) generalizes it to any
  registered blob-store backend — ``sqlite://DIR``, ``store://host:port``
  (a ``repro store-serve`` server shared by a worker *fleet*, with
  cross-process single-flight stampede control) or
  ``redis://host:port[/db]``; takes precedence over ``--cache-dir``;
- ``--cache-size N`` bounds each in-memory memo tier (and each tableau
  cache layer) to an N-entry LRU;
- ``--jobs N`` fans cache-miss queries out across N workers
  (``--pool thread|process`` picks the executor);
- ``--shards N`` deals the k² branch-pair chase of union views into N
  deterministic shards executed through the same pool (verdicts are
  shard-count invariant);
- ``--kernel bitset|baseline`` picks the chase/closure implementation
  (default bitset — the packed fast path; ``REPRO_KERNEL`` overrides
  the default; answers are byte-identical either way).

``repro --profile <subcommand> ...`` runs any subcommand under cProfile
and prints the top 20 functions by cumulative time to stderr.

``--no-cache``, ``--shards`` and ``--kernel`` are per-request settings
and apply on any endpoint; the infrastructure knobs (``--cache-dir`` / ``--cache-size``
/ ``--store-url`` / ``--jobs`` / ``--pool``) configure the *service* and
therefore apply to
``local://`` endpoints and ``serve`` — a remote server keeps its own.

Exit codes follow the stable taxonomy of :mod:`repro.api.errors`:
0 on a "positive" analysis result (propagated / nonempty / clean), 1 on
the negative one, 2 for format / not-found / bad-request errors, 3 for
unsupported view languages, 4 for internal failures, 5 when a remote
endpoint is unreachable — so shell pipelines can branch on the verdict
and on the failure class.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import uuid
from typing import Sequence

from . import io as repro_io
from .api import (
    ApiError,
    CheckRequest,
    Client,
    CoverRequest,
    EXIT_NEGATIVE,
    EXIT_OK,
    EmptinessRequest,
    PropagationService,
    ReplicaSet,
    RetryPolicy,
    Workspace,
    connect,
    serve_http,
    serve_stdio,
    serve_tcp,
    to_api_error,
)
from .cleaning import detect, repair, summarize

#: The endpoint every subcommand targets when neither ``--endpoint`` nor
#: ``REPRO_ENDPOINT`` is given: a fresh in-process service.
DEFAULT_ENDPOINT = "local://"


def _endpoint(args) -> str:
    return (
        getattr(args, "endpoint", None)
        or os.environ.get("REPRO_ENDPOINT")
        or DEFAULT_ENDPOINT
    )


def _store_url(args) -> str | None:
    """``--store-url``, falling back to the ``REPRO_STORE_URL`` environment."""
    return (
        getattr(args, "store_url", None)
        or os.environ.get("REPRO_STORE_URL")
        or None
    )


def _service_options(args) -> dict:
    """The local-service knobs (server-side properties on remote endpoints)."""
    return dict(
        use_cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        cache_size=getattr(args, "cache_size", None),
        store_url=_store_url(args),
        jobs=getattr(args, "jobs", 1),
        pool=getattr(args, "pool", "thread"),
        shards=getattr(args, "shards", 1),
        kernel=getattr(args, "kernel", None),
    )


def _request_settings(args) -> dict:
    """The per-request settings, honored by local and remote endpoints."""
    return dict(
        use_cache=False if getattr(args, "no_cache", False) else None,
        shards=args.shards if getattr(args, "shards", 1) != 1 else None,
        kernel=getattr(args, "kernel", None),
    )


def _retry_policy(args) -> RetryPolicy | None:
    """``--retries/--backoff`` as a transport policy (``None`` = fail fast)."""
    retries = getattr(args, "retries", 0) or 0
    if retries < 1:
        return None
    return RetryPolicy(retries=retries, backoff=getattr(args, "backoff", 0.05))


def _client(args) -> tuple[Client, str]:
    """Connect to the invocation's endpoint and register the input files.

    With ``--replica URL`` (repeatable) the "client" is a
    :class:`~repro.api.ReplicaSet` over those endpoints instead:
    registrations fan out to every replica and the request load-balances
    across them with failover — the subcommands drive both shapes
    through the same methods.

    The files are registered under one per-invocation unique name (the
    returned *scope*), so concurrent invocations sharing a warm remote
    server never clobber each other's registrations.  Warmth is still
    shared: the engine's cache keys are structural (Sigma/view content),
    not registration names.
    """
    retry = _retry_policy(args)
    replicas = list(getattr(args, "replica", None) or [])
    if replicas:
        if getattr(args, "endpoint", None):
            raise ApiError(
                "bad-request",
                "--endpoint and --replica are mutually exclusive; list every "
                "replica with --replica",
            )
        client = ReplicaSet(replicas, retry=retry)
    else:
        url = _endpoint(args)
        if url.startswith("local:"):
            client = connect(url, retry=retry, **_service_options(args))
        else:
            client = connect(url, retry=retry)
    scope = f"cli-{uuid.uuid4().hex[:12]}"
    try:
        schema = getattr(args, "schema", None)
        sigma = getattr(args, "sigma", None)
        view = getattr(args, "view", None)
        if schema is not None:
            client.register_schema(scope, repro_io.load_json(schema))
        if sigma is not None:
            client.register_sigma(scope, repro_io.load_json(sigma))
        if view is not None:
            client.register_view(scope, repro_io.load_json(view), schema=scope)
    except BaseException:
        client.close()
        raise
    return client, scope


def _load_targets(path):
    """The ``--phi`` file: one dependency or a list of them."""
    doc = repro_io.load_json(path)
    targets = doc if isinstance(doc, list) else [doc]
    return [repro_io.dependency_from_json(item) for item in targets]


def _print_stats(client: Client, args) -> None:
    if getattr(args, "stats", False):
        print(f"# {client.stats()['engine']}", file=sys.stderr)


def _cmd_check(args) -> int:
    phis = _load_targets(args.phi)
    client, scope = _client(args)
    with client:
        result = client.check(
            CheckRequest(
                view=scope, sigma=scope, targets=phis, witness=args.witness,
                **_request_settings(args),
            )
        )
        for index, (phi, verdict) in enumerate(zip(phis, result.propagated)):
            print(f"{'PROPAGATED' if verdict else 'not propagated'}: {phi}")
            if not verdict and result.witnesses is not None:
                # Witnesses cross the wire as repro.io instance documents.
                print(json.dumps(result.witnesses[index], indent=2))
        _print_stats(client, args)
    return EXIT_OK if result.all_propagated else EXIT_NEGATIVE


def _cmd_propagate_batch(args) -> int:
    phis = _load_targets(args.phi)
    client, scope = _client(args)
    with client:
        result = client.check(
            CheckRequest(
                view=scope, sigma=scope, targets=phis, **_request_settings(args)
            )
        )
        for phi, verdict in zip(phis, result.propagated):
            print(f"{'PROPAGATED' if verdict else 'not propagated'}: {phi}")
        propagated = sum(result.propagated)
        print(f"# {propagated}/{len(result.propagated)} propagated", file=sys.stderr)
        _print_stats(client, args)
    if args.out:
        survivors = [
            phi for phi, verdict in zip(phis, result.propagated) if verdict
        ]
        repro_io.dump_json(repro_io.dependencies_to_json(survivors), args.out)
        print(
            f"# wrote {len(survivors)} propagated CFDs to {args.out}",
            file=sys.stderr,
        )
    return EXIT_OK if result.all_propagated else EXIT_NEGATIVE


def _cmd_cover(args) -> int:
    client, scope = _client(args)
    with client:
        result = client.cover(
            CoverRequest(view=scope, sigma=scope, **_request_settings(args))
        )
        _print_stats(client, args)
    for phi in result.cover:
        print(phi)
    if args.out:
        repro_io.dump_json(repro_io.dependencies_to_json(result.cover), args.out)
        print(f"# wrote {len(result.cover)} CFDs to {args.out}", file=sys.stderr)
    return EXIT_OK


def _cmd_empty(args) -> int:
    client, scope = _client(args)
    with client:
        result = client.emptiness(
            EmptinessRequest(view=scope, sigma=scope, **_request_settings(args))
        )
        _print_stats(client, args)
    print("EMPTY" if result.empty else "NONEMPTY")
    return EXIT_NEGATIVE if result.empty else EXIT_OK


def _cmd_fuzz(args) -> int:
    # Imported here: the fuzz harness pulls in the orchestrator/server
    # stack, which the data-file subcommands never need.
    from .fuzz import run_fuzz
    from .fuzz.runner import harvest_corpus, replay_corpus

    matrix = (
        [name.strip() for name in args.matrix.split(",") if name.strip()]
        if args.matrix
        else None
    )
    if args.replay:
        problems = replay_corpus(args.replay, matrix=matrix)
        for problem in problems:
            print(problem)
        print(
            f"# replayed {len(args.replay)} corpus file(s): "
            f"{len(problems)} problem(s)",
            file=sys.stderr,
        )
        return EXIT_OK if not problems else EXIT_NEGATIVE
    if args.harvest:
        written = harvest_corpus(
            args.cases, args.seed, args.corpus, matrix=matrix
        )
        for path in written:
            print(path)
        print(f"# wrote {len(written)} corpus file(s)", file=sys.stderr)
        return EXIT_OK
    report = run_fuzz(
        args.cases,
        args.seed,
        matrix=matrix,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        log=lambda message: print(message, file=sys.stderr),
    )
    print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    if report.failures:
        print(
            f"# {len(report.failures)} oracle disagreement(s); shrunk "
            f"repros under {args.corpus}",
            file=sys.stderr,
        )
        return EXIT_NEGATIVE
    return EXIT_OK


def _cmd_stream(args) -> int:
    # Imported here: the streaming driver rides on the client SDK and is
    # only needed by this subcommand.
    from .streaming import (
        ColdReference,
        StreamingSession,
        generate_trace,
        load_trace,
        save_trace,
    )

    if args.trace:
        trace = load_trace(args.trace)
    else:
        if args.edits is None:
            raise ApiError(
                "bad-request",
                "either --trace FILE or --seed N --edits N is required",
            )
        trace = generate_trace(
            args.seed, args.edits, ops_per_edit=args.ops_per_edit
        )
    if args.save_trace:
        save_trace(trace, args.save_trace)
        print(f"# trace written to {args.save_trace}", file=sys.stderr)
    verify = ColdReference(trace) if args.verify else None
    client, _scope = _client(args)
    with client:
        report = StreamingSession(client, trace, verify=verify).run()
        _print_stats(client, args)
    doc = report.to_json()
    doc["trace"] = {
        "seed": trace.get("seed"),
        "edits": trace.get("edits"),
        "ops_per_edit": trace.get("ops_per_edit"),
        "verified": bool(verify),
    }
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"# report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return EXIT_OK


def _cmd_serve(args) -> int:
    workspace = Workspace.from_files(
        schema=args.schema, sigma=args.sigma, view=args.view
    )
    service = PropagationService(workspace, **_service_options(args))
    server_options = dict(shard_worker=args.shard_worker)
    try:
        if args.transport == "http":
            serve_http(service, args.host, args.port or 0, **server_options)
        elif args.port is not None:
            serve_tcp(service, args.host, args.port, **server_options)
        else:
            serve_stdio(service, **server_options)
    except KeyboardInterrupt:  # pragma: no cover - interactive escape
        pass
    finally:
        service.close()
    return EXIT_OK


def _cmd_store_serve(args) -> int:
    # Imported here: the blob-store server is asyncio machinery the
    # data-file subcommands never need (and repro.store deliberately
    # keeps it out of its package init).
    from .store import MemoryStore, SqliteStore
    from .store.server import serve_store

    if args.cache_dir and (args.quota_entries or args.quota_ttl):
        raise ApiError(
            "bad-request",
            "--quota-entries/--quota-ttl configure the in-memory backing "
            "and do not apply to --cache-dir (sqlite quotas are the "
            "filesystem's); pick one backing",
        )
    if args.cache_dir:
        store = SqliteStore.open_dir(args.cache_dir)
    else:
        store = MemoryStore(
            max_entries=args.quota_entries, ttl_s=args.quota_ttl
        )
    try:
        serve_store(store, args.host, args.port or 0)
    except KeyboardInterrupt:  # pragma: no cover - interactive escape
        pass
    return EXIT_OK


def _reject_remote_endpoint(args, command: str) -> None:
    # Only an *explicit* --endpoint is rejected: an ambient
    # REPRO_ENDPOINT set for the service-routed subcommands must not
    # break these purely-local data commands.
    url = getattr(args, "endpoint", None)
    if url and not url.startswith("local:"):
        raise ApiError(
            "bad-request",
            f"'{command}' runs on local data files and has no wire op; it "
            f"only accepts local:// endpoints, got {url!r}",
        )
    if getattr(args, "replica", None):
        raise ApiError(
            "bad-request",
            f"'{command}' runs on local data files and has no wire op; "
            f"--replica does not apply",
        )


def _cmd_validate(args) -> int:
    _reject_remote_endpoint(args, "validate")
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    rules = repro_io.dependencies_from_json(repro_io.load_json(args.rules))
    database = repro_io.instance_from_json(repro_io.load_json(args.data), schema)
    violations = detect(rules, database)
    if not violations:
        print("clean: no violations")
        return EXIT_OK
    for summary in summarize(violations):
        print(
            f"{summary.total} violation(s), {summary.dirty_tuples} dirty "
            f"tuple(s): {summary.rule}"
        )
    return EXIT_NEGATIVE


def _cmd_repair(args) -> int:
    _reject_remote_endpoint(args, "repair")
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    rules = repro_io.dependencies_from_json(repro_io.load_json(args.rules))
    database = repro_io.instance_from_json(repro_io.load_json(args.data), schema)
    fixed, edits = repair(rules, database)
    print(f"repaired with {len(edits)} edit(s)")
    for edit in edits:
        print(
            f"  {edit.relation}.{edit.attribute}: "
            f"{edit.old_value!r} -> {edit.new_value!r}"
        )
    if args.out:
        repro_io.dump_json(repro_io.instance_to_json(fixed), args.out)
        print(f"# wrote repaired instance to {args.out}", file=sys.stderr)
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFD propagation analysis (Fan et al., VLDB 2008)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the subcommand under cProfile and print the top 20 "
        "functions by cumulative time to stderr (exit code unchanged)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, required=True):
        p.add_argument(
            "--schema", required=required, help="schema JSON file"
        )
        p.add_argument(
            "--sigma", required=required, help="source dependencies JSON"
        )
        p.add_argument("--view", required=required, help="view JSON file")

    def endpoint_option(p):
        p.add_argument(
            "--endpoint",
            help="endpoint URL to run against: local:// (default), "
            "tcp://host:port (a `repro serve --port` server) or "
            "http://host:port (`repro serve --transport http`); "
            "REPRO_ENDPOINT sets the default",
        )
        p.add_argument(
            "--replica",
            action="append",
            metavar="URL",
            help="a replica endpoint (repeat per replica): the request "
            "load-balances across the listed identical workers and fails "
            "over when one dies; mutually exclusive with --endpoint",
        )
        p.add_argument(
            "--retries",
            type=int,
            default=0,
            help="retry transient endpoint failures (unavailable, "
            "idempotent requests only) up to this many times with "
            "exponential backoff (default 0: fail fast)",
        )
        p.add_argument(
            "--backoff",
            type=float,
            default=0.05,
            help="base backoff delay in seconds before the first retry, "
            "doubling per attempt with jitter (default 0.05)",
        )

    def engine_options(p):
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the engine caches (ablation baseline; also "
            "disables --cache-dir and --jobs)",
        )
        p.add_argument(
            "--stats",
            action="store_true",
            help="print the endpoint's engine cache counters to stderr",
        )
        p.add_argument(
            "--cache-dir",
            help="persist verdicts/covers in a sqlite store under this "
            "directory (shared across processes; survives restarts; "
            "local:// endpoints and serve — remote servers keep their own)",
        )
        p.add_argument(
            "--cache-size",
            type=int,
            help="LRU capacity of each in-memory memo tier (default "
            "unbounded; local:// endpoints and serve)",
        )
        p.add_argument(
            "--store-url",
            help="persistent-tier store URL: sqlite://DIR (same as "
            "--cache-dir), store://host:port (a `repro store-serve` "
            "server shared by a worker fleet) or redis://host:port[/db]; "
            "takes precedence over --cache-dir; REPRO_STORE_URL sets "
            "the default (local:// endpoints and serve)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="fan cache-miss queries out across this many workers "
            "(local:// endpoints and serve)",
        )
        p.add_argument(
            "--pool",
            choices=("thread", "process"),
            default="thread",
            help="executor kind for --jobs > 1 (default: thread)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=1,
            help="deal the k^2 branch-pair chase of union views into this "
            "many deterministic shards (verdicts are shard-count "
            "invariant; honored by any endpoint)",
        )
        p.add_argument(
            "--kernel",
            choices=("bitset", "baseline"),
            help="chase/closure implementation: bitset (packed fast path, "
            "the default) or baseline (the differential oracle); "
            "REPRO_KERNEL sets the default; answers are identical either "
            "way (honored by any endpoint)",
        )

    check = sub.add_parser("check", help="decide Sigma |=_V phi")
    common(check)
    check.add_argument(
        "--phi", required=True, help="target dependency JSON (single or list)"
    )
    check.add_argument(
        "--witness", action="store_true", help="print a counterexample database"
    )
    endpoint_option(check)
    engine_options(check)
    check.set_defaults(func=_cmd_check)

    batch = sub.add_parser(
        "propagate-batch",
        help="decide Sigma |=_V phi for a batch of targets (cached engine)",
    )
    common(batch)
    batch.add_argument(
        "--phi", required=True, help="target dependency JSON (single or list)"
    )
    endpoint_option(batch)
    engine_options(batch)
    batch.add_argument("--out", help="write the propagated targets to this JSON file")
    batch.set_defaults(func=_cmd_propagate_batch)

    cover = sub.add_parser(
        "cover", help="compute a propagation cover (cached engine)"
    )
    common(cover)
    endpoint_option(cover)
    engine_options(cover)
    cover.add_argument("--out", help="write the cover to this JSON file")
    cover.set_defaults(func=_cmd_cover)

    empty = sub.add_parser("empty", help="is the view always empty?")
    common(empty)
    endpoint_option(empty)
    engine_options(empty)
    empty.set_defaults(func=_cmd_empty)

    fuzz = sub.add_parser(
        "fuzz",
        help="property-based differential fuzzing: seeded random "
        "Sigma/view cases checked for byte-level agreement across the "
        "engine/transport configuration matrix",
    )
    fuzz.add_argument(
        "--cases", type=int, default=200, help="number of cases (default 200)"
    )
    fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="run seed; the same seed reproduces the same case "
        "fingerprints (default 0)",
    )
    fuzz.add_argument(
        "--matrix",
        help="comma-separated configuration subset (default: every entry); "
        "the baseline reference is always included",
    )
    fuzz.add_argument(
        "--corpus",
        default="tests/fuzz_corpus",
        help="directory for shrunk repro files (default tests/fuzz_corpus)",
    )
    fuzz.add_argument(
        "--no-shrink",
        action="store_true",
        help="persist failing cases unshrunk (harness triage)",
    )
    fuzz.add_argument(
        "--replay",
        nargs="+",
        metavar="FILE",
        help="replay these corpus files through the matrix instead of "
        "generating cases",
    )
    fuzz.add_argument(
        "--harvest",
        action="store_true",
        help="scan --cases agreeing cases and commit one shrunk "
        "answer-pinning anchor per profile to --corpus",
    )
    fuzz.set_defaults(func=_cmd_fuzz)

    stream = sub.add_parser(
        "stream",
        help="replay a continuous-edit trace (Sigma edits interleaved "
        "with check/cover traffic) against an endpoint, measuring "
        "per-edit latency and retained warmth",
    )
    stream.add_argument(
        "--trace",
        help="replay this repro-trace/1 JSON file (instead of generating "
        "one from --seed/--edits)",
    )
    stream.add_argument(
        "--seed",
        type=int,
        default=0,
        help="generation seed; the same seed reproduces the same trace "
        "byte for byte (default 0)",
    )
    stream.add_argument(
        "--edits",
        type=int,
        help="number of Sigma edits to generate (required without --trace)",
    )
    stream.add_argument(
        "--ops-per-edit",
        type=int,
        default=2,
        help="check/cover ops interleaved after each edit (default 2)",
    )
    stream.add_argument(
        "--save-trace",
        metavar="FILE",
        help="also write the (generated or loaded) trace to FILE",
    )
    stream.add_argument(
        "--out", help="write the session report JSON to this file"
    )
    stream.add_argument(
        "--verify",
        action="store_true",
        help="differentially verify every answer against a fresh cold "
        "recompute as the session runs (slow; the byte-identity contract "
        "of the delta path)",
    )
    endpoint_option(stream)
    engine_options(stream)
    stream.set_defaults(func=_cmd_stream)

    serve = sub.add_parser(
        "serve",
        help="long-lived server over one warm service: NDJSON on stdin "
        "(default) or TCP (--port), HTTP with --transport http",
    )
    common(serve, required=False)
    engine_options(serve)
    serve.add_argument(
        "--transport",
        choices=("ndjson", "http"),
        default="ndjson",
        help="wire format: ndjson (stdin, or TCP with --port) or http "
        "(HTTP/1.1 JSON; --port 0 if unset)",
    )
    serve.add_argument(
        "--port",
        type=int,
        help="listen on TCP instead of stdin (0 picks an ephemeral port, "
        "announced on stderr)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default loopback)"
    )
    serve.add_argument(
        "--shard-worker",
        action="store_true",
        help="serve partial shard_index verdicts for a ShardOrchestrator "
        "fleet (refused otherwise, so partial verdicts never leak)",
    )
    serve.set_defaults(func=_cmd_serve)

    store_serve = sub.add_parser(
        "store-serve",
        help="long-lived blob-store server (NDJSON over TCP) sharing one "
        "persistent cache tier across a worker fleet; point workers at "
        "it with --store-url store://host:port",
    )
    store_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP listen port (default 0: ephemeral, announced on stderr)",
    )
    store_serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default loopback)"
    )
    store_serve.add_argument(
        "--cache-dir",
        help="back the server with the schema-versioned sqlite store "
        "under this directory (default: in-memory)",
    )
    store_serve.add_argument(
        "--quota-entries",
        type=int,
        help="in-memory backing only: LRU-evict beyond this many entries "
        "per table",
    )
    store_serve.add_argument(
        "--quota-ttl",
        type=float,
        help="in-memory backing only: expire entries after this many "
        "seconds",
    )
    store_serve.set_defaults(func=_cmd_store_serve)

    validate = sub.add_parser("validate", help="detect CFD violations in data")
    validate.add_argument("--schema", required=True)
    validate.add_argument("--rules", required=True)
    validate.add_argument("--data", required=True)
    endpoint_option(validate)
    validate.set_defaults(func=_cmd_validate)

    rep = sub.add_parser("repair", help="greedily repair CFD violations")
    rep.add_argument("--schema", required=True)
    rep.add_argument("--rules", required=True)
    rep.add_argument("--data", required=True)
    rep.add_argument("--out", help="write the repaired instance here")
    endpoint_option(rep)
    rep.set_defaults(func=_cmd_repair)
    return parser


def _profiled(args) -> int:
    """Run the subcommand under cProfile; stats go to stderr.

    The report never contaminates stdout (where verdicts, covers and
    JSON documents land), so ``--profile`` composes with shell pipelines
    and ``--out`` files.
    """
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        return args.func(args)
    finally:
        profiler.disable()
        buffer = io.StringIO()
        stats = pstats.Stats(profiler, stream=buffer)
        stats.sort_stats("cumulative").print_stats(20)
        print(buffer.getvalue(), file=sys.stderr, end="")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Every failure is normalized through the :class:`repro.api.ApiError`
    taxonomy: one ``error[kind]: message`` line on stderr and the kind's
    stable exit code (see :data:`repro.api.EXIT_CODES`).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.profile:
            return _profiled(args)
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 - the process boundary
        error = to_api_error(exc)
        print(f"error[{error.kind}]: {error.message}", file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
