"""Command-line interface.

Drives the library from JSON files (formats in :mod:`repro.io`):

    repro check   --schema s.json --sigma deps.json --view v.json --phi target.json
    repro propagate-batch --schema s.json --sigma deps.json --view v.json --phi targets.json
    repro cover   --schema s.json --sigma deps.json --view v.json [--out cover.json]
    repro empty   --schema s.json --sigma deps.json --view v.json
    repro validate --schema s.json --rules deps.json --data db.json
    repro repair  --schema s.json --rules deps.json --data db.json [--out fixed.json]

``propagate-batch`` and ``cover`` answer through the caching
:class:`~repro.propagation.engine.PropagationEngine`:

- ``--no-cache`` gives the uncached ablation baseline;
- ``--stats`` prints the engine's cache counters to stderr;
- ``--cache-dir DIR`` persists verdicts/covers in a schema-versioned
  sqlite store under ``DIR``, shared across processes (warm restarts);
- ``--cache-size N`` bounds each in-memory memo tier to an N-entry LRU;
- ``--jobs N`` fans cache-miss queries out across N workers
  (``--pool thread|process`` picks the executor).

Exit codes: 0 on a "positive" analysis result (propagated / nonempty /
clean), 1 on the negative one, 2 on usage or format errors — so shell
pipelines can branch on the verdict.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from . import io as repro_io
from .cleaning import detect, repair, summarize
from .propagation import (
    PropagationEngine,
    find_counterexample,
    propagates,
    view_is_empty,
)


def _load_common(args):
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    sigma = repro_io.dependencies_from_json(repro_io.load_json(args.sigma))
    view = repro_io.view_from_json(repro_io.load_json(args.view), schema)
    return schema, sigma, view


def _load_targets(path):
    """The ``--phi`` file: one dependency or a list of them."""
    doc = repro_io.load_json(path)
    targets = doc if isinstance(doc, list) else [doc]
    return [repro_io.dependency_from_json(item) for item in targets]


def _cmd_check(args) -> int:
    _, sigma, view = _load_common(args)
    all_propagated = True
    for phi in _load_targets(args.phi):
        verdict = propagates(sigma, view, phi)
        all_propagated &= verdict
        print(f"{'PROPAGATED' if verdict else 'not propagated'}: {phi}")
        if not verdict and args.witness:
            witness = find_counterexample(sigma, view, phi)
            assert witness is not None
            print(json.dumps(repro_io.instance_to_json(witness.database), indent=2))
    return 0 if all_propagated else 1


def _build_engine(args) -> PropagationEngine:
    """The engine configured by the shared cache/parallelism options."""
    return PropagationEngine(
        use_cache=not args.no_cache,
        cache_dir=args.cache_dir,
        cache_size=args.cache_size,
        jobs=args.jobs,
        pool=args.pool,
    )


def _cmd_propagate_batch(args) -> int:
    _, sigma, view = _load_common(args)
    phis = _load_targets(args.phi)
    with _build_engine(args) as engine:
        verdicts = engine.check_many(sigma, view, phis)
        for phi, verdict in zip(phis, verdicts):
            print(f"{'PROPAGATED' if verdict else 'not propagated'}: {phi}")
        propagated = sum(verdicts)
        print(f"# {propagated}/{len(verdicts)} propagated", file=sys.stderr)
        if args.stats:
            print(f"# {engine.stats}", file=sys.stderr)
    if args.out:
        cover = [phi for phi, verdict in zip(phis, verdicts) if verdict]
        repro_io.dump_json(repro_io.dependencies_to_json(cover), args.out)
        print(f"# wrote {len(cover)} propagated CFDs to {args.out}", file=sys.stderr)
    return 0 if propagated == len(verdicts) else 1


def _cmd_cover(args) -> int:
    _, sigma, view = _load_common(args)
    with _build_engine(args) as engine:
        cover = engine.cover(sigma, view)
        if args.stats:
            print(f"# {engine.stats}", file=sys.stderr)
    for phi in cover:
        print(phi)
    if args.out:
        repro_io.dump_json(repro_io.dependencies_to_json(cover), args.out)
        print(f"# wrote {len(cover)} CFDs to {args.out}", file=sys.stderr)
    return 0


def _cmd_empty(args) -> int:
    _, sigma, view = _load_common(args)
    empty = view_is_empty(sigma, view)
    print("EMPTY" if empty else "NONEMPTY")
    return 1 if empty else 0


def _cmd_validate(args) -> int:
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    rules = repro_io.dependencies_from_json(repro_io.load_json(args.rules))
    database = repro_io.instance_from_json(repro_io.load_json(args.data), schema)
    violations = detect(rules, database)
    if not violations:
        print("clean: no violations")
        return 0
    for summary in summarize(violations):
        print(
            f"{summary.total} violation(s), {summary.dirty_tuples} dirty "
            f"tuple(s): {summary.rule}"
        )
    return 1


def _cmd_repair(args) -> int:
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    rules = repro_io.dependencies_from_json(repro_io.load_json(args.rules))
    database = repro_io.instance_from_json(repro_io.load_json(args.data), schema)
    fixed, edits = repair(rules, database)
    print(f"repaired with {len(edits)} edit(s)")
    for edit in edits:
        print(
            f"  {edit.relation}.{edit.attribute}: "
            f"{edit.old_value!r} -> {edit.new_value!r}"
        )
    if args.out:
        repro_io.dump_json(repro_io.instance_to_json(fixed), args.out)
        print(f"# wrote repaired instance to {args.out}", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFD propagation analysis (Fan et al., VLDB 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--schema", required=True, help="schema JSON file")
        p.add_argument("--sigma", required=True, help="source dependencies JSON")
        p.add_argument("--view", required=True, help="view JSON file")

    def engine_options(p):
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the engine caches (ablation baseline; also "
            "disables --cache-dir and --jobs)",
        )
        p.add_argument(
            "--stats",
            action="store_true",
            help="print engine cache counters to stderr",
        )
        p.add_argument(
            "--cache-dir",
            help="persist verdicts/covers in a sqlite store under this "
            "directory (shared across processes; survives restarts)",
        )
        p.add_argument(
            "--cache-size",
            type=int,
            help="LRU capacity of each in-memory memo tier (default unbounded)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="fan cache misses out across this many workers "
            "(propagate-batch targets; SPCU candidate verification in "
            "cover — a single-SPC cover has no batch to fan out)",
        )
        p.add_argument(
            "--pool",
            choices=("thread", "process"),
            default="thread",
            help="executor kind for --jobs > 1 (default: thread)",
        )

    check = sub.add_parser("check", help="decide Sigma |=_V phi")
    common(check)
    check.add_argument(
        "--phi", required=True, help="target dependency JSON (single or list)"
    )
    check.add_argument(
        "--witness", action="store_true", help="print a counterexample database"
    )
    check.set_defaults(func=_cmd_check)

    batch = sub.add_parser(
        "propagate-batch",
        help="decide Sigma |=_V phi for a batch of targets (cached engine)",
    )
    common(batch)
    batch.add_argument(
        "--phi", required=True, help="target dependency JSON (single or list)"
    )
    engine_options(batch)
    batch.add_argument("--out", help="write the propagated targets to this JSON file")
    batch.set_defaults(func=_cmd_propagate_batch)

    cover = sub.add_parser(
        "cover", help="compute a propagation cover (cached engine)"
    )
    common(cover)
    engine_options(cover)
    cover.add_argument("--out", help="write the cover to this JSON file")
    cover.set_defaults(func=_cmd_cover)

    empty = sub.add_parser("empty", help="is the view always empty?")
    common(empty)
    empty.set_defaults(func=_cmd_empty)

    validate = sub.add_parser("validate", help="detect CFD violations in data")
    validate.add_argument("--schema", required=True)
    validate.add_argument("--rules", required=True)
    validate.add_argument("--data", required=True)
    validate.set_defaults(func=_cmd_validate)

    rep = sub.add_parser("repair", help="greedily repair CFD violations")
    rep.add_argument("--schema", required=True)
    rep.add_argument("--rules", required=True)
    rep.add_argument("--data", required=True)
    rep.add_argument("--out", help="write the repaired instance here")
    rep.set_defaults(func=_cmd_repair)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (repro_io.FormatError, FileNotFoundError, KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
