"""Command-line interface: a thin client of the propagation service.

Drives the library from JSON files (formats in :mod:`repro.io`):

    repro check   --schema s.json --sigma deps.json --view v.json --phi target.json
    repro propagate-batch --schema s.json --sigma deps.json --view v.json --phi targets.json
    repro cover   --schema s.json --sigma deps.json --view v.json [--out cover.json]
    repro empty   --schema s.json --sigma deps.json --view v.json
    repro serve   [--schema ... --sigma ... --view ...] [--port N]
    repro validate --schema s.json --rules deps.json --data db.json
    repro repair  --schema s.json --rules deps.json --data db.json [--out fixed.json]

Every analysis subcommand routes through one
:class:`repro.api.PropagationService`: the files load into a
:class:`repro.api.Workspace` once, a typed request is submitted, and the
service capability-routes it to the right procedure over the warm cached
engine.  ``repro serve`` keeps that service alive across requests — an
asyncio front end speaking line-delimited JSON on stdin (default) or TCP
(``--port``), with per-request stats in every response
(:mod:`repro.api.server`).

Engine knobs (shared by check / propagate-batch / cover / empty / serve):

- ``--no-cache`` gives the uncached ablation baseline;
- ``--stats`` prints the engine's cache counters to stderr;
- ``--cache-dir DIR`` persists verdicts/covers in a schema-versioned
  sqlite store under ``DIR``, shared across processes (warm restarts);
- ``--cache-size N`` bounds each in-memory memo tier (and each tableau
  cache layer) to an N-entry LRU;
- ``--jobs N`` fans cache-miss queries out across N workers
  (``--pool thread|process`` picks the executor);
- ``--shards N`` deals the k² branch-pair chase of union views into N
  deterministic shards executed through the same pool (verdicts are
  shard-count invariant).

Exit codes follow the stable taxonomy of :mod:`repro.api.errors`:
0 on a "positive" analysis result (propagated / nonempty / clean), 1 on
the negative one, 2 for format / not-found / bad-request errors, 3 for
unsupported view languages, 4 for internal failures — so shell pipelines
can branch on the verdict and on the failure class.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from . import io as repro_io
from .api import (
    CheckRequest,
    CoverRequest,
    EXIT_NEGATIVE,
    EXIT_OK,
    EmptinessRequest,
    PropagationService,
    Workspace,
    serve_stdio,
    serve_tcp,
    to_api_error,
)
from .cleaning import detect, repair, summarize


def _service(args) -> PropagationService:
    """The per-invocation service over the files' workspace."""
    workspace = Workspace.from_files(
        schema=getattr(args, "schema", None),
        sigma=getattr(args, "sigma", None),
        view=getattr(args, "view", None),
    )
    return PropagationService(
        workspace,
        use_cache=not getattr(args, "no_cache", False),
        cache_dir=getattr(args, "cache_dir", None),
        cache_size=getattr(args, "cache_size", None),
        jobs=getattr(args, "jobs", 1),
        pool=getattr(args, "pool", "thread"),
        shards=getattr(args, "shards", 1),
    )


def _load_targets(path):
    """The ``--phi`` file: one dependency or a list of them."""
    doc = repro_io.load_json(path)
    targets = doc if isinstance(doc, list) else [doc]
    return [repro_io.dependency_from_json(item) for item in targets]


def _print_stats(service: PropagationService, args) -> None:
    if getattr(args, "stats", False):
        print(f"# {service.stats}", file=sys.stderr)


def _cmd_check(args) -> int:
    phis = _load_targets(args.phi)
    with _service(args) as service:
        result = service.check(CheckRequest(targets=phis, witness=args.witness))
        for index, (phi, verdict) in enumerate(zip(phis, result.propagated)):
            print(f"{'PROPAGATED' if verdict else 'not propagated'}: {phi}")
            if not verdict and result.witnesses is not None:
                witness = result.witnesses[index]
                print(json.dumps(repro_io.instance_to_json(witness), indent=2))
        _print_stats(service, args)
    return EXIT_OK if result.all_propagated else EXIT_NEGATIVE


def _cmd_propagate_batch(args) -> int:
    phis = _load_targets(args.phi)
    with _service(args) as service:
        result = service.check(CheckRequest(targets=phis))
        for phi, verdict in zip(phis, result.propagated):
            print(f"{'PROPAGATED' if verdict else 'not propagated'}: {phi}")
        propagated = sum(result.propagated)
        print(f"# {propagated}/{len(result.propagated)} propagated", file=sys.stderr)
        _print_stats(service, args)
    if args.out:
        survivors = [
            phi for phi, verdict in zip(phis, result.propagated) if verdict
        ]
        repro_io.dump_json(repro_io.dependencies_to_json(survivors), args.out)
        print(
            f"# wrote {len(survivors)} propagated CFDs to {args.out}",
            file=sys.stderr,
        )
    return EXIT_OK if result.all_propagated else EXIT_NEGATIVE


def _cmd_cover(args) -> int:
    with _service(args) as service:
        result = service.cover(CoverRequest())
        _print_stats(service, args)
    for phi in result.cover:
        print(phi)
    if args.out:
        repro_io.dump_json(repro_io.dependencies_to_json(result.cover), args.out)
        print(f"# wrote {len(result.cover)} CFDs to {args.out}", file=sys.stderr)
    return EXIT_OK


def _cmd_empty(args) -> int:
    with _service(args) as service:
        result = service.emptiness(EmptinessRequest())
        _print_stats(service, args)
    print("EMPTY" if result.empty else "NONEMPTY")
    return EXIT_NEGATIVE if result.empty else EXIT_OK


def _cmd_serve(args) -> int:
    service = _service(args)
    try:
        if args.port is not None:
            serve_tcp(service, args.host, args.port)
        else:
            serve_stdio(service)
    except KeyboardInterrupt:  # pragma: no cover - interactive escape
        pass
    finally:
        service.close()
    return EXIT_OK


def _cmd_validate(args) -> int:
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    rules = repro_io.dependencies_from_json(repro_io.load_json(args.rules))
    database = repro_io.instance_from_json(repro_io.load_json(args.data), schema)
    violations = detect(rules, database)
    if not violations:
        print("clean: no violations")
        return EXIT_OK
    for summary in summarize(violations):
        print(
            f"{summary.total} violation(s), {summary.dirty_tuples} dirty "
            f"tuple(s): {summary.rule}"
        )
    return EXIT_NEGATIVE


def _cmd_repair(args) -> int:
    schema = repro_io.schema_from_json(repro_io.load_json(args.schema))
    rules = repro_io.dependencies_from_json(repro_io.load_json(args.rules))
    database = repro_io.instance_from_json(repro_io.load_json(args.data), schema)
    fixed, edits = repair(rules, database)
    print(f"repaired with {len(edits)} edit(s)")
    for edit in edits:
        print(
            f"  {edit.relation}.{edit.attribute}: "
            f"{edit.old_value!r} -> {edit.new_value!r}"
        )
    if args.out:
        repro_io.dump_json(repro_io.instance_to_json(fixed), args.out)
        print(f"# wrote repaired instance to {args.out}", file=sys.stderr)
    return EXIT_OK


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CFD propagation analysis (Fan et al., VLDB 2008)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, required=True):
        p.add_argument(
            "--schema", required=required, help="schema JSON file"
        )
        p.add_argument(
            "--sigma", required=required, help="source dependencies JSON"
        )
        p.add_argument("--view", required=required, help="view JSON file")

    def engine_options(p):
        p.add_argument(
            "--no-cache",
            action="store_true",
            help="disable the engine caches (ablation baseline; also "
            "disables --cache-dir and --jobs)",
        )
        p.add_argument(
            "--stats",
            action="store_true",
            help="print engine cache counters to stderr",
        )
        p.add_argument(
            "--cache-dir",
            help="persist verdicts/covers in a sqlite store under this "
            "directory (shared across processes; survives restarts)",
        )
        p.add_argument(
            "--cache-size",
            type=int,
            help="LRU capacity of each in-memory memo tier (default unbounded)",
        )
        p.add_argument(
            "--jobs",
            type=int,
            default=1,
            help="fan cache misses out across this many workers "
            "(propagate-batch targets; SPCU candidate verification in "
            "cover — a single-SPC cover has no batch to fan out)",
        )
        p.add_argument(
            "--pool",
            choices=("thread", "process"),
            default="thread",
            help="executor kind for --jobs > 1 (default: thread)",
        )
        p.add_argument(
            "--shards",
            type=int,
            default=1,
            help="deal the k^2 branch-pair chase of union views into this "
            "many deterministic shards, executed through the --jobs pool "
            "(verdicts are shard-count invariant)",
        )

    check = sub.add_parser("check", help="decide Sigma |=_V phi")
    common(check)
    check.add_argument(
        "--phi", required=True, help="target dependency JSON (single or list)"
    )
    check.add_argument(
        "--witness", action="store_true", help="print a counterexample database"
    )
    engine_options(check)
    check.set_defaults(func=_cmd_check)

    batch = sub.add_parser(
        "propagate-batch",
        help="decide Sigma |=_V phi for a batch of targets (cached engine)",
    )
    common(batch)
    batch.add_argument(
        "--phi", required=True, help="target dependency JSON (single or list)"
    )
    engine_options(batch)
    batch.add_argument("--out", help="write the propagated targets to this JSON file")
    batch.set_defaults(func=_cmd_propagate_batch)

    cover = sub.add_parser(
        "cover", help="compute a propagation cover (cached engine)"
    )
    common(cover)
    engine_options(cover)
    cover.add_argument("--out", help="write the cover to this JSON file")
    cover.set_defaults(func=_cmd_cover)

    empty = sub.add_parser("empty", help="is the view always empty?")
    common(empty)
    engine_options(empty)
    empty.set_defaults(func=_cmd_empty)

    serve = sub.add_parser(
        "serve",
        help="long-lived NDJSON server over one warm service "
        "(stdin by default, TCP with --port)",
    )
    common(serve, required=False)
    engine_options(serve)
    serve.add_argument(
        "--port",
        type=int,
        help="listen on TCP instead of stdin (0 picks an ephemeral port, "
        "announced on stderr)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind address (default loopback)"
    )
    serve.set_defaults(func=_cmd_serve)

    validate = sub.add_parser("validate", help="detect CFD violations in data")
    validate.add_argument("--schema", required=True)
    validate.add_argument("--rules", required=True)
    validate.add_argument("--data", required=True)
    validate.set_defaults(func=_cmd_validate)

    rep = sub.add_parser("repair", help="greedily repair CFD violations")
    rep.add_argument("--schema", required=True)
    rep.add_argument("--rules", required=True)
    rep.add_argument("--data", required=True)
    rep.add_argument("--out", help="write the repaired instance here")
    rep.set_defaults(func=_cmd_repair)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Every failure is normalized through the :class:`repro.api.ApiError`
    taxonomy: one ``error[kind]: message`` line on stderr and the kind's
    stable exit code (see :data:`repro.api.EXIT_CODES`).
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 - the process boundary
        error = to_api_error(exc)
        print(f"error[{error.kind}]: {error.message}", file=sys.stderr)
        return error.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
