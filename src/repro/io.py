"""JSON (de)serialization for schemas, dependencies, views and data.

A downstream user drives the library from configuration files; this
module defines the stable wire format the CLI consumes:

Schema::

    {"relations": [
        {"name": "R",
         "attributes": [
            "A",                                   # string domain
            {"name": "B", "domain": "int"},        # named builtin domain
            {"name": "C", "domain": {"name": "bool",
                                     "values": [false, true]}}]}]}

Dependencies (a list; three shapes)::

    {"kind": "fd",  "relation": "R", "lhs": ["A"], "rhs": ["B"]}
    {"kind": "cfd", "relation": "R",
     "lhs": {"A": "_", "CC": {"const": "44"}}, "rhs": {"city": "_"}}
    {"kind": "cfd-equality", "relation": "R", "left": "A", "right": "B"}

Pattern entries: the string ``"_"`` is the wildcard; anything else is a
constant, with ``{"const": value}`` available to express the literal
string ``"_"`` or nested values unambiguously.

SPC view::

    {"name": "V",
     "atoms": [{"source": "R", "prefix": "t0."}        # rename by prefix
               | {"source": "R", "mapping": {...}}],
     "selection": [{"eq": ["t0.A", "t1.B"]}, {"attr": "t0.C", "value": 5}],
     "projection": ["t0.A", ...],
     "constants": {"CC": "44"}}

SPCU view::  {"name": "V", "branches": [<spc view>, ...]}

Database instance::  {"R": [{"A": 1, "B": 2}, ...]}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Union

from .algebra.instance import DatabaseInstance
from .algebra.ops import AttrEq, ConstEq, SelectionAtom
from .algebra.spc import RelationAtom, SPCView
from .algebra.spcu import SPCUView
from .core.cfd import CFD
from .core.domains import BOOL, Domain, INT, REAL, STRING
from .core.fd import FD
from .core.schema import Attribute, DatabaseSchema, RelationSchema
from .core.values import Const, WILDCARD, is_const, is_wildcard

Dependency = Union[CFD, FD]

_BUILTIN_DOMAINS = {
    "string": STRING,
    "int": INT,
    "real": REAL,
    "bool": BOOL,
}


class FormatError(ValueError):
    """Raised for malformed documents, with a path-ish context message."""


# ----------------------------------------------------------------------
# Domains and schemas.
# ----------------------------------------------------------------------


def domain_from_json(doc: Any) -> Domain:
    """Parse a domain from a builtin name or a ``{name, values}`` object."""
    if isinstance(doc, str):
        try:
            return _BUILTIN_DOMAINS[doc]
        except KeyError:
            raise FormatError(
                f"unknown builtin domain {doc!r}; "
                f"builtins are {sorted(_BUILTIN_DOMAINS)}"
            ) from None
    if isinstance(doc, Mapping):
        name = doc.get("name", "custom")
        values = doc.get("values")
        return Domain(name, tuple(values) if values is not None else None)
    raise FormatError(f"cannot parse domain from {doc!r}")


def domain_to_json(domain: Domain) -> Any:
    """Inverse of :func:`domain_from_json`."""
    for name, builtin in _BUILTIN_DOMAINS.items():
        if domain == builtin:
            return name
    if domain.is_finite:
        return {"name": domain.name, "values": list(domain.values)}
    return {"name": domain.name}


def schema_from_json(doc: Mapping[str, Any]) -> DatabaseSchema:
    """Parse a database schema document."""
    relations = []
    for rel_doc in doc.get("relations", []):
        attributes = []
        for attr_doc in rel_doc["attributes"]:
            if isinstance(attr_doc, str):
                attributes.append(Attribute(attr_doc))
            else:
                attributes.append(
                    Attribute(
                        attr_doc["name"],
                        domain_from_json(attr_doc.get("domain", "string")),
                    )
                )
        relations.append(RelationSchema(rel_doc["name"], attributes))
    return DatabaseSchema(relations)


def schema_to_json(schema: DatabaseSchema) -> dict[str, Any]:
    """Inverse of :func:`schema_from_json`."""
    return {
        "relations": [
            {
                "name": rel.name,
                "attributes": [
                    {"name": a.name, "domain": domain_to_json(a.domain)}
                    for a in rel.attributes
                ],
            }
            for rel in schema
        ]
    }


# ----------------------------------------------------------------------
# Dependencies.
# ----------------------------------------------------------------------


def _entry_from_json(doc: Any):
    if doc == "_":
        return WILDCARD
    if isinstance(doc, Mapping) and "const" in doc:
        return Const(doc["const"])
    return Const(doc)


def _entry_to_json(entry) -> Any:
    if is_wildcard(entry):
        return "_"
    assert is_const(entry)
    if entry.value == "_" or isinstance(entry.value, Mapping):
        return {"const": entry.value}
    return entry.value


def dependency_from_json(doc: Mapping[str, Any]) -> Dependency:
    """Parse one fd / cfd / cfd-equality document."""
    kind = doc.get("kind", "cfd")
    if kind == "fd":
        return FD(doc["relation"], doc["lhs"], doc["rhs"])
    if kind == "cfd-equality":
        return CFD.equality(doc["relation"], doc["left"], doc["right"])
    if kind == "cfd":
        lhs = {a: _entry_from_json(e) for a, e in doc["lhs"].items()}
        rhs = {a: _entry_from_json(e) for a, e in doc["rhs"].items()}
        return CFD(doc["relation"], lhs, rhs)
    raise FormatError(f"unknown dependency kind {kind!r}")


def dependency_to_json(dep: Dependency) -> dict[str, Any]:
    """Inverse of :func:`dependency_from_json`."""
    if isinstance(dep, FD):
        return {
            "kind": "fd",
            "relation": dep.relation,
            "lhs": list(dep.lhs),
            "rhs": list(dep.rhs),
        }
    if dep.is_equality:
        return {
            "kind": "cfd-equality",
            "relation": dep.relation,
            "left": dep.lhs[0][0],
            "right": dep.rhs[0][0],
        }
    return {
        "kind": "cfd",
        "relation": dep.relation,
        "lhs": {a: _entry_to_json(e) for a, e in dep.lhs},
        "rhs": {a: _entry_to_json(e) for a, e in dep.rhs},
    }


def dependencies_from_json(docs: Iterable[Mapping[str, Any]]) -> list[Dependency]:
    """Parse a list of dependency documents."""
    return [dependency_from_json(doc) for doc in docs]


def dependencies_to_json(deps: Iterable[Dependency]) -> list[dict[str, Any]]:
    """Serialize a list of dependencies."""
    return [dependency_to_json(dep) for dep in deps]


# ----------------------------------------------------------------------
# Views.
# ----------------------------------------------------------------------


def _selection_from_json(doc: Mapping[str, Any]) -> SelectionAtom:
    if "eq" in doc:
        left, right = doc["eq"]
        return AttrEq(left, right)
    if "attr" in doc:
        return ConstEq(doc["attr"], doc["value"])
    raise FormatError(f"cannot parse selection atom {doc!r}")


def _selection_to_json(atom: SelectionAtom) -> dict[str, Any]:
    if isinstance(atom, AttrEq):
        return {"eq": [atom.left, atom.right]}
    return {"attr": atom.attr, "value": atom.value}


def spc_view_from_json(
    doc: Mapping[str, Any], schema: DatabaseSchema
) -> SPCView:
    atoms = []
    for atom_doc in doc.get("atoms", []):
        source = atom_doc["source"]
        if "mapping" in atom_doc:
            mapping = dict(atom_doc["mapping"])
        else:
            prefix = atom_doc.get("prefix", "")
            mapping = {
                a: f"{prefix}{a}"
                for a in schema.relation(source).attribute_names
            }
        atoms.append(RelationAtom(source, mapping))
    return SPCView(
        doc.get("name", "V"),
        schema,
        atoms,
        [_selection_from_json(s) for s in doc.get("selection", [])],
        doc.get("projection"),
        doc.get("constants", {}),
    )


def spc_view_to_json(view: SPCView) -> dict[str, Any]:
    """Inverse of :func:`spc_view_from_json`."""
    return {
        "name": view.name,
        "atoms": [
            {"source": atom.source, "mapping": dict(atom.mapping)}
            for atom in view.atoms
        ],
        "selection": [_selection_to_json(s) for s in view.selection],
        "projection": list(view.projection),
        "constants": dict(view.constants),
    }


def view_from_json(
    doc: Mapping[str, Any], schema: DatabaseSchema
) -> SPCView | SPCUView:
    if "branches" in doc:
        name = doc.get("name", "V")
        branches = [
            spc_view_from_json({**branch, "name": name}, schema)
            for branch in doc["branches"]
        ]
        return SPCUView(name, branches)
    return spc_view_from_json(doc, schema)


def view_to_json(view: SPCView | SPCUView) -> dict[str, Any]:
    """Serialize an SPC or SPCU view (branch list form for the latter)."""
    if isinstance(view, SPCUView):
        return {
            "name": view.name,
            "branches": [spc_view_to_json(b) for b in view.branches],
        }
    return spc_view_to_json(view)


# ----------------------------------------------------------------------
# Instances.
# ----------------------------------------------------------------------


def instance_from_json(
    doc: Mapping[str, Any], schema: DatabaseSchema
) -> DatabaseInstance:
    return DatabaseInstance(schema, {name: rows for name, rows in doc.items()})


def instance_to_json(database: DatabaseInstance) -> dict[str, Any]:
    return {name: rel.rows for name, rel in database.relations.items()}


# ----------------------------------------------------------------------
# File helpers.
# ----------------------------------------------------------------------


def load_json(path: str | Path) -> Any:
    """Read a JSON document from *path*."""
    with open(path) as handle:
        return json.load(handle)


def dump_json(doc: Any, path: str | Path) -> None:
    """Write *doc* to *path* as stable, indented JSON."""
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
