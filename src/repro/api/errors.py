"""The stable error taxonomy of the service API.

Every failure that crosses the :class:`~repro.api.PropagationService`
boundary — in-process call, CLI subcommand or server request — is an
:class:`ApiError` with one of the :data:`KINDS` below.  The taxonomy is
part of the wire format: clients branch on ``error.kind``, shell
pipelines branch on the exit code, and both are stable across releases.

==================  =========  ==================================================
kind                exit code  wraps / raised for
==================  =========  ==================================================
``format``          2          :class:`repro.io.FormatError` — malformed JSON
                               documents (schemas, dependencies, views, data)
``not-found``       2          missing input files; unresolved workspace names
``bad-request``     2          everything else wrong with the *request*: unknown
                               ops, dependencies referencing unprojected view
                               attributes, invalid option combinations
``unsupported-view``3          :class:`repro.propagation.UnsupportedViewError` —
                               view languages with no decision procedure
``internal``        4          unexpected failures inside the service
``unavailable``     5          transport failures talking to a remote endpoint:
                               connection refused, connection dropped before a
                               complete response, endpoint gone mid-request
==================  =========  ==================================================

For HTTP endpoints the same taxonomy maps onto status codes through
:data:`HTTP_STATUS` (the response body still carries the full error
document, so HTTP clients branch on ``kind`` exactly like NDJSON ones).

``EXIT_OK`` (0) and ``EXIT_NEGATIVE`` (1) are not errors: they encode the
analysis verdict itself (propagated / nonempty / clean versus their
negations), as the CLI always has.
"""

from __future__ import annotations

from contextlib import contextmanager

from ..io import FormatError
from ..propagation.check import UnsupportedViewError

__all__ = [
    "ApiError",
    "EXIT_CODES",
    "EXIT_NEGATIVE",
    "EXIT_OK",
    "HTTP_STATUS",
    "KINDS",
    "api_errors",
    "to_api_error",
]

#: Exit code for a positive analysis verdict (propagated / nonempty / clean).
EXIT_OK = 0
#: Exit code for the negative verdict (not propagated / empty / dirty).
EXIT_NEGATIVE = 1

#: ``kind -> process exit code``; the single source of truth the CLI maps
#: through (documented in ``docs/api.md``).
EXIT_CODES = {
    "format": 2,
    "not-found": 2,
    "bad-request": 2,
    "unsupported-view": 3,
    "internal": 4,
    "unavailable": 5,
}

#: The closed set of error kinds.
KINDS = frozenset(EXIT_CODES)

#: ``kind -> HTTP status code`` for the ``http://`` endpoint transport
#: (the body still carries the full ``error`` document).
HTTP_STATUS = {
    "format": 400,
    "bad-request": 400,
    "not-found": 404,
    "unsupported-view": 501,
    "internal": 500,
    "unavailable": 503,
}


class ApiError(Exception):
    """A service-level failure with a stable machine-readable *kind*."""

    def __init__(self, kind: str, message: str) -> None:
        if kind not in KINDS:
            raise ValueError(f"unknown ApiError kind {kind!r}; kinds are {sorted(KINDS)}")
        super().__init__(message)
        self.kind = kind
        self.message = message

    @property
    def exit_code(self) -> int:
        return EXIT_CODES[self.kind]

    def to_json(self) -> dict:
        """The wire shape of an error (the ``error`` response member)."""
        return {"kind": self.kind, "message": self.message}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ApiError({self.kind!r}, {self.message!r})"


def to_api_error(exc: BaseException) -> ApiError:
    """Normalize *exc* into the taxonomy (identity on :class:`ApiError`)."""
    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, FormatError):
        return ApiError("format", str(exc))
    if isinstance(exc, UnsupportedViewError):
        return ApiError("unsupported-view", str(exc))
    if isinstance(exc, FileNotFoundError):
        name = getattr(exc, "filename", None) or str(exc)
        return ApiError("not-found", f"no such file: {name}")
    if isinstance(exc, (ConnectionError, TimeoutError)):
        return ApiError("unavailable", f"{type(exc).__name__}: {exc}")
    if isinstance(exc, KeyError):
        # Decision procedures signal dependencies over unprojected
        # attributes (and similar lookup failures) with KeyError.
        return ApiError("bad-request", str(exc.args[0]) if exc.args else str(exc))
    if isinstance(exc, (TypeError, ValueError)):
        return ApiError("bad-request", str(exc))
    return ApiError("internal", f"{type(exc).__name__}: {exc}")


@contextmanager
def api_errors():
    """Re-raise anything escaping the block as a normalized ApiError."""
    try:
        yield
    except Exception as exc:  # noqa: BLE001 - the normalization boundary
        raise to_api_error(exc) from exc
