"""``repro serve`` — the asyncio front end over one warm service.

A single long-lived :class:`~repro.api.PropagationService` (one engine
pool, one shared persistent store) answers NDJSON requests (see
:mod:`repro.api.wire`) over either transport:

- **stdio** (default): line-delimited JSON on stdin, responses on
  stdout — the pipe-friendly mode the smoke tests and benchmarks drive.
- **TCP** (``--port``, ``--host``): many concurrent connections into the
  same warm service; ``--port 0`` picks an ephemeral port, announced on
  stderr as ``listening on HOST:PORT``.

The event loop stays async while the CPU-bound decision procedures run
on a worker thread; a lock serializes engine access (the engine's own
``jobs``/``pool`` knobs provide intra-batch parallelism), so concurrent
connections interleave at request granularity and every request still
sees one consistent warm cache.  A ``shutdown`` op stops the server
after its response is written.
"""

from __future__ import annotations

import asyncio
import json
import sys
from typing import TextIO

from .service import PropagationService
from .wire import handle_request

__all__ = ["PropagationServer", "serve_stdio", "serve_tcp"]


class PropagationServer:
    """Wraps one service with the NDJSON request loop."""

    def __init__(self, service: PropagationService) -> None:
        self.service = service
        self._lock = asyncio.Lock()
        self._shutdown = asyncio.Event()

    async def respond_line(self, line: str) -> dict:
        """Answer one request line (the transport-independent core)."""
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            return {
                "ok": False,
                "error": {"kind": "bad-request", "message": f"invalid JSON: {exc}"},
            }
        async with self._lock:
            response = await asyncio.get_running_loop().run_in_executor(
                None, handle_request, doc, self.service
            )
        if response.get("op") == "shutdown" and response.get("ok"):
            self._shutdown.set()
        return response

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One TCP client: requests in, responses out, in order."""
        try:
            while not self._shutdown.is_set():
                line = await reader.readline()
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self.respond_line(line.decode())
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        finally:
            writer.close()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Listen until a ``shutdown`` op (or cancellation)."""
        server = await asyncio.start_server(self.handle_connection, host, port)
        bound = server.sockets[0].getsockname()
        print(f"listening on {bound[0]}:{bound[1]}", file=sys.stderr, flush=True)
        async with server:
            await self._shutdown.wait()

    async def serve_stdio(
        self, stdin: TextIO | None = None, stdout: TextIO | None = None
    ) -> None:
        """The pipe transport: one request line in, one response line out."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        loop = asyncio.get_running_loop()
        while not self._shutdown.is_set():
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            response = await self.respond_line(line)
            stdout.write(json.dumps(response) + "\n")
            stdout.flush()


def serve_stdio(service: PropagationService) -> None:
    """Run the stdio server to completion (the CLI's default transport)."""
    asyncio.run(PropagationServer(service).serve_stdio())


def serve_tcp(service: PropagationService, host: str, port: int) -> None:
    """Run the TCP server until shutdown (the CLI's ``--port`` transport)."""
    asyncio.run(PropagationServer(service).serve_tcp(host, port))
