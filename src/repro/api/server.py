"""``repro serve`` — the asyncio front ends over one warm service.

A single long-lived :class:`~repro.api.PropagationService` (one engine
pool, one shared persistent store) answers wire requests (see
:mod:`repro.api.wire`) over any of three front ends:

- **stdio** (default): line-delimited JSON on stdin, responses on
  stdout — the pipe-friendly mode the smoke tests and benchmarks drive.
- **TCP NDJSON** (``--port``, ``--host``): many concurrent connections
  into the same warm service; ``--port 0`` picks an ephemeral port,
  announced on stderr as ``listening on HOST:PORT``.  This is the
  ``tcp://`` endpoint scheme of :mod:`repro.api.transport`.
- **HTTP/1.1 JSON** (``--transport http``): the same documents behind
  ``POST /v1/{check,cover,empty,batch,update-sigma,register,shutdown}``
  and ``GET /v1/{ping,stats}``, with :class:`~repro.api.ApiError` kinds
  mapped to status codes (:data:`repro.api.errors.HTTP_STATUS`) — the
  loadbalancer-friendly ``http://`` endpoint scheme.

Concurrency model: the event loop stays async while the CPU-bound
decision procedures run on worker threads.  Requests are serialized
**per engine pool** (:meth:`PropagationService.pool_key`): two requests
that resolve to the same warm engine take the same lock, while requests
routed to different engine settings run concurrently.  Workspace
mutations (``register``, ``update-sigma``) are exclusive — they wait for
every in-flight request and block new ones until done — so every request
still sees one consistent warm cache.  A ``shutdown`` op stops the
server after its response is written.

Boundary hygiene: request lines and HTTP bodies larger than
``max_request_bytes`` are answered with a typed ``bad-request`` error
document (NDJSON framing is lost after an oversized line, so that
connection then closes); malformed JSON, unknown routes and wrong HTTP
methods all come back as error documents, never tracebacks or bare
disconnects.  Per-request ``shard_index`` (partial shard verdicts — the
distributed-orchestrator seam) is refused unless the server was started
as a shard worker (``--shard-worker``), so a normal endpoint can never
leak a partial verdict to a client that expects a full one.
"""

from __future__ import annotations

import asyncio
import json
import queue
import sys
import threading
import time
from contextlib import contextmanager
from typing import Iterator, Mapping, TextIO

from .errors import HTTP_STATUS
from .service import PropagationService
from .wire import HTTP_ROUTES, PROTOCOL_VERSION, handle_request

__all__ = [
    "DEFAULT_MAX_REQUEST_BYTES",
    "PropagationServer",
    "background_server",
    "serve_http",
    "serve_stdio",
    "serve_tcp",
]

#: Default bound on one request (an NDJSON line or an HTTP body).
DEFAULT_MAX_REQUEST_BYTES = 8 * 1024 * 1024

#: Ops that mutate shared service state and therefore lock exclusively.
_MUTATING_OPS = frozenset({"register", "update-sigma"})
#: Ops answered without touching any engine: no lock at all.
_LOCKLESS_OPS = frozenset({"ping", "shutdown"})

#: ``(method, path) -> op``: the server-side inversion of the shared
#: :data:`repro.api.wire.HTTP_ROUTES` table.
_HTTP_ROUTES = {
    (method, path): op for op, (method, path) in HTTP_ROUTES.items()
}
_HTTP_PATHS = {path for _, path in _HTTP_ROUTES}
_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


def _error_doc(kind: str, message: str, *, op: str | None = None) -> dict:
    doc: dict = {}
    if op is not None:
        doc["op"] = op
    doc.update({"ok": False, "error": {"kind": kind, "message": message}})
    return doc


class PropagationServer:
    """Wraps one service with the request loops of every transport.

    ``shard_worker=True`` lets requests carry ``shard_index`` (partial
    shard verdicts for a :class:`~repro.api.orchestrator.ShardOrchestrator`
    to AND); the flag is advertised in ``ping`` responses.
    ``max_request_bytes`` bounds a single request document on the wire.
    """

    def __init__(
        self,
        service: PropagationService,
        *,
        shard_worker: bool = False,
        max_request_bytes: int = DEFAULT_MAX_REQUEST_BYTES,
    ) -> None:
        self.service = service
        self.shard_worker = shard_worker
        self.max_request_bytes = max_request_bytes
        self._locks: dict[tuple, asyncio.Lock] = {}
        self._locks_guard = asyncio.Lock()
        self._shutdown = asyncio.Event()
        self._started = time.monotonic()
        self._served = 0
        # Open connection writers, so shutdown can close established
        # connections too — `async with server` only stops the listener,
        # and a fleet client left on a silent socket would block on its
        # transport timeout instead of failing fast as `unavailable`.
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Locking: per engine pool, exclusive for mutations.
    # ------------------------------------------------------------------

    def _lock_keys(self, doc) -> tuple[list[tuple], bool]:
        """The engine-pool keys *doc* touches, plus an exclusive flag."""
        if not isinstance(doc, Mapping):
            return [], False
        op = doc.get("op")
        if op in _MUTATING_OPS:
            return [], True
        if op == "batch":
            keys: set[tuple] = set()
            exclusive = False
            subs = doc.get("requests")
            for sub in subs if isinstance(subs, list) else []:
                sub_keys, sub_exclusive = self._lock_keys(sub)
                keys.update(sub_keys)
                exclusive = exclusive or sub_exclusive
            return sorted(keys, key=repr), exclusive
        if op in _LOCKLESS_OPS:
            return [], False
        try:
            # check / cover / empty / stats: the one pool they dispatch
            # to.  Unhashable garbage settings -> no lock; the request
            # fails typed validation inside `handle_request` anyway.
            return [self.service.pool_key(doc)], False
        except Exception:  # noqa: BLE001 - malformed settings
            return [], False

    def _shard_gate(self, doc) -> dict | None:
        """Refuse ``shard_index`` requests unless serving as shard worker."""
        if self.shard_worker or not isinstance(doc, Mapping):
            return None

        def mentions(sub) -> bool:
            if not isinstance(sub, Mapping):
                return False
            if sub.get("shard_index") is not None:
                return True
            requests = sub.get("requests")
            return isinstance(requests, list) and any(
                mentions(item) for item in requests
            )

        if not mentions(doc):
            return None
        refusal = _error_doc(
            "bad-request",
            "this endpoint does not serve partial shard verdicts; start it "
            "with --shard-worker to accept shard_index requests",
            op=doc.get("op") if isinstance(doc.get("op"), str) else None,
        )
        if "id" in doc:
            refusal = {"id": doc["id"], **refusal}
        return refusal

    async def handle_request(self, doc) -> dict:
        """Answer one wire document (the transport-independent core).

        Acquires the engine-pool lock(s) the document resolves to —
        exclusive for workspace mutations — runs the synchronous wire
        handler on a worker thread, and annotates ``ping`` results with
        the server-level capabilities.
        """
        refusal = self._shard_gate(doc)
        if refusal is not None:
            return refusal
        keys, exclusive = self._lock_keys(doc)
        if exclusive:
            # Holding the guard while draining every pool lock blocks
            # new lookups, so the mutation sees a quiesced service.
            async with self._locks_guard:
                locks = [self._locks[key] for key in sorted(self._locks, key=repr)]
                for lock in locks:
                    await lock.acquire()
                try:
                    response = await self._dispatch(doc)
                finally:
                    for lock in reversed(locks):
                        lock.release()
        else:
            async with self._locks_guard:
                locks = [
                    self._locks.setdefault(key, asyncio.Lock()) for key in keys
                ]
            for lock in locks:  # sorted keys -> deterministic order
                await lock.acquire()
            try:
                response = await self._dispatch(doc)
            finally:
                for lock in reversed(locks):
                    lock.release()
        if response.get("op") == "shutdown" and response.get("ok"):
            self._shutdown.set()
        return response

    async def _dispatch(self, doc) -> dict:
        self._served += 1
        response = await asyncio.get_running_loop().run_in_executor(
            None, handle_request, doc, self.service
        )
        if response.get("ok") and response.get("op") == "ping":
            # Health/uptime capabilities: what a fleet's check_health
            # probe records per worker.
            response["result"]["shard_worker"] = self.shard_worker
            response["result"]["uptime_s"] = round(
                time.monotonic() - self._started, 3
            )
            response["result"]["requests_served"] = self._served
        return response

    async def respond_line(self, line: str) -> dict:
        """Answer one NDJSON request line."""
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            return _error_doc("bad-request", f"invalid JSON: {exc}")
        return await self.handle_request(doc)

    # ------------------------------------------------------------------
    # NDJSON front ends (stdio pipe, TCP).
    # ------------------------------------------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One NDJSON TCP client: requests in, responses out, in order."""
        self._conn_writers.add(writer)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # Oversized line: the stream limit tripped and the
                    # buffered prefix is gone, so framing is lost — send
                    # the typed refusal and close this connection.
                    refusal = _error_doc(
                        "bad-request",
                        f"request line exceeds {self.max_request_bytes} bytes",
                    )
                    writer.write((json.dumps(refusal) + "\n").encode())
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self.respond_line(line.decode())
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()

    async def serve_tcp(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Listen (NDJSON) until a ``shutdown`` op or cancellation."""
        await self._serve_until_shutdown("ndjson", host, port)

    async def serve_stdio(
        self, stdin: TextIO | None = None, stdout: TextIO | None = None
    ) -> None:
        """The pipe transport: one request line in, one response line out."""
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        loop = asyncio.get_running_loop()
        while not self._shutdown.is_set():
            line = await loop.run_in_executor(None, stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            if len(line.encode()) > self.max_request_bytes:
                response = _error_doc(
                    "bad-request",
                    f"request line exceeds {self.max_request_bytes} bytes",
                )
            else:
                response = await self.respond_line(line)
            stdout.write(json.dumps(response) + "\n")
            stdout.flush()

    # ------------------------------------------------------------------
    # HTTP/1.1 front end.
    # ------------------------------------------------------------------

    async def handle_http_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One HTTP/1.1 client: keep-alive request/response loop."""
        self._conn_writers.add(writer)
        try:
            while not self._shutdown.is_set():
                keep_alive = await self._respond_http_once(reader, writer)
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            pass  # mid-request EOF / reset / oversized header line
        finally:
            self._conn_writers.discard(writer)
            writer.close()

    async def _respond_http_once(self, reader, writer) -> bool:
        request_line = await reader.readline()
        if not request_line or not request_line.strip():
            return False
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            await self._write_http(
                writer, 400, _error_doc("bad-request", "malformed request line")
            )
            return False
        method, target, _version = parts
        path = target.split("?", 1)[0]
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        close_requested = headers.get("connection", "").lower() == "close"
        if headers.get("transfer-encoding"):
            # Only Content-Length framing is spoken; accepting a chunked
            # body as empty would desynchronize the keep-alive stream.
            await self._write_http(
                writer,
                411,
                _error_doc(
                    "bad-request",
                    "Transfer-Encoding is not supported; send a "
                    "Content-Length body",
                ),
            )
            return False
        try:
            length = int(headers.get("content-length", "0") or "0")
            if length < 0:
                raise ValueError(length)
        except ValueError:
            await self._write_http(
                writer, 400, _error_doc("bad-request", "bad Content-Length")
            )
            return False
        if length > self.max_request_bytes:
            # Refuse without reading the body; framing is unrecoverable.
            await self._write_http(
                writer,
                413,
                _error_doc(
                    "bad-request",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_request_bytes}-byte limit",
                ),
            )
            return False
        body = await reader.readexactly(length) if length else b""

        op = _HTTP_ROUTES.get((method, path))
        if op is None:
            if path in _HTTP_PATHS:
                response, status = (
                    _error_doc(
                        "bad-request", f"method {method} not allowed for {path}"
                    ),
                    405,
                )
            else:
                response, status = (
                    _error_doc("not-found", f"no such route: {method} {path}"),
                    404,
                )
        else:
            doc: dict | None
            if body:
                try:
                    doc = json.loads(body)
                except json.JSONDecodeError as exc:
                    doc = None
                    response, status = (
                        _error_doc("bad-request", f"invalid JSON body: {exc}", op=op),
                        400,
                    )
                else:
                    if not isinstance(doc, dict):
                        doc = None
                        response, status = (
                            _error_doc(
                                "bad-request", "request body must be a JSON object",
                                op=op,
                            ),
                            400,
                        )
            else:
                doc = {}
            if doc is not None:
                doc["op"] = op  # the path is authoritative
                response = await self.handle_request(doc)
                if response.get("ok"):
                    status = 200
                else:
                    kind = response.get("error", {}).get("kind", "internal")
                    status = HTTP_STATUS.get(kind, 500)
        await self._write_http(writer, status, response, close=close_requested)
        return not close_requested and not self._shutdown.is_set()

    async def _write_http(
        self, writer, status: int, doc: dict, *, close: bool = False
    ) -> None:
        payload = json.dumps(doc).encode()
        head = (
            f"HTTP/1.1 {status} {_HTTP_REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"X-Repro-Protocol: {PROTOCOL_VERSION}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def serve_http(self, host: str = "127.0.0.1", port: int = 0) -> None:
        """Listen (HTTP/1.1 JSON) until a ``shutdown`` op or cancellation."""
        await self._serve_until_shutdown("http", host, port)

    # ------------------------------------------------------------------
    # Shared listener plumbing.
    # ------------------------------------------------------------------

    async def _serve_until_shutdown(
        self, transport: str, host: str, port: int, announce=None
    ) -> None:
        if transport == "http":
            handler = self.handle_http_connection
            # Bodies are bounded by the Content-Length check; the stream
            # limit only guards header lines, so keep it sane even when
            # max_request_bytes is tiny.
            limit = max(self.max_request_bytes, 64 * 1024)
        else:
            handler = self.handle_connection
            limit = self.max_request_bytes  # one NDJSON line = one request
        server = await asyncio.start_server(handler, host, port, limit=limit)
        bound = server.sockets[0].getsockname()
        if announce is not None:
            announce(bound)
        else:
            print(
                f"listening on {bound[0]}:{bound[1]}", file=sys.stderr, flush=True
            )
        async with server:
            await self._shutdown.wait()
        # The `async with` closed only the listener; sever established
        # connections too so blocked clients see EOF (-> a typed
        # `unavailable`) instead of hanging until their timeout.
        for writer in list(self._conn_writers):
            writer.close()


def serve_stdio(service: PropagationService, **server_options) -> None:
    """Run the stdio server to completion (the CLI's default transport)."""
    asyncio.run(PropagationServer(service, **server_options).serve_stdio())


def serve_tcp(
    service: PropagationService, host: str, port: int, **server_options
) -> None:
    """Run the NDJSON TCP server until shutdown (``repro serve --port``)."""
    asyncio.run(PropagationServer(service, **server_options).serve_tcp(host, port))


def serve_http(
    service: PropagationService, host: str, port: int, **server_options
) -> None:
    """Run the HTTP server until shutdown (``repro serve --transport http``)."""
    asyncio.run(PropagationServer(service, **server_options).serve_http(host, port))


@contextmanager
def background_server(
    service: PropagationService,
    transport: str = "tcp",
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    **server_options,
) -> Iterator[str]:
    """Run a TCP or HTTP endpoint on a daemon thread; yields its URL.

    The in-process fixture behind the endpoint tests, the orchestrator
    quickstart and embedded deployments: the caller keeps owning the
    service (and closes it); the context exit stops the listener.

        >>> from repro.api import PropagationService
        >>> from repro.api.server import background_server
        >>> with PropagationService() as service:
        ...     with background_server(service, "tcp") as url:
        ...         assert url.startswith("tcp://127.0.0.1:")
    """
    if transport not in ("tcp", "http"):
        raise ValueError(f"transport must be 'tcp' or 'http', got {transport!r}")
    server = PropagationServer(service, **server_options)
    ready: queue.Queue = queue.Queue()
    holder: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        holder["loop"] = loop
        try:
            loop.run_until_complete(
                server._serve_until_shutdown(
                    transport, host, port, announce=ready.put
                )
            )
        except Exception as exc:  # pragma: no cover - startup failure
            ready.put(exc)
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-endpoint", daemon=True)
    thread.start()
    bound = ready.get(timeout=30)
    if isinstance(bound, Exception):
        raise bound
    try:
        yield f"{transport}://{bound[0]}:{bound[1]}"
    finally:
        try:
            holder["loop"].call_soon_threadsafe(server._shutdown.set)
        except RuntimeError:
            pass  # already stopped by a shutdown op
        thread.join(timeout=30)
