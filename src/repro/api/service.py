"""The unified propagation service: one entry point for every query class.

:class:`PropagationService` is the layer the CLI, the server and library
callers all talk to.  It owns

- a :class:`~repro.api.Workspace` (named schemas / Sigmas / views,
  registered once),
- a pool of warm :class:`~repro.propagation.engine.PropagationEngine`
  instances, one per engine-settings combination (``use_cache``,
  ``max_instantiations``, ``assume_infinite``), all sharing the service's
  cache configuration (``cache_dir`` / ``cache_size`` / ``store_url`` /
  ``jobs`` / ``pool``), and
- *capability routing*: each request is classified by the shape of its
  inputs and dispatched to the procedure family that decides it.

Routing table (mirrored in ``docs/api.md``; the route label is returned
in every response)::

    check     assume_infinite              -> "ptime-chase"  (single-chase, incomplete)
              finite-domain attribute      -> "general"      (coNP enumeration)
              FD-only Sigma over a plain
              projection view              -> "closure"      (attribute_closure, no chase)
              union view, > 1 branch       -> "spcu"         (k^2 branch pairs)
              otherwise                    -> "spc"
    cover     union view, > 1 branch       -> "spcu"         (PropCFD_SPCU)
              otherwise                    -> "spc"          (PropCFD_SPC / RBR)
    empty     always                       -> "emptiness"    (per-branch chase)
    update-sigma                           -> "delta-sigma"  (diff + selective
                                                              invalidation)

The labels classify which family *answers a miss*; hits short-circuit in
the engine's memo tiers regardless of route, and the per-request
:class:`~repro.api.requests.RequestStats` delta records what actually
ran.  Emptiness verdicts are memoized service-side (they bypass the
engine), keyed structurally like the engine's own memo keys.

Errors are normalized at this boundary: anything a procedure raises
reaches the caller as an :class:`~repro.api.ApiError` from the stable
taxonomy in :mod:`repro.api.errors`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Iterable

from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.fd import FD
from ..kernel.config import KERNELS, resolve_kernel
from ..propagation.cache import LRUCache
from ..propagation.check import DependencyLike, ViewLike, _as_cfds, _branches
from ..propagation.emptiness import nonempty_witness
from ..propagation.engine import (
    EngineStats,
    PropagationEngine,
    _all_wildcard,
    _FastPathContext,
    _view_fingerprint,
    make_stale_predicate,
    scoped_sigma,
    touched_relations,
)
from ..store import validate_store_url
from .errors import ApiError, api_errors
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    Request,
    RequestStats,
    Response,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)
from .workspace import DEFAULT_NAME, Workspace

__all__ = ["PropagationService", "default_service"]


@dataclass(frozen=True)
class _Effective:
    """A request's engine settings after falling back to service defaults."""

    use_cache: bool
    max_instantiations: int | None
    assume_infinite: bool
    shards: int = 1
    shard_index: int | None = None
    kernel: str | None = None


def _snapshot(stats: EngineStats) -> tuple:
    return (
        stats.check_queries + stats.cover_queries,
        stats.chase_invocations,
        stats.verdict_hits + stats.cover_hits,
        stats.persistent_hits,
        stats.closure_fast_path,
        stats.parallel_tasks,
        stats.shard_tasks,
        stats.pair_chases,
        stats.cover_seed_hits,
        stats.cover_seed_misses,
    )


class PropagationService:
    """Routes typed propagation requests over warm, cached engines."""

    def __init__(
        self,
        workspace: Workspace | None = None,
        *,
        use_cache: bool = True,
        max_instantiations: int | None = None,
        assume_infinite: bool = False,
        cache_dir: str | None = None,
        cache_size: int | None = None,
        store_url: str | None = None,
        jobs: int = 1,
        pool: str = "thread",
        shards: int = 1,
        kernel: str | None = None,
    ) -> None:
        self.workspace = workspace if workspace is not None else Workspace()
        if store_url:
            # Fail fast at construction — a typo'd --store-url /
            # REPRO_STORE_URL scheme is a typed `format` error here, not
            # a traceback on the first cache miss.
            validate_store_url(store_url)
        if kernel is not None and kernel not in KERNELS:
            # Same fail-fast contract as the store URL: a typo'd kernel
            # name is a typed error at construction, not on first miss.
            raise ApiError(
                "bad-request",
                f"unknown kernel {kernel!r}; expected one of {', '.join(KERNELS)}",
            )
        self._defaults = _Effective(
            use_cache,
            max_instantiations,
            assume_infinite,
            shards,
            kernel=resolve_kernel(kernel),
        )
        self._engine_opts = dict(
            cache_dir=cache_dir,
            cache_size=cache_size,
            store_url=store_url or None,
            jobs=jobs,
            pool=pool,
        )
        self._engines: dict[tuple, PropagationEngine] = {}
        # Engine-pool creation guard: the server's per-pool locks allow
        # requests on *different* pool keys to run concurrently, so two
        # executor threads may reach `_engine` at once.
        self._pool_guard = threading.Lock()
        # Service-side memos, LRU-bounded by the same knob as the engine
        # tiers: emptiness verdicts (they bypass the engine) and the
        # route-classification capabilities per (Sigma, view).  Keys are
        # provenance-scoped like the engine's; `_touched` records each
        # view key's touched-relation set so the delta sweep can apply
        # the same staleness rule the engine does.
        self._empty_memo = LRUCache(capacity=cache_size)
        self._route_memo = LRUCache(capacity=cache_size)
        self._touched: dict[tuple, frozenset] = {}

    # ------------------------------------------------------------------
    # Engine pool.
    # ------------------------------------------------------------------

    def _effective(self, request) -> _Effective:
        d = self._defaults
        shards = d.shards if request.shards is None else request.shards
        # Validated here — not only in PropagationEngine.__init__ — so a
        # bad value is rejected identically whether the settings combo
        # resolves to a warm pooled engine or constructs a fresh one.
        if type(shards) is not int or shards < 1:
            raise ApiError(
                "bad-request", f"shards must be a positive integer, got {shards!r}"
            )
        shard_index = getattr(request, "shard_index", None)
        if shard_index is not None and (
            type(shard_index) is not int or not 0 <= shard_index < shards
        ):
            raise ApiError(
                "bad-request",
                f"shard_index must be an integer in [0, shards), got "
                f"{shard_index!r} with shards={shards}",
            )
        kernel = getattr(request, "kernel", None)
        if kernel is None:
            kernel = d.kernel
        elif kernel not in KERNELS:
            raise ApiError(
                "bad-request",
                f"unknown kernel {kernel!r}; expected one of {', '.join(KERNELS)}",
            )
        return _Effective(
            d.use_cache if request.use_cache is None else request.use_cache,
            d.max_instantiations
            if request.max_instantiations is None
            else request.max_instantiations,
            d.assume_infinite
            if request.assume_infinite is None
            else request.assume_infinite,
            shards,
            shard_index,
            kernel,
        )

    def _engine(self, settings: _Effective) -> PropagationEngine:
        # The pool is keyed on the *semantics-bearing* settings only:
        # `shards` changes how misses are evaluated, never the answer,
        # so requests with different shard plans must share one warm
        # engine (and its memo tiers) rather than split them.  It is
        # applied to the shared engine per dispatch instead — safe under
        # the server, whose per-pool lock serializes dispatch+evaluation
        # within one pool key; callers driving one service from multiple
        # threads may see a concurrent request's shard plan (verdicts
        # are shard-invariant, so only the evaluation strategy can
        # differ).  `shard_index` *is* part of the key: a shard-
        # restricted engine computes partial verdicts under shard-scoped
        # memo keys and never persists, so it must not share an engine
        # object with full requests.  `kernel` is part of the key too —
        # not because answers differ (they are byte-identical; it is
        # absent from every cache key), but because the engine object is
        # pinned to one implementation, and a request asking for the
        # baseline oracle must not silently get the packed kernel.
        key = (
            settings.use_cache,
            settings.max_instantiations,
            settings.assume_infinite,
            settings.shard_index,
            settings.kernel,
        )
        with self._pool_guard:
            engine = self._engines.get(key)
            if engine is None:
                engine = PropagationEngine(
                    use_cache=settings.use_cache,
                    max_instantiations=settings.max_instantiations,
                    assume_infinite=settings.assume_infinite,
                    shards=settings.shards,
                    shard_index=settings.shard_index,
                    kernel=settings.kernel,
                    **self._engine_opts,
                )
                self._engines[key] = engine
            elif engine.shards != settings.shards:
                engine.shards = settings.shards
        return engine

    def pool_key(self, doc) -> tuple:
        """The engine-pool key a wire document's settings resolve to.

        This is the lock granularity of the server's per-engine-pool
        locks (:class:`~repro.api.server.PropagationServer`): two
        documents with the same pool key dispatch to the same warm
        engine and must serialize; documents with different keys may run
        concurrently.  Unset fields fall back to the service defaults,
        so an explicit ``use_cache=true`` and an inherited default land
        on the same key.  Raises for unhashable garbage — callers treat
        that as "no lock needed" (the request will fail typed parsing
        anyway).
        """
        d = self._defaults
        get = doc.get if hasattr(doc, "get") else (lambda name: None)
        use_cache = get("use_cache")
        max_instantiations = get("max_instantiations")
        assume_infinite = get("assume_infinite")
        kernel = get("kernel")
        key = (
            d.use_cache if use_cache is None else use_cache,
            d.max_instantiations
            if max_instantiations is None
            else max_instantiations,
            d.assume_infinite if assume_infinite is None else assume_infinite,
            get("shard_index"),
            d.kernel if kernel is None else kernel,
        )
        hash(key)  # raises on unhashable garbage values
        return key

    @property
    def engine(self) -> PropagationEngine:
        """The default-settings engine (created on first use)."""
        return self._engine(self._defaults)

    @property
    def stats(self) -> EngineStats:
        """The default-settings engine's counters (the CLI's ``--stats``)."""
        return self.engine.stats

    def close(self) -> None:
        """Close every pooled engine (stores, worker pools); idempotent."""
        with self._pool_guard:
            engines, self._engines = list(self._engines.values()), {}
        for engine in engines:
            engine.close()

    def __enter__(self) -> "PropagationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Capability routing.
    # ------------------------------------------------------------------

    def _view_touched(self, view: ViewLike, view_key: tuple) -> frozenset:
        touched = self._touched.get(view_key)
        if touched is None:
            touched = touched_relations(view)
            self._touched[view_key] = touched
        return touched

    def route_check(
        self,
        sigma: Iterable[DependencyLike],
        view: ViewLike,
        targets: Iterable[DependencyLike],
        settings: _Effective,
    ) -> str:
        """Classify which procedure family decides this check request.

        The (Sigma, view) capabilities — finite domains present, closure
        fast path applicable — are memoized structurally, so a warm
        server classifies repeated requests without rebuilding the fast
        path context or rescanning Sigma.
        """
        branches = _branches(view)  # validates the view language
        if settings.assume_infinite:
            return "ptime-chase"
        # Provenance-scoped like the engine's own keys: Sigma enters the
        # memo restricted to the view's touched relations, so route
        # classifications survive delta_sigma edits on other relations.
        view_key = _view_fingerprint(view)
        scoped = scoped_sigma(_as_cfds(sigma), self._view_touched(view, view_key))
        memo_key = (frozenset(scoped), view_key)
        capabilities = self._route_memo.get(memo_key)
        if capabilities is None:
            capabilities = (
                any(b.has_finite_domain_attribute() for b in branches),
                _FastPathContext.of(view, scoped) is not None,
            )
            self._route_memo.put(memo_key, capabilities)
        has_finite_domain, fast_path_capable = capabilities
        if has_finite_domain:
            return "general"
        if settings.use_cache and fast_path_capable:
            targets = list(targets)
            if targets and all(
                isinstance(phi, FD)
                or (isinstance(phi, CFD) and not phi.is_equality and _all_wildcard(phi))
                for phi in targets
            ):
                return "closure"
        if isinstance(view, SPCUView) and len(view.branches) > 1:
            return "spcu"
        return "spc"

    @staticmethod
    def route_cover(view: ViewLike) -> str:
        _branches(view)
        if isinstance(view, SPCUView) and len(view.branches) > 1:
            return "spcu"
        return "spc"

    # ------------------------------------------------------------------
    # Request dispatch.
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        """Answer any request type (the single front door)."""
        if isinstance(request, CheckRequest):
            return self.check(request)
        if isinstance(request, CoverRequest):
            return self.cover(request)
        if isinstance(request, EmptinessRequest):
            return self.emptiness(request)
        if isinstance(request, UpdateSigmaRequest):
            return self.delta_sigma(request)
        if isinstance(request, BatchRequest):
            return self.batch(request)
        raise ApiError(
            "bad-request", f"unknown request type {type(request).__name__}"
        )

    def delta_sigma(self, request: UpdateSigmaRequest) -> SigmaUpdate:
        """Apply a Sigma diff and selectively invalidate warm state.

        The registered set named by ``request.name`` (``None`` = the
        ``"default"`` registration) is diffed in place: dependencies
        whose normalized CFDs are covered by ``remove`` drop out,
        ``add`` appends.  The *affected relations* are those mentioned
        by the diff; every pooled engine (and the service-side route and
        emptiness memos) drops only the lines whose provenance meets
        them.  Because all keys are provenance-scoped, the surviving
        lines are immediately reachable under the updated Sigma —
        queries on untouched relations keep answering with zero chases,
        from the memory tiers and the persistent store alike
        (``tests/test_incremental.py`` / ``benchmarks/bench_incremental.py``).
        """
        with api_errors():
            started = time.perf_counter()
            name = request.name if request.name is not None else DEFAULT_NAME
            current = list(self.workspace.sigma(name))
            remove_cfds = set(_as_cfds(request.remove))
            removed: list[DependencyLike] = []
            kept: list[DependencyLike] = []
            for dep in current:
                normalized = set(_as_cfds([dep]))
                if normalized and remove_cfds and normalized <= remove_cfds:
                    removed.append(dep)
                else:
                    kept.append(dep)
            # Dedupe adds against what survives, so re-applying the same
            # diff (a wire retry after a dropped response) is a no-op:
            # nothing grows, `affected` comes out empty, and no warm
            # line is needlessly re-invalidated.
            present = {frozenset(_as_cfds([dep])) for dep in kept}
            added: list[DependencyLike] = []
            for dep in request.add:
                normalized = frozenset(_as_cfds([dep]))
                if normalized in present:
                    continue
                present.add(normalized)
                added.append(dep)
            updated = kept + added
            affected = sorted(
                {phi.relation for phi in _as_cfds(added + removed)}
            )
            self.workspace.add_sigma(name, updated)
            invalidated = retained = 0
            with self._pool_guard:
                engines = list(self._engines.values())
            for engine in engines:
                # `current` (the pre-edit registration) makes the sweep
                # precise: lines warmed under other Sigmas that mention
                # the affected relations keep their (unchanged) keys.
                out = engine.invalidate_relations(affected, sigma=current)
                invalidated += out["invalidated"]
                retained += out["retained"]
            # Same staleness rule as the engine sweep (one shared
            # predicate — the two can never diverge): drop only lines
            # derived from the edited registration's old value.
            stale = make_stale_predicate(frozenset(affected), _as_cfds(current))
            for memo in (self._route_memo, self._empty_memo):
                for key in memo.keys():
                    if stale(key[0], self._touched.get(key[1])):
                        memo.discard(key)
            stats = RequestStats(
                elapsed_ms=(time.perf_counter() - started) * 1000.0
            )
            return SigmaUpdate(
                name=name,
                size=len(updated),
                affected_relations=affected,
                invalidated=invalidated,
                retained=retained,
                stats=stats,
            )

    def check(self, request: CheckRequest) -> Verdict:
        with api_errors():
            view = self.workspace.view(request.view)
            sigma = self.workspace.sigma(request.sigma)
            targets = list(request.targets)
            settings = self._effective(request)
            route = self.route_check(sigma, view, targets, settings)
            engine = self._engine(settings)
            before, started = _snapshot(engine.stats), time.perf_counter()
            verdicts = engine.check_many(sigma, view, targets)
            witnesses = None
            if request.witness:
                witnesses = [
                    None
                    if verdict
                    else engine.find_counterexample(sigma, view, phi).database
                    for phi, verdict in zip(targets, verdicts)
                ]
            stats = self._delta(engine, before, started)
            return Verdict(verdicts, route, stats, witnesses)

    def cover(self, request: CoverRequest) -> CoverResult:
        with api_errors():
            view = self.workspace.view(request.view)
            sigma = self.workspace.sigma(request.sigma)
            settings = self._effective(request)
            route = self.route_cover(view)
            engine = self._engine(settings)
            before, started = _snapshot(engine.stats), time.perf_counter()
            cover = engine.cover(sigma, view)
            return CoverResult(cover, route, self._delta(engine, before, started))

    def emptiness(self, request: EmptinessRequest) -> EmptinessResult:
        with api_errors():
            view = self.workspace.view(request.view)
            sigma = self.workspace.sigma(request.sigma)
            settings = self._effective(request)
            started = time.perf_counter()
            _branches(view)  # same validation as every other route
            memo_key = None
            line = None
            if settings.use_cache:
                # Scoped like every other key: emptiness is a function of
                # Sigma restricted to the view's relations, so warm lines
                # survive delta_sigma edits elsewhere.
                view_key = _view_fingerprint(view)
                scoped = scoped_sigma(
                    _as_cfds(sigma), self._view_touched(view, view_key)
                )
                memo_key = (
                    frozenset(scoped),
                    view_key,
                    settings.max_instantiations,
                )
                line = self._empty_memo.get(memo_key)
            if line is None:
                witness = nonempty_witness(
                    sigma, view, max_instantiations=settings.max_instantiations
                )
                line = (witness is None, witness)
                if memo_key is not None:
                    self._empty_memo.put(memo_key, line)
            empty, witness = line
            stats = RequestStats(
                elapsed_ms=(time.perf_counter() - started) * 1000.0, queries=1
            )
            return EmptinessResult(
                empty, "emptiness", stats, witness if request.witness else None
            )

    def batch(self, request: BatchRequest) -> BatchResult:
        started = time.perf_counter()
        results = [self.submit(sub) for sub in request.requests]
        stats = RequestStats.total(
            [r.stats for r in results],
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )
        return BatchResult(results, stats)

    @staticmethod
    def _delta(
        engine: PropagationEngine, before: tuple, started: float
    ) -> RequestStats:
        after = _snapshot(engine.stats)
        (
            queries,
            chases,
            memo,
            persistent,
            closure,
            tasks,
            shard_tasks,
            pair_chases,
            seed_hits,
            seed_misses,
        ) = (now - then for now, then in zip(after, before))
        return RequestStats(
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            queries=queries,
            chases=chases,
            memo_hits=memo,
            persistent_hits=persistent,
            closure_fast_path=closure,
            parallel_tasks=tasks,
            shard_tasks=shard_tasks,
            pair_chases=pair_chases,
            cover_seed_hits=seed_hits,
            cover_seed_misses=seed_misses,
        )


_DEFAULT_SERVICE: PropagationService | None = None


def default_service() -> PropagationService:
    """The process-wide service behind the deprecated free functions.

    Lazily created with default settings (in-memory caches only); the
    deprecation shims in :mod:`repro.propagation` send *uncached*
    requests through it, preserving the plain procedures' behavior
    exactly while funneling every entry point through one API.
    """
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = PropagationService()
    return _DEFAULT_SERVICE
