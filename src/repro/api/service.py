"""The unified propagation service: one entry point for every query class.

:class:`PropagationService` is the layer the CLI, the server and library
callers all talk to.  It owns

- a :class:`~repro.api.Workspace` (named schemas / Sigmas / views,
  registered once),
- a pool of warm :class:`~repro.propagation.engine.PropagationEngine`
  instances, one per engine-settings combination (``use_cache``,
  ``max_instantiations``, ``assume_infinite``), all sharing the service's
  cache configuration (``cache_dir`` / ``cache_size`` / ``jobs`` /
  ``pool``), and
- *capability routing*: each request is classified by the shape of its
  inputs and dispatched to the procedure family that decides it.

Routing table (mirrored in ``docs/api.md``; the route label is returned
in every response)::

    check     assume_infinite              -> "ptime-chase"  (single-chase, incomplete)
              finite-domain attribute      -> "general"      (coNP enumeration)
              FD-only Sigma over a plain
              projection view              -> "closure"      (attribute_closure, no chase)
              union view, > 1 branch       -> "spcu"         (k^2 branch pairs)
              otherwise                    -> "spc"
    cover     union view, > 1 branch       -> "spcu"         (PropCFD_SPCU)
              otherwise                    -> "spc"          (PropCFD_SPC / RBR)
    empty     always                       -> "emptiness"    (per-branch chase)

The labels classify which family *answers a miss*; hits short-circuit in
the engine's memo tiers regardless of route, and the per-request
:class:`~repro.api.requests.RequestStats` delta records what actually
ran.  Emptiness verdicts are memoized service-side (they bypass the
engine), keyed structurally like the engine's own memo keys.

Errors are normalized at this boundary: anything a procedure raises
reaches the caller as an :class:`~repro.api.ApiError` from the stable
taxonomy in :mod:`repro.api.errors`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.fd import FD
from ..propagation.cache import LRUCache
from ..propagation.check import DependencyLike, ViewLike, _as_cfds, _branches
from ..propagation.emptiness import nonempty_witness
from ..propagation.engine import (
    EngineStats,
    PropagationEngine,
    _all_wildcard,
    _FastPathContext,
    _view_fingerprint,
)
from .errors import ApiError, api_errors
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    Request,
    RequestStats,
    Response,
    Verdict,
)
from .workspace import Workspace

__all__ = ["PropagationService", "default_service"]


@dataclass(frozen=True)
class _Effective:
    """A request's engine settings after falling back to service defaults."""

    use_cache: bool
    max_instantiations: int | None
    assume_infinite: bool


def _snapshot(stats: EngineStats) -> tuple:
    return (
        stats.check_queries + stats.cover_queries,
        stats.chase_invocations,
        stats.verdict_hits + stats.cover_hits,
        stats.persistent_hits,
        stats.closure_fast_path,
        stats.parallel_tasks,
    )


class PropagationService:
    """Routes typed propagation requests over warm, cached engines."""

    def __init__(
        self,
        workspace: Workspace | None = None,
        *,
        use_cache: bool = True,
        max_instantiations: int | None = None,
        assume_infinite: bool = False,
        cache_dir: str | None = None,
        cache_size: int | None = None,
        jobs: int = 1,
        pool: str = "thread",
    ) -> None:
        self.workspace = workspace if workspace is not None else Workspace()
        self._defaults = _Effective(use_cache, max_instantiations, assume_infinite)
        self._engine_opts = dict(
            cache_dir=cache_dir, cache_size=cache_size, jobs=jobs, pool=pool
        )
        self._engines: dict[_Effective, PropagationEngine] = {}
        # Service-side memos, LRU-bounded by the same knob as the engine
        # tiers: emptiness verdicts (they bypass the engine) and the
        # route-classification capabilities per (Sigma, view).
        self._empty_memo = LRUCache(capacity=cache_size)
        self._route_memo = LRUCache(capacity=cache_size)

    # ------------------------------------------------------------------
    # Engine pool.
    # ------------------------------------------------------------------

    def _effective(self, request) -> _Effective:
        d = self._defaults
        return _Effective(
            d.use_cache if request.use_cache is None else request.use_cache,
            d.max_instantiations
            if request.max_instantiations is None
            else request.max_instantiations,
            d.assume_infinite
            if request.assume_infinite is None
            else request.assume_infinite,
        )

    def _engine(self, settings: _Effective) -> PropagationEngine:
        engine = self._engines.get(settings)
        if engine is None:
            engine = PropagationEngine(
                use_cache=settings.use_cache,
                max_instantiations=settings.max_instantiations,
                assume_infinite=settings.assume_infinite,
                **self._engine_opts,
            )
            self._engines[settings] = engine
        return engine

    @property
    def engine(self) -> PropagationEngine:
        """The default-settings engine (created on first use)."""
        return self._engine(self._defaults)

    @property
    def stats(self) -> EngineStats:
        """The default-settings engine's counters (the CLI's ``--stats``)."""
        return self.engine.stats

    def close(self) -> None:
        """Close every pooled engine (stores, worker pools); idempotent."""
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()

    def __enter__(self) -> "PropagationService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Capability routing.
    # ------------------------------------------------------------------

    def route_check(
        self,
        sigma: Iterable[DependencyLike],
        view: ViewLike,
        targets: Iterable[DependencyLike],
        settings: _Effective,
    ) -> str:
        """Classify which procedure family decides this check request.

        The (Sigma, view) capabilities — finite domains present, closure
        fast path applicable — are memoized structurally, so a warm
        server classifies repeated requests without rebuilding the fast
        path context or rescanning Sigma.
        """
        branches = _branches(view)  # validates the view language
        if settings.assume_infinite:
            return "ptime-chase"
        sigma_cfds = _as_cfds(sigma)
        memo_key = (frozenset(sigma_cfds), _view_fingerprint(view))
        capabilities = self._route_memo.get(memo_key)
        if capabilities is None:
            capabilities = (
                any(b.has_finite_domain_attribute() for b in branches),
                _FastPathContext.of(view, sigma_cfds) is not None,
            )
            self._route_memo.put(memo_key, capabilities)
        has_finite_domain, fast_path_capable = capabilities
        if has_finite_domain:
            return "general"
        if settings.use_cache and fast_path_capable:
            targets = list(targets)
            if targets and all(
                isinstance(phi, FD)
                or (isinstance(phi, CFD) and not phi.is_equality and _all_wildcard(phi))
                for phi in targets
            ):
                return "closure"
        if isinstance(view, SPCUView) and len(view.branches) > 1:
            return "spcu"
        return "spc"

    @staticmethod
    def route_cover(view: ViewLike) -> str:
        _branches(view)
        if isinstance(view, SPCUView) and len(view.branches) > 1:
            return "spcu"
        return "spc"

    # ------------------------------------------------------------------
    # Request dispatch.
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        """Answer any request type (the single front door)."""
        if isinstance(request, CheckRequest):
            return self.check(request)
        if isinstance(request, CoverRequest):
            return self.cover(request)
        if isinstance(request, EmptinessRequest):
            return self.emptiness(request)
        if isinstance(request, BatchRequest):
            return self.batch(request)
        raise ApiError(
            "bad-request", f"unknown request type {type(request).__name__}"
        )

    def check(self, request: CheckRequest) -> Verdict:
        with api_errors():
            view = self.workspace.view(request.view)
            sigma = self.workspace.sigma(request.sigma)
            targets = list(request.targets)
            settings = self._effective(request)
            route = self.route_check(sigma, view, targets, settings)
            engine = self._engine(settings)
            before, started = _snapshot(engine.stats), time.perf_counter()
            verdicts = engine.check_many(sigma, view, targets)
            witnesses = None
            if request.witness:
                witnesses = [
                    None
                    if verdict
                    else engine.find_counterexample(sigma, view, phi).database
                    for phi, verdict in zip(targets, verdicts)
                ]
            stats = self._delta(engine, before, started)
            return Verdict(verdicts, route, stats, witnesses)

    def cover(self, request: CoverRequest) -> CoverResult:
        with api_errors():
            view = self.workspace.view(request.view)
            sigma = self.workspace.sigma(request.sigma)
            settings = self._effective(request)
            route = self.route_cover(view)
            engine = self._engine(settings)
            before, started = _snapshot(engine.stats), time.perf_counter()
            cover = engine.cover(sigma, view)
            return CoverResult(cover, route, self._delta(engine, before, started))

    def emptiness(self, request: EmptinessRequest) -> EmptinessResult:
        with api_errors():
            view = self.workspace.view(request.view)
            sigma = self.workspace.sigma(request.sigma)
            settings = self._effective(request)
            started = time.perf_counter()
            _branches(view)  # same validation as every other route
            memo_key = None
            line = None
            if settings.use_cache:
                memo_key = (
                    frozenset(_as_cfds(sigma)),
                    _view_fingerprint(view),
                    settings.max_instantiations,
                )
                line = self._empty_memo.get(memo_key)
            if line is None:
                witness = nonempty_witness(
                    sigma, view, max_instantiations=settings.max_instantiations
                )
                line = (witness is None, witness)
                if memo_key is not None:
                    self._empty_memo.put(memo_key, line)
            empty, witness = line
            stats = RequestStats(
                elapsed_ms=(time.perf_counter() - started) * 1000.0, queries=1
            )
            return EmptinessResult(
                empty, "emptiness", stats, witness if request.witness else None
            )

    def batch(self, request: BatchRequest) -> BatchResult:
        started = time.perf_counter()
        results = [self.submit(sub) for sub in request.requests]
        stats = RequestStats(
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            queries=sum(r.stats.queries for r in results),
            chases=sum(r.stats.chases for r in results),
            memo_hits=sum(r.stats.memo_hits for r in results),
            persistent_hits=sum(r.stats.persistent_hits for r in results),
            closure_fast_path=sum(r.stats.closure_fast_path for r in results),
            parallel_tasks=sum(r.stats.parallel_tasks for r in results),
        )
        return BatchResult(results, stats)

    @staticmethod
    def _delta(
        engine: PropagationEngine, before: tuple, started: float
    ) -> RequestStats:
        after = _snapshot(engine.stats)
        queries, chases, memo, persistent, closure, tasks = (
            now - then for now, then in zip(after, before)
        )
        return RequestStats(
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            queries=queries,
            chases=chases,
            memo_hits=memo,
            persistent_hits=persistent,
            closure_fast_path=closure,
            parallel_tasks=tasks,
        )


_DEFAULT_SERVICE: PropagationService | None = None


def default_service() -> PropagationService:
    """The process-wide service behind the deprecated free functions.

    Lazily created with default settings (in-memory caches only); the
    deprecation shims in :mod:`repro.propagation` send *uncached*
    requests through it, preserving the plain procedures' behavior
    exactly while funneling every entry point through one API.
    """
    global _DEFAULT_SERVICE
    if _DEFAULT_SERVICE is None:
        _DEFAULT_SERVICE = PropagationService()
    return _DEFAULT_SERVICE
