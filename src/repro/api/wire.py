"""The NDJSON wire protocol: request/response documents <-> typed objects.

One request per line, one response per line, in order.  Requests are
objects with an ``op`` and an optional client-chosen ``id`` echoed back
verbatim::

    {"id": 1, "op": "register", "kind": "schema", "name": "s", "doc": {...}}
    {"id": 2, "op": "register", "kind": "sigma",  "name": "deps", "doc": [...]}
    {"id": 3, "op": "register", "kind": "view",   "name": "V", "doc": {...},
     "schema": "s"}
    {"id": 4, "op": "check", "view": "V", "sigma": "deps", "phis": [...],
     "witness": false}
    {"id": 5, "op": "cover", "view": "V", "sigma": "deps"}
    {"id": 6, "op": "empty", "view": "V", "sigma": "deps"}
    {"id": 7, "op": "batch", "requests": [{"op": "check", ...}, ...]}
    {"id": 8, "op": "update-sigma", "name": "deps", "add": [...],
     "remove": [...]}
    {"id": 9, "op": "stats"}
    {"id": 10, "op": "ping"}
    {"id": 11, "op": "shutdown"}

``view`` is a registered name or an inline view document (parsed against
``"schema"``, default ``"default"``); ``sigma`` is a registered name, an
inline dependency list, or absent for the ``"default"`` registration.
``phis`` entries are :mod:`repro.io` dependency documents.  The query ops
accept the per-request knobs ``use_cache`` / ``max_instantiations`` /
``assume_infinite`` / ``shards``.  ``update-sigma`` applies a diff to a
*registered* Sigma (``name`` absent = ``"default"``; ``add``/``remove``
are dependency-document lists) with selective, provenance-scoped
invalidation — warm lines for relations the diff does not mention
survive (``docs/incremental.md``).

Responses::

    {"id": 4, "ok": true,  "op": "check",
     "result": {"propagated": [...], "route": "spc", "stats": {...}}}
    {"id": 4, "ok": false, "op": "check",
     "error": {"kind": "format", "message": "..."}}

``stats`` in every query result is the per-request engine delta
(:class:`~repro.api.requests.RequestStats`); the error ``kind`` comes
from the stable taxonomy of :mod:`repro.api.errors`.
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Any, Mapping

from .. import io as repro_io
from .errors import ApiError, to_api_error
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    Request,
    Response,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)
from .service import PropagationService

__all__ = ["handle_request", "request_from_json", "response_to_json"]

_QUERY_OPS = {"check", "cover", "empty", "batch", "update-sigma"}
_SETTING_FIELDS = ("use_cache", "max_instantiations", "assume_infinite", "shards")


def _settings(doc: Mapping[str, Any]) -> dict:
    return {name: doc.get(name) for name in _SETTING_FIELDS}


def _view_ref(doc: Mapping[str, Any], service: PropagationService):
    ref = doc.get("view", "default")
    if isinstance(ref, Mapping):
        schema = service.workspace.schema(doc.get("schema", "default"))
        return repro_io.view_from_json(ref, schema)
    return ref


def _sigma_ref(doc: Mapping[str, Any]):
    ref = doc.get("sigma")
    if isinstance(ref, (list, tuple)):
        return repro_io.dependencies_from_json(ref)
    return ref


def request_from_json(
    doc: Mapping[str, Any], service: PropagationService
) -> Request:
    """Parse one query document into its typed request."""
    op = doc.get("op")
    if op == "check":
        return CheckRequest(
            view=_view_ref(doc, service),
            targets=repro_io.dependencies_from_json(doc.get("phis", [])),
            sigma=_sigma_ref(doc),
            witness=bool(doc.get("witness", False)),
            **_settings(doc),
        )
    if op == "cover":
        return CoverRequest(
            view=_view_ref(doc, service), sigma=_sigma_ref(doc), **_settings(doc)
        )
    if op == "empty":
        return EmptinessRequest(
            view=_view_ref(doc, service),
            sigma=_sigma_ref(doc),
            witness=bool(doc.get("witness", False)),
            **_settings(doc),
        )
    if op == "update-sigma":
        name = doc.get("name")
        if name is not None and not isinstance(name, str):
            raise ApiError("bad-request", "update-sigma 'name' must be a string")
        return UpdateSigmaRequest(
            name=name,
            add=repro_io.dependencies_from_json(doc.get("add", [])),
            remove=repro_io.dependencies_from_json(doc.get("remove", [])),
        )
    if op == "batch":
        return BatchRequest(
            [request_from_json(sub, service) for sub in doc.get("requests", [])]
        )
    raise ApiError("bad-request", f"unknown op {op!r}")


def response_to_json(response: Response) -> dict:
    """Serialize a typed response into its ``result`` document."""
    if isinstance(response, Verdict):
        out: dict[str, Any] = {
            "propagated": list(response.propagated),
            "all_propagated": response.all_propagated,
            "route": response.route,
            "stats": response.stats.to_json(),
        }
        if response.witnesses is not None:
            out["witnesses"] = [
                None if w is None else repro_io.instance_to_json(w)
                for w in response.witnesses
            ]
        return out
    if isinstance(response, CoverResult):
        return {
            "cover": repro_io.dependencies_to_json(response.cover),
            "route": response.route,
            "stats": response.stats.to_json(),
        }
    if isinstance(response, EmptinessResult):
        out = {
            "empty": response.empty,
            "route": response.route,
            "stats": response.stats.to_json(),
        }
        if response.witness is not None:
            out["witness"] = repro_io.instance_to_json(response.witness)
        return out
    if isinstance(response, SigmaUpdate):
        return {
            "sigma": response.name,
            "size": response.size,
            "affected_relations": list(response.affected_relations),
            "invalidated": response.invalidated,
            "retained": response.retained,
            "route": response.route,
            "stats": response.stats.to_json(),
        }
    if isinstance(response, BatchResult):
        return {
            "results": [response_to_json(sub) for sub in response.results],
            "stats": response.stats.to_json(),
        }
    raise ApiError("internal", f"unserializable response {type(response).__name__}")


def _handle_register(doc: Mapping[str, Any], service: PropagationService) -> dict:
    kind, name = doc.get("kind"), doc.get("name")
    if not isinstance(name, str) or not name:
        raise ApiError("bad-request", "register needs a non-empty string 'name'")
    if kind == "schema":
        service.workspace.add_schema(name, doc["doc"])
    elif kind == "sigma":
        service.workspace.add_sigma(name, doc["doc"])
    elif kind == "view":
        service.workspace.add_view(name, doc["doc"], doc.get("schema", "default"))
    else:
        raise ApiError(
            "bad-request",
            f"unknown register kind {kind!r}; kinds are schema, sigma, view",
        )
    return {"registered": {"kind": kind, "name": name}}


def handle_request(doc: Any, service: PropagationService) -> dict:
    """Answer one wire document; never raises (errors become documents)."""
    envelope: dict[str, Any] = {}
    if isinstance(doc, Mapping) and "id" in doc:
        envelope["id"] = doc["id"]
    try:
        if not isinstance(doc, Mapping):
            raise ApiError("bad-request", "request must be a JSON object")
        op = doc.get("op")
        envelope["op"] = op if isinstance(op, str) else None
        if op in _QUERY_OPS:
            result = response_to_json(service.submit(request_from_json(doc, service)))
        elif op == "register":
            result = _handle_register(doc, service)
        elif op == "stats":
            result = {
                "engine": repr(service.stats),
                "counters": {
                    name: value
                    for name, value in asdict(service.stats).items()
                    if not isinstance(value, dict)
                },
                "workspace": service.workspace.names(),
            }
        elif op == "ping":
            result = {"pong": True}
        elif op == "shutdown":
            result = {"stopping": True}
        else:
            raise ApiError("bad-request", f"unknown op {op!r}")
    except Exception as exc:  # noqa: BLE001 - the wire boundary
        error = to_api_error(exc)
        return {**envelope, "ok": False, "error": error.to_json()}
    return {**envelope, "ok": True, "result": result}
