"""The NDJSON wire protocol: request/response documents <-> typed objects.

One request per line, one response per line, in order.  Requests are
objects with an ``op`` and an optional client-chosen ``id`` echoed back
verbatim::

    {"id": 1, "op": "register", "kind": "schema", "name": "s", "doc": {...}}
    {"id": 2, "op": "register", "kind": "sigma",  "name": "deps", "doc": [...]}
    {"id": 3, "op": "register", "kind": "view",   "name": "V", "doc": {...},
     "schema": "s"}
    {"id": 4, "op": "check", "view": "V", "sigma": "deps", "phis": [...],
     "witness": false}
    {"id": 5, "op": "cover", "view": "V", "sigma": "deps"}
    {"id": 6, "op": "empty", "view": "V", "sigma": "deps"}
    {"id": 7, "op": "batch", "requests": [{"op": "check", ...}, ...]}
    {"id": 8, "op": "update-sigma", "name": "deps", "add": [...],
     "remove": [...]}
    {"id": 9, "op": "stats"}
    {"id": 10, "op": "ping"}
    {"id": 11, "op": "shutdown"}

``view`` is a registered name or an inline view document (parsed against
``"schema"``, default ``"default"``); ``sigma`` is a registered name, an
inline dependency list, or absent for the ``"default"`` registration.
``phis`` entries are :mod:`repro.io` dependency documents.  The query ops
accept the per-request knobs ``use_cache`` / ``max_instantiations`` /
``assume_infinite`` / ``shards`` / ``shard_index`` (the last one only on
endpoints serving as shard workers — see
:class:`~repro.api.server.PropagationServer`).  ``ping`` responses carry
the wire :data:`PROTOCOL_VERSION` so clients can detect drift.  ``update-sigma`` applies a diff to a
*registered* Sigma (``name`` absent = ``"default"``; ``add``/``remove``
are dependency-document lists) with selective, provenance-scoped
invalidation — warm lines for relations the diff does not mention
survive (``docs/incremental.md``).

Responses::

    {"id": 4, "ok": true,  "op": "check",
     "result": {"propagated": [...], "route": "spc", "stats": {...}}}
    {"id": 4, "ok": false, "op": "check",
     "error": {"kind": "format", "message": "..."}}

``stats`` in every query result is the per-request engine delta
(:class:`~repro.api.requests.RequestStats`); the error ``kind`` comes
from the stable taxonomy of :mod:`repro.api.errors`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import asdict
from typing import Any, Mapping

from .. import io as repro_io
from .errors import ApiError, to_api_error
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    Request,
    RequestStats,
    Response,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)
from .service import PropagationService

__all__ = [
    "HTTP_ROUTES",
    "PROTOCOL_VERSION",
    "handle_request",
    "request_from_json",
    "request_to_json",
    "response_from_json",
    "response_to_json",
]

#: The wire-protocol version, reported in every ``ping`` response.
#: Bump it on incompatible evolution of the request/response documents;
#: :func:`repro.api.client.connect` warns when an endpoint's version
#: differs from the client's, so drift stops being silent.
PROTOCOL_VERSION = 1

#: ``op -> (HTTP method, path)`` — the one route table both the HTTP
#: front end (:mod:`repro.api.server`, inverted) and the HTTP client
#: transport (:mod:`repro.api.transport`) derive from, so the two sides
#: cannot drift.  Documented in ``docs/api.md``.
HTTP_ROUTES = {
    "check": ("POST", "/v1/check"),
    "cover": ("POST", "/v1/cover"),
    "empty": ("POST", "/v1/empty"),
    "batch": ("POST", "/v1/batch"),
    "update-sigma": ("POST", "/v1/update-sigma"),
    "register": ("POST", "/v1/register"),
    "shutdown": ("POST", "/v1/shutdown"),
    "ping": ("GET", "/v1/ping"),
    "stats": ("GET", "/v1/stats"),
}

_QUERY_OPS = {"check", "cover", "empty", "batch", "update-sigma"}
_SETTING_FIELDS = (
    "use_cache",
    "max_instantiations",
    "assume_infinite",
    "shards",
    "shard_index",
    "kernel",
)


def _settings(doc: Mapping[str, Any]) -> dict:
    return {name: doc.get(name) for name in _SETTING_FIELDS}


def _view_ref(doc: Mapping[str, Any], service: PropagationService):
    ref = doc.get("view", "default")
    if isinstance(ref, Mapping):
        schema = service.workspace.schema(doc.get("schema", "default"))
        return repro_io.view_from_json(ref, schema)
    return ref


def _sigma_ref(doc: Mapping[str, Any]):
    ref = doc.get("sigma")
    if isinstance(ref, (list, tuple)):
        return repro_io.dependencies_from_json(ref)
    return ref


def request_from_json(
    doc: Mapping[str, Any], service: PropagationService
) -> Request:
    """Parse one query document into its typed request."""
    op = doc.get("op")
    if op == "check":
        return CheckRequest(
            view=_view_ref(doc, service),
            targets=repro_io.dependencies_from_json(doc.get("phis", [])),
            sigma=_sigma_ref(doc),
            witness=bool(doc.get("witness", False)),
            **_settings(doc),
        )
    if op == "cover":
        return CoverRequest(
            view=_view_ref(doc, service), sigma=_sigma_ref(doc), **_settings(doc)
        )
    if op == "empty":
        return EmptinessRequest(
            view=_view_ref(doc, service),
            sigma=_sigma_ref(doc),
            witness=bool(doc.get("witness", False)),
            **_settings(doc),
        )
    if op == "update-sigma":
        name = doc.get("name")
        if name is not None and not isinstance(name, str):
            raise ApiError("bad-request", "update-sigma 'name' must be a string")
        return UpdateSigmaRequest(
            name=name,
            add=repro_io.dependencies_from_json(doc.get("add", [])),
            remove=repro_io.dependencies_from_json(doc.get("remove", [])),
        )
    if op == "batch":
        return BatchRequest(
            [request_from_json(sub, service) for sub in doc.get("requests", [])]
        )
    raise ApiError("bad-request", f"unknown op {op!r}")


def _view_doc(ref):
    if isinstance(ref, str):
        return ref
    return repro_io.view_to_json(ref)


def _sigma_doc(ref):
    if ref is None or isinstance(ref, str):
        return ref
    return repro_io.dependencies_to_json(ref)


def _settings_doc(request) -> dict:
    return {
        name: value
        for name in _SETTING_FIELDS
        if (value := getattr(request, name, None)) is not None
    }


def request_to_json(request: Request) -> dict:
    """Serialize one typed request into its wire document (the client side).

    The inverse of :func:`request_from_json` up to reference form: view
    and Sigma objects become inline documents (inline views parse
    against the endpoint's ``"default"`` schema registration), names
    stay names, and unset per-request settings are omitted so the
    endpoint's own defaults apply.
    """
    if isinstance(request, CheckRequest):
        doc: dict[str, Any] = {
            "op": "check",
            "view": _view_doc(request.view),
            "phis": repro_io.dependencies_to_json(request.targets),
        }
        if request.sigma is not None:
            doc["sigma"] = _sigma_doc(request.sigma)
        if request.witness:
            doc["witness"] = True
        doc.update(_settings_doc(request))
        return doc
    if isinstance(request, CoverRequest):
        doc = {"op": "cover", "view": _view_doc(request.view)}
        if request.sigma is not None:
            doc["sigma"] = _sigma_doc(request.sigma)
        doc.update(_settings_doc(request))
        return doc
    if isinstance(request, EmptinessRequest):
        doc = {"op": "empty", "view": _view_doc(request.view)}
        if request.sigma is not None:
            doc["sigma"] = _sigma_doc(request.sigma)
        if request.witness:
            doc["witness"] = True
        doc.update(_settings_doc(request))
        return doc
    if isinstance(request, UpdateSigmaRequest):
        doc = {
            "op": "update-sigma",
            "add": repro_io.dependencies_to_json(request.add),
            "remove": repro_io.dependencies_to_json(request.remove),
        }
        if request.name is not None:
            doc["name"] = request.name
        return doc
    if isinstance(request, BatchRequest):
        return {
            "op": "batch",
            "requests": [request_to_json(sub) for sub in request.requests],
        }
    raise ApiError(
        "bad-request", f"unserializable request type {type(request).__name__}"
    )


def _stats_from_json(doc: Mapping[str, Any] | None) -> RequestStats:
    if not doc:
        return RequestStats()
    known = {field.name for field in dataclasses.fields(RequestStats)}
    return RequestStats(**{k: v for k, v in doc.items() if k in known})


def response_from_json(result: Mapping[str, Any]) -> Response:
    """Parse a ``result`` document back into its typed response.

    The client side of :func:`response_to_json`, keyed structurally on
    the document's fields.  Counterexample witnesses stay as raw
    :mod:`repro.io` instance documents (parsing them into
    :class:`~repro.algebra.instance.DatabaseInstance` objects needs the
    schema, which lives on the serving side — use
    :func:`repro.io.instance_from_json` against your copy).
    """
    stats = _stats_from_json(result.get("stats"))
    if "propagated" in result:
        return Verdict(
            list(result["propagated"]),
            result.get("route", ""),
            stats,
            result.get("witnesses"),
        )
    if "cover" in result:
        return CoverResult(
            repro_io.dependencies_from_json(result["cover"]),
            result.get("route", ""),
            stats,
        )
    if "empty" in result:
        return EmptinessResult(
            result["empty"], result.get("route", ""), stats, result.get("witness")
        )
    if "sigma" in result:
        return SigmaUpdate(
            name=result["sigma"],
            size=result["size"],
            affected_relations=list(result["affected_relations"]),
            invalidated=result["invalidated"],
            retained=result["retained"],
            route=result.get("route", "delta-sigma"),
            stats=stats,
        )
    if "results" in result:
        return BatchResult(
            [response_from_json(sub) for sub in result["results"]], stats
        )
    raise ApiError(
        "internal", f"unrecognized result document with fields {sorted(result)}"
    )


def response_to_json(response: Response) -> dict:
    """Serialize a typed response into its ``result`` document."""
    if isinstance(response, Verdict):
        out: dict[str, Any] = {
            "propagated": list(response.propagated),
            "all_propagated": response.all_propagated,
            "route": response.route,
            "stats": response.stats.to_json(),
        }
        if response.witnesses is not None:
            out["witnesses"] = [
                None if w is None else repro_io.instance_to_json(w)
                for w in response.witnesses
            ]
        return out
    if isinstance(response, CoverResult):
        return {
            "cover": repro_io.dependencies_to_json(response.cover),
            "route": response.route,
            "stats": response.stats.to_json(),
        }
    if isinstance(response, EmptinessResult):
        out = {
            "empty": response.empty,
            "route": response.route,
            "stats": response.stats.to_json(),
        }
        if response.witness is not None:
            out["witness"] = repro_io.instance_to_json(response.witness)
        return out
    if isinstance(response, SigmaUpdate):
        return {
            "sigma": response.name,
            "size": response.size,
            "affected_relations": list(response.affected_relations),
            "invalidated": response.invalidated,
            "retained": response.retained,
            "route": response.route,
            "stats": response.stats.to_json(),
        }
    if isinstance(response, BatchResult):
        return {
            "results": [response_to_json(sub) for sub in response.results],
            "stats": response.stats.to_json(),
        }
    raise ApiError("internal", f"unserializable response {type(response).__name__}")


def _handle_register(doc: Mapping[str, Any], service: PropagationService) -> dict:
    kind, name = doc.get("kind"), doc.get("name")
    if not isinstance(name, str) or not name:
        raise ApiError("bad-request", "register needs a non-empty string 'name'")
    if kind == "schema":
        service.workspace.add_schema(name, doc["doc"])
    elif kind == "sigma":
        service.workspace.add_sigma(name, doc["doc"])
    elif kind == "view":
        service.workspace.add_view(name, doc["doc"], doc.get("schema", "default"))
    else:
        raise ApiError(
            "bad-request",
            f"unknown register kind {kind!r}; kinds are schema, sigma, view",
        )
    return {"registered": {"kind": kind, "name": name}}


def handle_request(doc: Any, service: PropagationService) -> dict:
    """Answer one wire document; never raises (errors become documents)."""
    envelope: dict[str, Any] = {}
    if isinstance(doc, Mapping) and "id" in doc:
        envelope["id"] = doc["id"]
    try:
        if not isinstance(doc, Mapping):
            raise ApiError("bad-request", "request must be a JSON object")
        op = doc.get("op")
        envelope["op"] = op if isinstance(op, str) else None
        if op in _QUERY_OPS:
            result = response_to_json(service.submit(request_from_json(doc, service)))
        elif op == "register":
            result = _handle_register(doc, service)
        elif op == "stats":
            result = {
                "engine": repr(service.stats),
                "counters": {
                    name: value
                    for name, value in asdict(service.stats).items()
                    if not isinstance(value, dict)
                },
                "workspace": service.workspace.names(),
            }
        elif op == "ping":
            result = {"pong": True, "protocol": PROTOCOL_VERSION}
        elif op == "shutdown":
            result = {"stopping": True}
        else:
            raise ApiError("bad-request", f"unknown op {op!r}")
    except Exception as exc:  # noqa: BLE001 - the wire boundary
        error = to_api_error(exc)
        return {**envelope, "ok": False, "error": error.to_json()}
    return {**envelope, "ok": True, "result": result}
