"""URL-addressed endpoint transports: one request surface, many wires.

Every deployment shape of the propagation service is addressed by a URL
and spoken to through one interface — :class:`Transport`, a blocking
``request(doc) -> doc`` over the wire documents of
:mod:`repro.api.wire`:

==========================  ============================================
scheme                      transport
==========================  ============================================
``local://``                :class:`LocalTransport` — a fresh (or given)
                            in-process :class:`~repro.api.PropagationService`.
                            No sockets, no JSON text; requests go straight
                            through :func:`~repro.api.wire.handle_request`,
                            so the semantics (documents in, documents out,
                            errors as documents) are wire-equivalent.
``tcp://host:port``         :class:`TcpTransport` — line-delimited JSON
                            over one socket, against ``repro serve``'s
                            NDJSON front end.
``http://host:port``        :class:`HttpTransport` — the same documents
                            over HTTP/1.1 (``POST /v1/<op>``, ``GET`` for
                            ``ping``/``stats``) with a keep-alive
                            connection, against ``repro serve
                            --transport http``.
==========================  ============================================

:func:`open_url` resolves a URL through the scheme registry
(:func:`register_scheme` adds new schemes — a unix-socket or TLS
transport plugs in without touching callers).  Transport-level failures
— refused connections, connections dropped before a complete response —
surface as :class:`~repro.api.ApiError` with the ``unavailable`` kind,
never raw socket exceptions.

Resilience: every transport takes an optional :class:`RetryPolicy`.
With one set, ``unavailable`` failures of *idempotent* requests (see
:func:`is_idempotent`) are retried with bounded exponential backoff and
jitter; a broken remote connection is dropped and lazily re-opened, so
a retried (or later) request reaches the endpoint once it is back.
Non-idempotent ops (``shutdown``) and service-level errors are never
retried.

Callers normally do not touch transports directly:
:func:`repro.api.client.connect` wraps one in the typed SDK, and the
orchestrator fans one request across many of them.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping
from urllib.parse import urlsplit

from .errors import ApiError
from .service import PropagationService
from .wire import HTTP_ROUTES, handle_request

__all__ = [
    "HttpTransport",
    "IDEMPOTENT_OPS",
    "LocalTransport",
    "RetryPolicy",
    "TcpTransport",
    "Transport",
    "is_idempotent",
    "open_url",
    "register_scheme",
]

#: Default socket timeout for the remote transports (seconds): generous
#: enough for a cold exponential-family batch, finite so a hung endpoint
#: surfaces as ``unavailable`` instead of a silent stall.
DEFAULT_TIMEOUT = 600.0

#: Ops safe to resend when the transport cannot tell whether the lost
#: request was applied.  Queries and ``register`` overwrite-with-same;
#: ``update-sigma`` is diff-deduplicating by design (re-applying the
#: same diff is a no-op — see ``PropagationService.delta_sigma``), so a
#: wire retry after a dropped response cannot double-apply.  ``shutdown``
#: is deliberately absent.
IDEMPOTENT_OPS = frozenset(
    {"check", "cover", "empty", "ping", "stats", "register", "update-sigma"}
)


def is_idempotent(doc: Any) -> bool:
    """May *doc* be resent after a transport failure without side effects?

    A ``batch`` is idempotent iff every sub-request is; anything that is
    not a recognizable request document is conservatively not.
    """
    if not isinstance(doc, Mapping):
        return False
    op = doc.get("op")
    if op == "batch":
        requests = doc.get("requests")
        return isinstance(requests, list) and all(
            is_idempotent(sub) for sub in requests
        )
    return op in IDEMPOTENT_OPS


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff for ``unavailable`` transport failures.

    ``retries`` extra attempts follow the first; attempt ``k`` sleeps
    ``min(backoff * multiplier**k, max_backoff)`` seconds first, plus a
    uniform random jitter of up to ``jitter`` times that delay (so a
    worker fleet retrying the same dead endpoint does not thunder in
    lockstep).  Only requests classified by :func:`is_idempotent` are
    retried, and only on the ``unavailable`` error kind — service-level
    errors (``bad-request``, ``not-found``, ...) mean the endpoint
    answered and must not be resent.
    """

    retries: int = 2
    backoff: float = 0.05
    multiplier: float = 2.0
    max_backoff: float = 2.0
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.retries < 0 or self.backoff < 0 or self.jitter < 0:
            raise ApiError(
                "bad-request",
                "RetryPolicy needs retries/backoff/jitter >= 0, got "
                f"retries={self.retries}, backoff={self.backoff}, "
                f"jitter={self.jitter}",
            )
        if self.multiplier < 1.0:
            raise ApiError(
                "bad-request",
                f"RetryPolicy multiplier must be >= 1, got {self.multiplier}",
            )

    def delays(self) -> Iterator[float]:
        """Yield the sleep before each of the ``retries`` re-attempts."""
        delay = self.backoff
        for _ in range(self.retries):
            base = min(delay, self.max_backoff)
            yield base * (1.0 + random.random() * self.jitter)
            delay *= self.multiplier


class Transport(ABC):
    """A blocking document channel to one propagation endpoint."""

    #: The URL this transport was opened from (set by :func:`open_url`).
    url: str = ""
    #: Retry policy for ``unavailable`` failures of idempotent requests
    #: (``None`` = fail fast on the first transport error).
    retry: RetryPolicy | None = None

    def request(self, doc: Mapping[str, Any]) -> dict:
        """Send one wire document, return the response envelope.

        Errors *from the service* come back as ``{"ok": false, ...}``
        documents; errors *of the transport itself* raise
        :class:`~repro.api.ApiError` (kind ``unavailable`` for
        connectivity, ``internal`` for protocol garbage).  With a
        :class:`RetryPolicy` set, ``unavailable`` failures of idempotent
        requests are retried with backoff before surfacing.
        """
        policy = self.retry
        if policy is None or policy.retries < 1 or not is_idempotent(doc):
            return self._request_once(doc)
        delays = policy.delays()
        while True:
            try:
                return self._request_once(doc)
            except ApiError as exc:
                if exc.kind != "unavailable":
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)

    @abstractmethod
    def _request_once(self, doc: Mapping[str, Any]) -> dict:
        """One send/receive attempt (the retry loop drives this)."""

    def close(self) -> None:  # noqa: B027 - optional hook
        """Release the connection (idempotent; default no-op)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LocalTransport(Transport):
    """``local://`` — the in-process service behind the same documents.

    Owns a fresh :class:`~repro.api.PropagationService` built from the
    given service options (closed with the transport), or wraps a
    caller-provided ``service`` (left open — the caller owns it).
    """

    def __init__(
        self, service: PropagationService | None = None, **service_options
    ) -> None:
        if service is not None and service_options:
            raise ApiError(
                "bad-request",
                "pass either an existing service or service options, not both",
            )
        self._owned = service is None
        self.service = (
            PropagationService(**service_options) if service is None else service
        )

    def _request_once(self, doc: Mapping[str, Any]) -> dict:
        return handle_request(doc, self.service)

    def close(self) -> None:
        if self._owned:
            self.service.close()


class TcpTransport(Transport):
    """``tcp://host:port`` — the NDJSON client of ``repro serve``.

    The connection is opened lazily on the first request and re-opened
    after any failure: a broken socket is closed and dropped, never left
    in place to poison every subsequent request (the next attempt — a
    retry under the policy, or a later call — reconnects).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._endpoint = f"tcp://{host}:{port}"
        self._address = (host, port)
        self._timeout = timeout
        self.retry = retry
        self._sock: socket.socket | None = None
        self._file = None

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                self._address, timeout=self._timeout
            )
        except OSError as exc:
            self._sock = None
            raise ApiError(
                "unavailable", f"cannot connect to {self._endpoint}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    def _reset(self) -> None:
        """Drop a broken connection so the next request reconnects."""
        file, sock, self._file, self._sock = self._file, self._sock, None, None
        for closeable in (file, sock):
            if closeable is None:
                continue
            try:
                closeable.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _request_once(self, doc: Mapping[str, Any]) -> dict:
        if self._sock is None:
            self._connect()
        payload = (json.dumps(doc) + "\n").encode()
        try:
            self._file.write(payload)
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self._reset()
            raise ApiError(
                "unavailable", f"{self._endpoint} request failed: {exc}"
            ) from exc
        if not line.endswith(b"\n"):
            # EOF before the newline: an empty read is a clean close, a
            # partial one is a truncated NDJSON response — either way
            # the endpoint went away mid-request and the stream is dead.
            self._reset()
            detail = "connection closed" if not line else "truncated NDJSON response"
            raise ApiError(
                "unavailable",
                f"{self._endpoint}: {detail} before a complete response",
            )
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ApiError(
                "internal", f"{self._endpoint} sent a malformed response: {exc}"
            ) from exc

    def close(self) -> None:
        self._reset()


class HttpTransport(Transport):
    """``http://host:port`` — the HTTP/1.1 JSON client of ``repro serve``."""

    #: ``op -> (method, path)`` — the shared table of
    #: :data:`repro.api.wire.HTTP_ROUTES` (the server inverts the same
    #: one, so the two sides cannot drift); ops absent from it POST to
    #: ``/v1/<op>`` so unknown ops surface as the server's typed 404,
    #: not a client crash.
    ROUTES = HTTP_ROUTES

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._endpoint = f"http://{host}:{port}"
        self.retry = retry
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def _request_once(self, doc: Mapping[str, Any]) -> dict:
        op = doc.get("op")
        if not isinstance(op, str) or not op:
            raise ApiError("bad-request", "request document needs a string 'op'")
        method, path = self.ROUTES.get(op, ("POST", f"/v1/{op}"))
        body = None if method == "GET" else json.dumps(doc).encode()
        try:
            self._conn.request(
                method, path, body=body, headers={"Content-Type": "application/json"}
            )
            response = self._conn.getresponse()
            payload = response.read()
        except (http.client.HTTPException, OSError) as exc:
            self._conn.close()  # reset so the next request reconnects
            raise ApiError(
                "unavailable", f"{self._endpoint}{path} request failed: {exc}"
            ) from exc
        if response.will_close:
            self._conn.close()
        try:
            envelope = json.loads(payload)
        except json.JSONDecodeError as exc:
            if response.status >= 500:
                # A proxy / load balancer answered for a dead upstream
                # (502/503 HTML error pages): the endpoint is effectively
                # down, which is the retryable `unavailable` condition —
                # only a non-JSON body with a non-5xx status is protocol
                # garbage from the endpoint itself.
                self._conn.close()  # the gateway's stream state is suspect
                raise ApiError(
                    "unavailable",
                    f"{self._endpoint}{path} answered HTTP "
                    f"{response.status} with a non-JSON body (gateway "
                    f"error page?)",
                ) from exc
            raise ApiError(
                "internal",
                f"{self._endpoint}{path} sent a non-JSON response "
                f"(status {response.status}): {exc}",
            ) from exc
        if "id" in doc and "id" not in envelope:
            envelope["id"] = doc["id"]  # GET routes carry no body to echo
        return envelope

    def close(self) -> None:
        self._conn.close()


# ----------------------------------------------------------------------
# The scheme registry.
# ----------------------------------------------------------------------

_SCHEMES: dict[str, Callable[..., Transport]] = {}


def register_scheme(scheme: str, factory: Callable[..., Transport]) -> None:
    """Register ``factory(parts, **options) -> Transport`` for *scheme*.

    ``parts`` is the :func:`urllib.parse.urlsplit` of the endpoint URL.
    Registering an existing scheme replaces it (tests and downstream
    deployments can wrap the built-ins).
    """
    _SCHEMES[scheme] = factory


def _local_factory(parts, **options) -> Transport:
    if parts.netloc or parts.path.strip("/"):
        raise ApiError(
            "bad-request",
            f"local endpoints carry no address; use 'local://', got "
            f"{parts.geturl()!r}",
        )
    # An in-process service has no transport failures to retry, so a
    # retry policy is accepted and ignored — callers (the CLI, a
    # ReplicaSet over mixed schemes) can pass one URL-agnostically.
    options.pop("retry", None)
    return LocalTransport(**options)


def _host_port(parts, *, default_port: int | None = None) -> tuple[str, int]:
    try:
        port = parts.port
    except ValueError as exc:
        raise ApiError("bad-request", f"bad endpoint port: {exc}") from None
    if port is None:
        port = default_port
    if not parts.hostname or port is None:
        raise ApiError(
            "bad-request",
            f"endpoint {parts.geturl()!r} needs the host:port form",
        )
    return parts.hostname, port


def _tcp_factory(parts, **options) -> Transport:
    host, port = _host_port(parts)
    return TcpTransport(host, port, **options)


def _http_factory(parts, **options) -> Transport:
    host, port = _host_port(parts, default_port=80)
    return HttpTransport(host, port, **options)


register_scheme("local", _local_factory)
register_scheme("tcp", _tcp_factory)
register_scheme("http", _http_factory)


def open_url(url: str, **options) -> Transport:
    """Resolve an endpoint URL into a live transport.

    ``options`` are forwarded to the scheme factory: service options
    (``cache_dir``, ``jobs``, ...) for ``local://``; ``timeout`` and
    ``retry`` (a :class:`RetryPolicy`) for the remote schemes.  An
    unknown scheme is a typed ``bad-request`` — never a traceback —
    listing what is registered.
    """
    parts = urlsplit(url)
    factory = _SCHEMES.get(parts.scheme)
    if factory is None:
        known = ", ".join(sorted(_SCHEMES))
        raise ApiError(
            "bad-request",
            f"unknown endpoint scheme {parts.scheme!r} in {url!r}; "
            f"registered schemes: {known}",
        )
    try:
        transport = factory(parts, **options)
    except TypeError as exc:
        raise ApiError(
            "bad-request", f"bad options for {parts.scheme!r} endpoint: {exc}"
        ) from exc
    transport.url = url
    return transport
