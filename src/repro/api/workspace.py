"""Named schemas, dependency sets and views, registered once.

A :class:`Workspace` is the service's resolution context: callers (CLI,
server clients, tests) register each schema / Sigma / view under a name
once, and every subsequent request references it by name — no re-loading
or re-validation per query, which is the point of a warm service.

Registration accepts either parsed objects or the JSON documents of the
:mod:`repro.io` wire format (views need a schema to parse against, named
or given directly).  ``"default"`` is the conventional name the CLI's
``--schema/--sigma/--view`` files land under; requests with
``sigma=None`` resolve to it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Mapping, Sequence, Union

from .. import io as repro_io
from ..algebra.spc import SPCView
from ..algebra.spcu import SPCUView
from ..core.cfd import CFD
from ..core.fd import FD
from ..core.schema import DatabaseSchema
from ..propagation.check import DependencyLike, ViewLike
from .errors import ApiError, api_errors

__all__ = ["DEFAULT_NAME", "Workspace"]

DEFAULT_NAME = "default"


class Workspace:
    """A registry of named schemas, Sigmas and views."""

    def __init__(self) -> None:
        self._schemas: dict[str, DatabaseSchema] = {}
        self._sigmas: dict[str, list[DependencyLike]] = {}
        self._views: dict[str, ViewLike] = {}

    # ------------------------------------------------------------------
    # Registration.
    # ------------------------------------------------------------------

    def add_schema(
        self, name: str, schema: Union[DatabaseSchema, Mapping[str, Any]]
    ) -> DatabaseSchema:
        """Register a schema object or its JSON document under *name*."""
        with api_errors():
            if not isinstance(schema, DatabaseSchema):
                schema = repro_io.schema_from_json(schema)
        self._schemas[name] = schema
        return schema

    def add_sigma(
        self, name: str, sigma: Sequence[Union[DependencyLike, Mapping[str, Any]]]
    ) -> list[DependencyLike]:
        """Register a dependency list (objects or JSON documents)."""
        with api_errors():
            deps = [
                dep
                if isinstance(dep, (CFD, FD))
                else repro_io.dependency_from_json(dep)
                for dep in sigma
            ]
        self._sigmas[name] = deps
        return deps

    def add_view(
        self,
        name: str,
        view: Union[ViewLike, Mapping[str, Any]],
        schema: Union[str, DatabaseSchema] = DEFAULT_NAME,
    ) -> ViewLike:
        """Register a view object or its JSON document under *name*.

        A document parses against *schema* — a registered schema name or
        a schema object.
        """
        with api_errors():
            if not isinstance(view, (SPCView, SPCUView)):
                if isinstance(schema, str):
                    schema = self.schema(schema)
                view = repro_io.view_from_json(view, schema)
        self._views[name] = view
        return view

    # ------------------------------------------------------------------
    # Resolution.
    # ------------------------------------------------------------------

    def schema(self, name: str) -> DatabaseSchema:
        try:
            return self._schemas[name]
        except KeyError:
            raise ApiError(
                "not-found", f"no schema registered under {name!r}"
            ) from None

    def sigma(self, ref: Union[str, Sequence[DependencyLike], None]) -> list[DependencyLike]:
        """Resolve a Sigma reference (``None`` = the default registration)."""
        if ref is None:
            ref = DEFAULT_NAME
        if isinstance(ref, str):
            try:
                return self._sigmas[ref]
            except KeyError:
                raise ApiError(
                    "not-found", f"no dependency set registered under {ref!r}"
                ) from None
        return list(ref)

    def view(self, ref: Union[str, ViewLike]) -> ViewLike:
        """Resolve a view reference (a registered name or the object)."""
        if isinstance(ref, str):
            try:
                return self._views[ref]
            except KeyError:
                raise ApiError(
                    "not-found", f"no view registered under {ref!r}"
                ) from None
        return ref

    def names(self) -> dict[str, list[str]]:
        """The registered names, for the server's ``stats`` op."""
        return {
            "schemas": sorted(self._schemas),
            "sigmas": sorted(self._sigmas),
            "views": sorted(self._views),
        }

    # ------------------------------------------------------------------
    # Loading.
    # ------------------------------------------------------------------

    @classmethod
    def from_files(
        cls,
        schema: str | Path | None = None,
        sigma: str | Path | None = None,
        view: str | Path | None = None,
    ) -> "Workspace":
        """The CLI's workspace: each given file registered as ``"default"``.

        The view is additionally registered under its own name, so server
        clients can address it either way.
        """
        workspace = cls()
        with api_errors():
            if schema is not None:
                workspace.add_schema(DEFAULT_NAME, repro_io.load_json(schema))
            if sigma is not None:
                workspace.add_sigma(DEFAULT_NAME, repro_io.load_json(sigma))
            if view is not None:
                parsed = workspace.add_view(DEFAULT_NAME, repro_io.load_json(view))
                workspace._views.setdefault(parsed.name, parsed)
        return workspace
