"""The service API: typed requests, URL-addressed endpoints, server mode.

This package is the single entry point for every propagation query
class.  Register inputs once in a :class:`Workspace`, hand requests to a
:class:`PropagationService`, and get typed responses with per-request
stats back.  The same documents travel every wire: ``repro serve``
(:mod:`repro.api.server`) exposes a warm service over NDJSON (stdio /
TCP) or HTTP, :func:`connect` opens a typed :class:`Client` on any
endpoint URL (``local://``, ``tcp://host:port``, ``http://host:port`` —
:mod:`repro.api.transport`), and a :class:`ShardOrchestrator` fans one
check across a ``shard_index`` worker fleet and ANDs the partial
verdicts (:mod:`repro.api.orchestrator`).

The fleet surface is fault-tolerant: a :class:`RetryPolicy` makes any
remote transport absorb transient ``unavailable`` failures of idempotent
requests with bounded exponential backoff (``connect(url, retry=...)``),
the orchestrator health-checks its workers and **fails a dead worker's
shards over** to survivors mid-check, and a :class:`ReplicaSet`
load-balances unsharded requests across identical workers with the same
mark-dead/mark-alive health model.

    >>> from repro.api import CheckRequest, connect
    >>> client = connect("local://")  # or tcp://host:port, http://host:port
    >>> # client.register_schema / register_sigma / register_view, then:
    >>> # verdict = client.check(CheckRequest(view="V", targets=[phi]))
    >>> client.close()

See ``docs/api.md`` for the endpoint-URL table, the request/response
schema, the routing table and the error taxonomy.
"""

from .client import Client, ProtocolMismatchWarning, connect
from .errors import (
    ApiError,
    EXIT_CODES,
    EXIT_NEGATIVE,
    EXIT_OK,
    HTTP_STATUS,
    KINDS,
    to_api_error,
)
from .orchestrator import ReplicaSet, ShardOrchestrator
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    RequestStats,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)
from .server import (
    PropagationServer,
    background_server,
    serve_http,
    serve_stdio,
    serve_tcp,
)
from .service import PropagationService, default_service
from .transport import (
    HttpTransport,
    IDEMPOTENT_OPS,
    LocalTransport,
    RetryPolicy,
    TcpTransport,
    Transport,
    is_idempotent,
    open_url,
    register_scheme,
)
from .wire import (
    PROTOCOL_VERSION,
    handle_request,
    request_from_json,
    request_to_json,
    response_from_json,
    response_to_json,
)
from .workspace import DEFAULT_NAME, Workspace

__all__ = [
    "ApiError",
    "BatchRequest",
    "BatchResult",
    "CheckRequest",
    "Client",
    "CoverRequest",
    "CoverResult",
    "DEFAULT_NAME",
    "EXIT_CODES",
    "EXIT_NEGATIVE",
    "EXIT_OK",
    "EmptinessRequest",
    "EmptinessResult",
    "HTTP_STATUS",
    "HttpTransport",
    "IDEMPOTENT_OPS",
    "KINDS",
    "LocalTransport",
    "PROTOCOL_VERSION",
    "PropagationServer",
    "PropagationService",
    "ProtocolMismatchWarning",
    "ReplicaSet",
    "RequestStats",
    "RetryPolicy",
    "ShardOrchestrator",
    "SigmaUpdate",
    "TcpTransport",
    "Transport",
    "UpdateSigmaRequest",
    "Verdict",
    "Workspace",
    "background_server",
    "connect",
    "default_service",
    "handle_request",
    "is_idempotent",
    "open_url",
    "register_scheme",
    "request_from_json",
    "request_to_json",
    "response_from_json",
    "response_to_json",
    "serve_http",
    "serve_stdio",
    "serve_tcp",
    "to_api_error",
]
