"""The service API: typed requests, capability routing, server mode.

This package is the single entry point for every propagation query
class.  Register inputs once in a :class:`Workspace`, hand requests to a
:class:`PropagationService`, and get typed responses with per-request
stats back; ``repro serve`` (:mod:`repro.api.server`) exposes the same
service over NDJSON for long-lived warm-cache deployments.

    >>> from repro.api import CheckRequest, PropagationService
    >>> service = PropagationService()
    >>> # service.workspace.add_schema / add_sigma / add_view, then:
    >>> # verdict = service.submit(CheckRequest(view="V", targets=[phi]))

See ``docs/api.md`` for the request/response schema, the routing table
and the error taxonomy.
"""

from .errors import (
    ApiError,
    EXIT_CODES,
    EXIT_NEGATIVE,
    EXIT_OK,
    KINDS,
    to_api_error,
)
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    CoverResult,
    EmptinessRequest,
    EmptinessResult,
    RequestStats,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)
from .server import PropagationServer, serve_stdio, serve_tcp
from .service import PropagationService, default_service
from .wire import handle_request, request_from_json, response_to_json
from .workspace import DEFAULT_NAME, Workspace

__all__ = [
    "ApiError",
    "BatchRequest",
    "BatchResult",
    "CheckRequest",
    "CoverRequest",
    "CoverResult",
    "DEFAULT_NAME",
    "EXIT_CODES",
    "EXIT_NEGATIVE",
    "EXIT_OK",
    "EmptinessRequest",
    "EmptinessResult",
    "KINDS",
    "PropagationServer",
    "PropagationService",
    "RequestStats",
    "SigmaUpdate",
    "UpdateSigmaRequest",
    "Verdict",
    "Workspace",
    "default_service",
    "handle_request",
    "request_from_json",
    "response_to_json",
    "serve_stdio",
    "serve_tcp",
    "to_api_error",
]
