"""The typed client SDK: ``connect(url)`` and talk dataclasses.

:func:`connect` resolves an endpoint URL through the transport registry
(:mod:`repro.api.transport`) and wraps it in a :class:`Client` that
speaks the typed requests and responses of :mod:`repro.api.requests`
over any wire — the same code drives an in-process service
(``local://``), a long-lived NDJSON server (``tcp://host:port``) and the
HTTP front end (``http://host:port``) interchangeably:

    >>> from repro.api import CheckRequest
    >>> from repro.api.client import connect
    >>> with connect("local://") as client:
    ...     client.register_schema(
    ...         "default",
    ...         {"relations": [{"name": "R", "attributes": ["A", "B"]}]},
    ...     )
    ...     client.register_sigma(
    ...         "default",
    ...         [{"kind": "fd", "relation": "R", "lhs": ["A"], "rhs": ["B"]}],
    ...     )
    ...     client.register_view(
    ...         "V", {"name": "V", "atoms": [{"source": "R", "prefix": ""}]}
    ...     )
    ...     verdict = client.check(CheckRequest(view="V", targets=[]))

The query methods mirror :class:`~repro.api.PropagationService`
(``check`` / ``cover`` / ``emptiness`` / ``delta_sigma`` / ``batch`` /
``submit``), so a ``Client`` is a drop-in for a service in analysis
code; error envelopes re-raise as the same typed
:class:`~repro.api.ApiError` the in-process service would have raised.
One asymmetry is inherent to crossing a wire: counterexample witnesses
come back as raw :mod:`repro.io` instance documents, because parsing
them needs the schema registered on the serving side.

On connect, the client performs a ``ping`` handshake and records the
endpoint's wire :data:`~repro.api.wire.PROTOCOL_VERSION`; a mismatch
with this client's version emits a :class:`ProtocolMismatchWarning`
(wire evolution must never be silent).  ``handshake=False`` skips the
round trip for fire-and-forget scripts.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping

from .. import io as repro_io
from ..core.schema import DatabaseSchema
from .errors import ApiError
from .requests import (
    BatchRequest,
    BatchResult,
    CheckRequest,
    CoverRequest,
    EmptinessRequest,
    Request,
    Response,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)
from .transport import Transport, open_url
from .wire import PROTOCOL_VERSION, request_to_json, response_from_json

__all__ = ["Client", "ProtocolMismatchWarning", "connect"]


class ProtocolMismatchWarning(UserWarning):
    """The endpoint speaks a different wire-protocol version."""


def connect(url: str, *, handshake: bool = True, **options) -> "Client":
    """Open a typed client on an endpoint URL (any registered scheme).

    ``options`` go to the transport factory: service options such as
    ``cache_dir`` / ``cache_size`` / ``jobs`` / ``pool`` / ``shards``
    (or an existing ``service=``) for ``local://``; ``timeout`` and
    ``retry`` for ``tcp://`` and ``http://``.  A
    ``retry=RetryPolicy(...)`` makes the transport absorb transient
    ``unavailable`` failures of idempotent requests with bounded
    exponential backoff (see :class:`~repro.api.transport.RetryPolicy`);
    the default is fail-fast.  ``local://`` accepts and ignores
    ``retry``, so one fleet config can mix schemes.  With
    ``handshake=True`` (default) the endpoint is pinged immediately:
    connectivity problems surface here as ``unavailable`` errors (after
    any retries), and a wire-protocol version mismatch warns with
    :class:`ProtocolMismatchWarning`.
    """
    client = Client(open_url(url, **options))
    if handshake:
        try:
            client.handshake()
        except BaseException:
            client.close()
            raise
    return client


class Client:
    """Typed requests over one :class:`~repro.api.transport.Transport`."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        #: The endpoint's wire-protocol version, known after a handshake.
        self.protocol: int | None = None
        #: Whether the endpoint serves partial shard verdicts
        #: (``repro serve --shard-worker``); ``None`` before a handshake
        #: or when the endpoint predates the capability flag.
        self.shard_worker: bool | None = None
        #: The full capability document of the last handshake ping —
        #: server endpoints advertise ``uptime_s`` and
        #: ``requests_served`` here, which fleet health probes record.
        self.capabilities: dict = {}

    @property
    def url(self) -> str:
        return self.transport.url

    # ------------------------------------------------------------------
    # Raw document surface (the escape hatch).
    # ------------------------------------------------------------------

    def call(self, doc: Mapping[str, Any]) -> dict:
        """Send one raw wire document; returns the response envelope.

        Service failures stay documents (``{"ok": false, ...}``) — only
        transport failures raise.  The typed methods below are built on
        :meth:`result`, which re-raises error envelopes as ApiError.
        """
        return self.transport.request(doc)

    def result(self, doc: Mapping[str, Any]) -> dict:
        """Send one raw document; unwrap ``result`` or raise the error."""
        envelope = self.call(doc)
        if envelope.get("ok"):
            return envelope.get("result", {})
        error = envelope.get("error", {})
        raise ApiError(
            error.get("kind", "internal"),
            error.get("message", f"malformed error envelope: {envelope}"),
        )

    # ------------------------------------------------------------------
    # Typed requests (mirrors PropagationService).
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        """Answer any typed request over the wire (the single front door)."""
        return response_from_json(self.result(request_to_json(request)))

    def check(self, request: CheckRequest) -> Verdict:
        return self.submit(request)

    def cover(self, request: CoverRequest):
        return self.submit(request)

    def emptiness(self, request: EmptinessRequest):
        return self.submit(request)

    def delta_sigma(self, request: UpdateSigmaRequest) -> SigmaUpdate:
        return self.submit(request)

    def batch(self, request: BatchRequest) -> BatchResult:
        return self.submit(request)

    # ------------------------------------------------------------------
    # Workspace registration.
    # ------------------------------------------------------------------

    def register_schema(self, name: str, schema) -> dict:
        """Register a schema (object or JSON document) under *name*."""
        if isinstance(schema, DatabaseSchema):
            schema = repro_io.schema_to_json(schema)
        return self.result(
            {"op": "register", "kind": "schema", "name": name, "doc": schema}
        )

    def register_sigma(self, name: str, sigma) -> dict:
        """Register a dependency list (objects or JSON documents)."""
        docs = [
            dep if isinstance(dep, Mapping) else repro_io.dependency_to_json(dep)
            for dep in sigma
        ]
        return self.result(
            {"op": "register", "kind": "sigma", "name": name, "doc": docs}
        )

    def register_view(self, name: str, view, schema: str = "default") -> dict:
        """Register a view (object or document, parsed against *schema*)."""
        if not isinstance(view, Mapping):
            view = repro_io.view_to_json(view)
        return self.result(
            {
                "op": "register",
                "kind": "view",
                "name": name,
                "doc": view,
                "schema": schema,
            }
        )

    # ------------------------------------------------------------------
    # Service ops.
    # ------------------------------------------------------------------

    def ping(self) -> dict:
        return self.result({"op": "ping"})

    def stats(self) -> dict:
        return self.result({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the endpoint to stop (no-op semantics on ``local://``)."""
        return self.result({"op": "shutdown"})

    def handshake(self) -> dict:
        """Ping the endpoint; record protocol + capabilities, warn on drift."""
        result = self.ping()
        self.capabilities = dict(result)
        self.protocol = result.get("protocol")
        self.shard_worker = result.get("shard_worker")
        if self.protocol != PROTOCOL_VERSION:
            spoken = (
                f"protocol {self.protocol}"
                if self.protocol is not None
                else "an unversioned protocol (pre-versioning server)"
            )
            warnings.warn(
                f"endpoint {self.url or '<endpoint>'} speaks {spoken}; this "
                f"client speaks protocol {PROTOCOL_VERSION} — responses may "
                f"be missing fields or shaped differently",
                ProtocolMismatchWarning,
                stacklevel=3,
            )
        return result

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
