"""The distributed shard orchestrator: N endpoints, one verdict.

The scheduler layer (:mod:`repro.propagation.engine.scheduler`) deals
the ``k²`` branch-pair chase of a union view into deterministic shards;
the ``shard_index`` knob restricts one engine to a single shard, whose
verdict means only "no violation inside my shard".  The contract pinned
by ``tests/test_incremental.py`` is that the **AND** of all ``shards``
partial verdicts equals the single-engine answer.  This module is the
first component that actually *runs* that contract across endpoints:

    >>> from repro.api import CheckRequest
    >>> from repro.api.orchestrator import ShardOrchestrator
    >>> # two workers; any mix of local://, tcp://..., http://... URLs
    >>> orch = ShardOrchestrator(["local://", "local://"])
    >>> orch.close()

Given N endpoint URLs (``local://`` services, ``repro serve --port``
NDJSON workers, ``repro serve --transport http`` fleets — mixed freely),
the orchestrator

1. registers the workspace on every worker (:meth:`register` /
   :meth:`register_schema` / :meth:`register_sigma` /
   :meth:`register_view` fan out),
2. dispatches every check with ``shards=N, shard_index=i`` to worker
   ``i`` — concurrently, one thread per worker, and
3. ANDs the partial verdicts into the full :class:`~repro.api.Verdict`,
   summing the per-worker stats deltas (a warm fleet answers with
   ``stats.chases == 0``: each worker memoizes its shard under
   shard-scoped keys).

Covers are **not** shard-combinable (a partial engine refuses them), so
:meth:`cover` raises a typed error instead of returning a silently
partial cover; Sigma diffs (:meth:`delta_sigma`) fan out to every
worker so the fleet's registrations stay consistent.

Remote workers must run with ``--shard-worker`` — a normal endpoint
refuses ``shard_index`` requests so partial verdicts can never leak to
ordinary clients.
"""

from __future__ import annotations

import concurrent.futures
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Sequence, Union

from .client import Client, connect
from .errors import ApiError
from .requests import (
    CheckRequest,
    RequestStats,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)

__all__ = ["ShardOrchestrator"]

Endpoint = Union[str, Client]


def _sum_stats(parts: Sequence[RequestStats], elapsed_ms: float) -> RequestStats:
    return RequestStats(
        elapsed_ms=elapsed_ms,
        queries=sum(p.queries for p in parts),
        chases=sum(p.chases for p in parts),
        memo_hits=sum(p.memo_hits for p in parts),
        persistent_hits=sum(p.persistent_hits for p in parts),
        closure_fast_path=sum(p.closure_fast_path for p in parts),
        parallel_tasks=sum(p.parallel_tasks for p in parts),
        shard_tasks=sum(p.shard_tasks for p in parts),
    )


class ShardOrchestrator:
    """Fans one check across N ``shard_index`` workers, ANDs the verdicts.

    ``endpoints`` are URLs (connected here, closed by :meth:`close`) or
    live :class:`~repro.api.client.Client` objects (left open — the
    caller owns them).  The worker count *is* the shard count.
    """

    def __init__(self, endpoints: Sequence[Endpoint], **connect_options) -> None:
        if not endpoints:
            raise ApiError("bad-request", "an orchestrator needs >= 1 endpoint")
        self._owned: list[Client] = []
        self.workers: list[Client] = []
        try:
            for endpoint in endpoints:
                if isinstance(endpoint, Client):
                    self.workers.append(endpoint)
                else:
                    client = connect(endpoint, **connect_options)
                    self.workers.append(client)
                    self._owned.append(client)
        except BaseException:
            for client in self._owned:
                client.close()
            raise
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.workers), thread_name_prefix="repro-shard"
        )

    @property
    def shards(self) -> int:
        return len(self.workers)

    def _fan_out(self, call) -> list:
        """Run ``call(worker, index)`` on every worker concurrently.

        Transports are not thread-safe, but each worker is driven by
        exactly one task per fan-out, and fan-outs never overlap (this
        class is itself single-caller, like the transports).
        """
        futures = [
            self._pool.submit(call, worker, index)
            for index, worker in enumerate(self.workers)
        ]
        # Drain every future before surfacing a failure: re-raising
        # while siblings still run would let a retry overlap in-flight
        # tasks on the (single-caller) transports.
        concurrent.futures.wait(futures)
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Workspace fan-out.
    # ------------------------------------------------------------------

    def register(self, kind: str, name: str, doc, schema: str = "default") -> list:
        """Register one schema/sigma/view document on every worker."""
        method = {
            "schema": lambda w: w.register_schema(name, doc),
            "sigma": lambda w: w.register_sigma(name, doc),
            "view": lambda w: w.register_view(name, doc, schema=schema),
        }.get(kind)
        if method is None:
            raise ApiError(
                "bad-request",
                f"unknown register kind {kind!r}; kinds are schema, sigma, view",
            )
        return self._fan_out(lambda worker, _index: method(worker))

    def register_schema(self, name: str, schema) -> list:
        return self.register("schema", name, schema)

    def register_sigma(self, name: str, sigma) -> list:
        return self.register("sigma", name, sigma)

    def register_view(self, name: str, view, schema: str = "default") -> list:
        return self.register("view", name, view, schema=schema)

    # ------------------------------------------------------------------
    # The sharded check.
    # ------------------------------------------------------------------

    def check(self, request: CheckRequest) -> Verdict:
        """Dispatch *request* shard-wise and AND the partial verdicts."""
        if request.shards is not None or request.shard_index is not None:
            raise ApiError(
                "bad-request",
                "the orchestrator assigns shards/shard_index itself; leave "
                "both unset on the request",
            )
        if request.witness:
            raise ApiError(
                "bad-request",
                "witness extraction is not orchestrated yet; ask a single "
                "full endpoint for the counterexample",
            )
        started = time.perf_counter()
        partials: list[Verdict] = self._fan_out(
            lambda worker, index: worker.check(
                replace(request, shards=self.shards, shard_index=index)
            )
        )
        width = len(partials[0].propagated)
        if any(len(partial.propagated) != width for partial in partials):
            raise ApiError(
                "internal",
                "shard workers disagreed on the verdict width; are all "
                "endpoints registered with the same workspace?",
            )
        combined = [
            all(partial.propagated[i] for partial in partials)
            for i in range(width)
        ]
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return Verdict(
            combined,
            partials[0].route,
            _sum_stats([partial.stats for partial in partials], elapsed_ms),
        )

    def cover(self, request) -> None:
        raise ApiError(
            "bad-request",
            "covers are not shard-combinable; ask one full (non-shard_index) "
            "endpoint for the cover",
        )

    def delta_sigma(self, request: UpdateSigmaRequest) -> list[SigmaUpdate]:
        """Apply one Sigma diff on every worker (keeps the fleet consistent)."""
        return self._fan_out(lambda worker, _index: worker.delta_sigma(request))

    # ------------------------------------------------------------------
    # Fleet ops.
    # ------------------------------------------------------------------

    def ping(self) -> list[dict]:
        return self._fan_out(lambda worker, _index: worker.ping())

    def close(self) -> None:
        """Shut the thread pool; close the clients this orchestrator opened."""
        self._pool.shutdown(wait=True)
        for client in self._owned:
            client.close()

    def __enter__(self) -> "ShardOrchestrator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
