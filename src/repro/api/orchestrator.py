"""Fleet orchestration: shard fan-out with failover, replica balancing.

Two fleet shapes share one health-checked worker pool (:class:`_Fleet`):

- :class:`ShardOrchestrator` — the distributed shard seam made
  resilient.  The scheduler layer
  (:mod:`repro.propagation.engine.scheduler`) deals the ``k²``
  branch-pair chase of a union view into deterministic shards; the
  ``shard_index`` knob restricts one engine to a single shard, whose
  verdict means only "no violation inside my shard".  The contract
  pinned by ``tests/test_incremental.py`` is that the **AND** of all
  ``shards`` partial verdicts equals the single-engine answer.  The
  orchestrator runs that contract across endpoints — and keeps running
  it when endpoints die: the shard-plan width is fixed at the fleet
  size, so when a worker fails mid-check its ``shard_index`` is
  **re-planned onto a surviving worker** (same ``shards=N`` plan, so
  warm shard-scoped memo keys stay valid) and the AND-verdict still
  lands.  A worker is marked dead on its first ``unavailable`` failure
  and skipped until :meth:`_Fleet.mark_alive` or a successful
  :meth:`_Fleet.check_health` ping revives it.

- :class:`ReplicaSet` — the replica mode for *unsharded* traffic: N
  identical workers (same registered workspace), every check / cover /
  emptiness / batch request load-balances round-robin across the live
  replicas and fails over to the next one when a replica dies
  mid-request (idempotent requests only ever produce one answer, so
  re-routing is safe).  Registrations and Sigma diffs fan out to every
  replica so the fleet stays identical.

Construction, registration fan-out, liveness bookkeeping, health
probes and typed failure aggregation are shared.  A fan-out that loses
workers no longer surfaces just the first failed future: every
per-worker failure is collected into one typed
:class:`~repro.api.ApiError` naming which endpoints died.

    >>> from repro.api import CheckRequest
    >>> from repro.api.orchestrator import ReplicaSet, ShardOrchestrator
    >>> # two workers; any mix of local://, tcp://..., http://... URLs
    >>> orch = ShardOrchestrator(["local://", "local://"])
    >>> orch.close()

Given N endpoint URLs (``local://`` services, ``repro serve --port``
NDJSON workers, ``repro serve --transport http`` fleets — mixed freely),
the shard orchestrator

1. registers the workspace on every worker (:meth:`_Fleet.register` /
   :meth:`register_schema` / :meth:`register_sigma` /
   :meth:`register_view` fan out),
2. dispatches every check with ``shards=N, shard_index=i`` across the
   live workers — concurrently, one in-flight request per worker — and
3. ANDs the partial verdicts into the full :class:`~repro.api.Verdict`,
   summing the per-worker stats deltas (a warm fleet answers with
   ``stats.chases == 0``: each worker memoizes its shard under
   shard-scoped keys).

Covers are **not** shard-combinable (a partial engine refuses them), so
:meth:`ShardOrchestrator.cover` raises a typed error instead of
returning a silently partial cover; Sigma diffs (:meth:`_Fleet.delta_sigma`)
fan out to every worker so the fleet's registrations stay consistent.

Remote shard workers must run with ``--shard-worker`` — a normal
endpoint refuses ``shard_index`` requests so partial verdicts can never
leak to ordinary clients.  Replicas are normal (full-verdict) endpoints.
"""

from __future__ import annotations

import concurrent.futures
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Callable, Sequence, Union

from .client import Client, connect
from .errors import ApiError, to_api_error
from .requests import (
    CheckRequest,
    Request,
    RequestStats,
    Response,
    SigmaUpdate,
    UpdateSigmaRequest,
    Verdict,
)

__all__ = ["ReplicaSet", "ShardOrchestrator"]

Endpoint = Union[str, Client]


class _Fleet:
    """Shared fleet plumbing: workers, liveness, health, typed fan-out.

    ``endpoints`` are URLs (connected here, closed by :meth:`close`) or
    live :class:`~repro.api.client.Client` objects (left open — the
    caller owns them).  ``connect_options`` are forwarded to
    :func:`~repro.api.client.connect` for every URL endpoint (e.g.
    ``retry=RetryPolicy(...)``; ``local://`` ignores it).
    """

    def __init__(self, endpoints: Sequence[Endpoint], **connect_options) -> None:
        if not endpoints:
            raise ApiError(
                "bad-request", f"a {type(self).__name__} needs >= 1 endpoint"
            )
        self._owned: list[Client] = []
        self.workers: list[Client] = []
        try:
            for endpoint in endpoints:
                if isinstance(endpoint, Client):
                    self.workers.append(endpoint)
                else:
                    client = connect(endpoint, **connect_options)
                    self.workers.append(client)
                    self._owned.append(client)
        except BaseException:
            for client in self._owned:
                client.close()
            raise
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.workers), thread_name_prefix="repro-fleet"
        )
        self._health_guard = threading.Lock()
        self._dead: dict[int, str] = {}
        #: Dead-worker detections so far (each one is work re-planned
        #: onto survivors — the failover counter benches assert on).
        self.failovers = 0

    # ------------------------------------------------------------------
    # Liveness: mark-dead / mark-alive state, ping-driven health checks.
    # ------------------------------------------------------------------

    def _describe(self, index: int) -> str:
        return self.workers[index].url or f"worker {index}"

    def mark_dead(self, index: int, reason) -> None:
        """Record worker *index* as dead: skipped by every dispatch until
        revived by :meth:`mark_alive` or a successful health probe."""
        message = reason.message if isinstance(reason, ApiError) else str(reason)
        with self._health_guard:
            if index not in self._dead:
                self._dead[index] = message
                self.failovers += 1

    def mark_alive(self, index: int) -> None:
        """Put worker *index* back into rotation.

        A revived worker that actually restarted has an empty workspace —
        re-register (or let :meth:`register` fan out again) before it
        serves; its caches warm back up from traffic.
        """
        with self._health_guard:
            self._dead.pop(index, None)

    def live_workers(self) -> list[int]:
        """Indexes of the workers currently considered alive, in order."""
        with self._health_guard:
            return [i for i in range(len(self.workers)) if i not in self._dead]

    def health(self) -> list[dict]:
        """The current liveness book (no probes): one record per worker."""
        with self._health_guard:
            dead = dict(self._dead)
        return [
            {
                "index": index,
                "url": worker.url,
                "alive": index not in dead,
                "error": dead.get(index),
            }
            for index, worker in enumerate(self.workers)
        ]

    def check_health(self) -> list[dict]:
        """Ping every worker — dead ones too — and update the liveness book.

        Never raises: an unreachable worker is marked dead and reported
        with its error; a responsive one is marked alive (back in
        rotation) and reported with the endpoint's advertised
        capabilities (protocol, uptime, served count).
        """

        def probe(worker: Client, index: int) -> dict:
            try:
                pong = worker.ping()
            except Exception as exc:  # noqa: BLE001 - probe boundary
                error = to_api_error(exc)
                self.mark_dead(index, error)
                return {
                    "index": index,
                    "url": worker.url,
                    "alive": False,
                    "error": f"[{error.kind}] {error.message}",
                }
            self.mark_alive(index)
            report = {
                "index": index,
                "url": worker.url,
                "alive": True,
                "error": None,
            }
            for key in ("protocol", "shard_worker", "uptime_s", "requests_served"):
                if key in pong:
                    report[key] = pong[key]
            return report

        return self._fan_out(probe)

    # ------------------------------------------------------------------
    # Fan-out with aggregated typed failures.
    # ------------------------------------------------------------------

    def _fan_out(self, call: Callable[[Client, int], object]) -> list:
        """Run ``call(worker, index)`` on every worker concurrently.

        Transports are not thread-safe, but each worker is driven by
        exactly one task per fan-out, and fan-outs never overlap (this
        class is itself single-caller, like the transports).  Every
        future is drained; if any failed, the per-worker failures are
        aggregated into ONE typed error naming which endpoints died —
        sibling outcomes are never silently discarded.  Workers that
        failed with ``unavailable`` are marked dead on the way.
        """
        futures = [
            self._pool.submit(call, worker, index)
            for index, worker in enumerate(self.workers)
        ]
        concurrent.futures.wait(futures)
        results: list = []
        failures: list[tuple[int, ApiError]] = []
        for index, future in enumerate(futures):
            exc = future.exception()
            if exc is None:
                results.append(future.result())
            else:
                error = to_api_error(exc)
                if error.kind == "unavailable":
                    self.mark_dead(index, error)
                failures.append((index, error))
        if failures:
            raise self._aggregate(failures)
        return results

    def _aggregate(self, failures: Sequence[tuple[int, ApiError]]) -> ApiError:
        """One typed error for many worker failures.

        A non-``unavailable`` kind wins (the request itself is wrong —
        retrying elsewhere cannot help); a fleet that only lost workers
        aggregates to ``unavailable``.
        """
        kind = next(
            (e.kind for _, e in failures if e.kind != "unavailable"),
            "unavailable",
        )
        detail = "; ".join(
            f"{self._describe(i)}: [{e.kind}] {e.message}" for i, e in failures
        )
        return ApiError(
            kind,
            f"{len(failures)}/{len(self.workers)} workers failed: {detail}",
        )

    # ------------------------------------------------------------------
    # Workspace fan-out.
    # ------------------------------------------------------------------

    def register(self, kind: str, name: str, doc, schema: str = "default") -> list:
        """Register one schema/sigma/view document on every worker."""
        method = {
            "schema": lambda w: w.register_schema(name, doc),
            "sigma": lambda w: w.register_sigma(name, doc),
            "view": lambda w: w.register_view(name, doc, schema=schema),
        }.get(kind)
        if method is None:
            raise ApiError(
                "bad-request",
                f"unknown register kind {kind!r}; kinds are schema, sigma, view",
            )
        return self._fan_out(lambda worker, _index: method(worker))

    def register_schema(self, name: str, schema) -> list:
        return self.register("schema", name, schema)

    def register_sigma(self, name: str, sigma) -> list:
        return self.register("sigma", name, sigma)

    def register_view(self, name: str, view, schema: str = "default") -> list:
        return self.register("view", name, view, schema=schema)

    def delta_sigma(self, request: UpdateSigmaRequest) -> list[SigmaUpdate]:
        """Apply one Sigma diff on every worker (keeps the fleet consistent)."""
        return self._fan_out(lambda worker, _index: worker.delta_sigma(request))

    # ------------------------------------------------------------------
    # Fleet ops.
    # ------------------------------------------------------------------

    def ping(self) -> list[dict]:
        return self._fan_out(lambda worker, _index: worker.ping())

    def close(self) -> None:
        """Shut the thread pool; close the clients this fleet opened."""
        self._pool.shutdown(wait=True)
        for client in self._owned:
            client.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ShardOrchestrator(_Fleet):
    """Fans one check across N ``shard_index`` workers, ANDs the verdicts.

    The worker count *is* the shard count — and stays the plan width
    even after failures, so re-planned shards reuse the same
    shard-scoped memo keys on whichever worker picks them up.
    """

    @property
    def shards(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    # The sharded check, with failover.
    # ------------------------------------------------------------------

    def check(self, request: CheckRequest) -> Verdict:
        """Dispatch *request* shard-wise and AND the partial verdicts.

        Shards are dealt round-robin over the live workers (one
        in-flight request per worker).  A worker that dies mid-check is
        marked dead and its unfinished shards are re-planned onto the
        survivors in the next round; the check fails only when a
        *request-level* error occurs (typed, raised as-is) or no live
        worker remains (typed ``unavailable`` naming the dead).
        """
        if request.shards is not None or request.shard_index is not None:
            raise ApiError(
                "bad-request",
                "the orchestrator assigns shards/shard_index itself; leave "
                "both unset on the request",
            )
        if request.witness:
            raise ApiError(
                "bad-request",
                "witness extraction is not orchestrated yet; ask a single "
                "full endpoint for the counterexample",
            )
        started = time.perf_counter()
        shards = self.shards
        remaining = set(range(shards))
        partials: dict[int, Verdict] = {}
        while remaining:
            live = self.live_workers()
            if not live:
                with self._health_guard:
                    dead = dict(self._dead)
                detail = "; ".join(
                    f"{self._describe(i)}: {message}"
                    for i, message in sorted(dead.items())
                )
                raise ApiError(
                    "unavailable",
                    f"no live workers left for shard(s) "
                    f"{sorted(remaining)}: {detail}",
                )
            assignment: dict[int, list[int]] = {}
            for offset, shard in enumerate(sorted(remaining)):
                assignment.setdefault(live[offset % len(live)], []).append(shard)
            futures = [
                self._pool.submit(self._run_shards, index, batch, request, shards)
                for index, batch in assignment.items()
            ]
            concurrent.futures.wait(futures)
            for future in futures:
                done, error = future.result()
                for shard, verdict in done.items():
                    partials[shard] = verdict
                    remaining.discard(shard)
                if error is not None:
                    raise error
        ordered = [partials[shard] for shard in range(shards)]
        width = len(ordered[0].propagated)
        if any(len(partial.propagated) != width for partial in ordered):
            raise ApiError(
                "internal",
                "shard workers disagreed on the verdict width; are all "
                "endpoints registered with the same workspace?",
            )
        combined = [
            all(partial.propagated[i] for partial in ordered)
            for i in range(width)
        ]
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        return Verdict(
            combined,
            ordered[0].route,
            RequestStats.total(
                [partial.stats for partial in ordered], elapsed_ms=elapsed_ms
            ),
        )

    def _run_shards(
        self,
        index: int,
        shard_batch: list[int],
        request: CheckRequest,
        shards: int,
    ) -> tuple[dict[int, Verdict], ApiError | None]:
        """One worker's slice, sequentially (transports are single-caller).

        Never raises.  ``unavailable`` marks the worker dead and leaves
        its unfinished shards for the next round's survivors; any other
        failure is a request-level error returned for the check to
        surface as-is.
        """
        worker = self.workers[index]
        done: dict[int, Verdict] = {}
        for shard in shard_batch:
            try:
                done[shard] = worker.check(
                    replace(request, shards=shards, shard_index=shard)
                )
            except Exception as exc:  # noqa: BLE001 - per-worker boundary
                error = to_api_error(exc)
                if error.kind == "unavailable":
                    self.mark_dead(index, error)
                    return done, None
                return done, error
        return done, None

    def cover(self, request) -> None:
        raise ApiError(
            "bad-request",
            "covers are not shard-combinable; ask one full (non-shard_index) "
            "endpoint for the cover",
        )


class ReplicaSet(_Fleet):
    """Load-balances unsharded requests across identical replicas.

    Every :meth:`submit` (check / cover / emptiness / batch) goes to
    ONE live replica, chosen round-robin; a replica that fails with
    ``unavailable`` is marked dead and the request fails over to the
    next live one within the same call.  Service-level errors
    (``bad-request``, ``not-found``, ...) re-raise immediately — the
    endpoint answered, re-routing cannot change the answer.

    Replicas are *full* endpoints serving the same registered workspace
    (no ``--shard-worker``); use :meth:`register_schema` /
    :meth:`register_sigma` / :meth:`register_view` /
    :meth:`delta_sigma`, which fan out, to keep them identical.
    """

    def __init__(self, endpoints: Sequence[Endpoint], **connect_options) -> None:
        super().__init__(endpoints, **connect_options)
        self._rr_guard = threading.Lock()
        self._rr = 0

    def _next_live(self, tried: set[int]) -> int | None:
        live = [i for i in self.live_workers() if i not in tried]
        if not live:
            return None
        with self._rr_guard:
            index = live[self._rr % len(live)]
            self._rr += 1
        return index

    def _route(self, call: Callable[[Client], object]):
        """Run *call* on one live replica, failing over on death."""
        failures: list[tuple[int, ApiError]] = []
        tried: set[int] = set()
        while True:
            index = self._next_live(tried)
            if index is None:
                if failures:
                    raise self._aggregate(failures)
                raise ApiError(
                    "unavailable",
                    "no live replicas; mark one alive (or check_health a "
                    "recovered one) first",
                )
            tried.add(index)
            try:
                return call(self.workers[index])
            except ApiError as exc:
                if exc.kind != "unavailable":
                    raise
                self.mark_dead(index, exc)
                failures.append((index, exc))

    # ------------------------------------------------------------------
    # The balanced request surface (mirrors Client).
    # ------------------------------------------------------------------

    def submit(self, request: Request) -> Response:
        return self._route(lambda worker: worker.submit(request))

    def check(self, request) -> Verdict:
        return self.submit(request)

    def cover(self, request):
        return self.submit(request)

    def emptiness(self, request):
        return self.submit(request)

    def batch(self, request):
        return self.submit(request)

    def stats(self) -> dict:
        """One live replica's engine counters (round-robin like queries)."""
        return self._route(lambda worker: worker.stats())
