"""Typed request and response objects of the propagation service.

Requests name *what* to decide; the service decides *how* (capability
routing — see :mod:`repro.api.service`).  A request references its view
and Sigma either directly (the objects) or by the name they were
registered under in the service's :class:`~repro.api.Workspace`; ``None``
for Sigma means the workspace's ``"default"`` registration.

Per-request knobs (``use_cache``, ``max_instantiations``,
``assume_infinite``, ``shards``) default to ``None`` = "inherit the
service's settings"; a non-``None`` value routes the request to a warm
engine dedicated to that settings combination, so differently-
parameterized requests never share a cache line (the semantics-bearing
settings are part of every cache key anyway; ``shards`` only changes
*how* misses are evaluated — verdicts are shard-count invariant).

:class:`UpdateSigmaRequest` is the incremental-update path: it applies
a diff to a *registered* Sigma and selectively invalidates, keeping
cache lines warm for every relation the diff does not mention (see
``docs/incremental.md``).

Every response carries the route that served it and a
:class:`RequestStats` delta — elapsed time plus the engine counters this
request moved, which is what the server surfaces per request and the
warm-cache smoke tests assert on (``chases == 0`` on a warm leg).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Sequence, Union

from ..algebra.instance import DatabaseInstance
from ..core.cfd import CFD
from ..propagation.check import DependencyLike, ViewLike

__all__ = [
    "BatchRequest",
    "BatchResult",
    "CheckRequest",
    "CoverRequest",
    "CoverResult",
    "EmptinessRequest",
    "EmptinessResult",
    "Request",
    "RequestStats",
    "Response",
    "SigmaUpdate",
    "UpdateSigmaRequest",
    "Verdict",
]

#: A view reference: a registered name or the view object itself.
ViewRef = Union[str, ViewLike]
#: A Sigma reference: a registered name, the dependency list itself, or
#: ``None`` for the workspace default.
SigmaRef = Union[str, Sequence[DependencyLike], None]


@dataclass
class _Settings:
    """The per-request engine-setting overrides (``None`` = inherit).

    ``shard_index`` restricts the request to *one* shard of the
    ``shards``-way branch-pair plan — the distributed scale-out seam.  A
    ``shard_index`` verdict of ``True`` means only "no violation within
    this shard"; an orchestrator (:mod:`repro.api.orchestrator`) must
    AND the verdicts of all ``shards`` workers for the full answer, and
    such partial verdicts are memoized under shard-scoped keys and never
    persisted.

    ``kernel`` selects the chase implementation (``"bitset"`` — the
    packed fast path — or ``"baseline"``); kernels are answer-identical,
    so unlike the semantics-bearing settings it never enters a cache
    key, but it *is* part of the engine-pool key so a request can pin
    an engine to one implementation.
    """

    use_cache: bool | None = None
    max_instantiations: int | None = None
    assume_infinite: bool | None = None
    shards: int | None = None
    shard_index: int | None = None
    kernel: str | None = None


@dataclass
class CheckRequest(_Settings):
    """Decide ``Sigma |=_V phi`` for each target dependency.

    ``witness=True`` additionally asks for a counterexample database per
    non-propagated target (positionally aligned, ``None`` elsewhere).
    """

    view: ViewRef = "default"
    targets: Sequence[DependencyLike] = ()
    sigma: SigmaRef = None
    witness: bool = False


@dataclass
class CoverRequest(_Settings):
    """Compute a minimal propagation cover of Sigma via the view."""

    view: ViewRef = "default"
    sigma: SigmaRef = None


@dataclass
class EmptinessRequest(_Settings):
    """Is the view empty under every database satisfying Sigma?"""

    view: ViewRef = "default"
    sigma: SigmaRef = None
    witness: bool = False


@dataclass
class UpdateSigmaRequest:
    """Apply a diff to a registered Sigma and selectively invalidate.

    ``name=None`` targets the workspace's ``"default"`` registration.
    ``remove`` drops every registered dependency whose normalized CFD
    set is covered by the normalized ``remove`` set (so removing an FD
    also removes its all-wildcard CFD embedding); ``add`` appends.  The
    service computes the *affected relations* — the relations mentioned
    by added or removed CFDs — and invalidates only the warm lines whose
    provenance meets them; everything else stays warm, in the memory
    tiers and the persistent store alike.
    """

    name: str | None = None
    add: Sequence[DependencyLike] = ()
    remove: Sequence[DependencyLike] = ()


@dataclass
class BatchRequest:
    """A sequence of requests answered by one warm service, in order.

    Fail-fast: the first sub-request raising an ApiError aborts the
    batch (the server reports the error for the whole request).
    """

    requests: Sequence["Request"] = ()


Request = Union[
    CheckRequest, CoverRequest, EmptinessRequest, UpdateSigmaRequest, BatchRequest
]


@dataclass
class RequestStats:
    """What one request cost: wall time plus engine-counter deltas."""

    elapsed_ms: float = 0.0
    queries: int = 0
    chases: int = 0
    memo_hits: int = 0
    persistent_hits: int = 0
    closure_fast_path: int = 0
    parallel_tasks: int = 0
    shard_tasks: int = 0
    pair_chases: int = 0
    cover_seed_hits: int = 0
    cover_seed_misses: int = 0

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def total(
        cls, parts: Sequence["RequestStats"], *, elapsed_ms: float = 0.0
    ) -> "RequestStats":
        """Sum every counter field across *parts* (wall time is not
        additive across concurrent parts, so ``elapsed_ms`` is supplied
        by the aggregator).  Derived from :func:`dataclasses.fields` so
        a counter added later can never be silently dropped.
        """
        return cls(
            elapsed_ms=elapsed_ms,
            **{
                f.name: sum(getattr(part, f.name) for part in parts)
                for f in fields(cls)
                if f.name != "elapsed_ms"
            },
        )


@dataclass
class Verdict:
    """The response to a :class:`CheckRequest`."""

    propagated: list[bool]
    route: str
    stats: RequestStats
    witnesses: list[DatabaseInstance | None] | None = None

    @property
    def all_propagated(self) -> bool:
        return all(self.propagated)


@dataclass
class CoverResult:
    """The response to a :class:`CoverRequest`."""

    cover: list[CFD]
    route: str
    stats: RequestStats


@dataclass
class EmptinessResult:
    """The response to an :class:`EmptinessRequest`."""

    empty: bool
    route: str
    stats: RequestStats
    witness: DatabaseInstance | None = None


@dataclass
class SigmaUpdate:
    """The response to an :class:`UpdateSigmaRequest`.

    ``invalidated``/``retained`` count in-memory cache lines across the
    service's engine pool: lines whose provenance met the affected
    relations (dropped) versus lines left warm.
    """

    name: str
    size: int
    affected_relations: list[str]
    invalidated: int
    retained: int
    route: str = "delta-sigma"
    stats: RequestStats = field(default_factory=RequestStats)


@dataclass
class BatchResult:
    """The response to a :class:`BatchRequest`: sub-results, in order."""

    results: list["Response"] = field(default_factory=list)
    stats: RequestStats = field(default_factory=RequestStats)


Response = Union[Verdict, CoverResult, EmptinessResult, SigmaUpdate, BatchResult]
