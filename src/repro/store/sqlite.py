"""The sqlite blob store: the schema-versioned local persistent tier.

:class:`SqliteStore` is the on-disk backing of the engine's verdict and
cover caches (see :mod:`repro.propagation.cache` for the tiering and
:doc:`docs/caching.md` for the operational story).  It is deliberately a
dumb string-keyed blob store:

- Keys are the *stable fingerprints* of
  :func:`repro.propagation.cache.stable_digest` — hex digests over the
  canonical JSON of ``(Sigma fingerprint, view fingerprint, phi,
  engine settings)``.  Structural keys never contain Python ``hash()``
  output (which is salted per process), so one store is shared safely by
  many worker processes.
- Values are short serialized payloads: ``"1"``/``"0"`` for verdicts and
  canonical JSON dependency lists (the :mod:`repro.io` wire format) for
  covers.
- Every row carries no semantics beyond its table; the two tables are
  fixed (``verdicts`` and ``covers``) and whitelisted before they reach
  a SQL string.

Schema versioning, twice over: the ``meta`` table records
``schema_version``, and a store whose recorded version differs from the
opener's is dropped and recreated empty — a cold start.  Additionally
*every row* is stamped with its writer's version and reads filter on the
reader's version, so a still-running old-version process whose open
connection outlived a new-version reset can keep writing without its
rows ever being served to (or clobbering the correctness of) new-version
readers — never a misinterpretation of stale bytes, even mid rolling
upgrade.  Bump :data:`SCHEMA_VERSION` whenever the key derivation or the
payload encoding changes.

Concurrency: the store opens in WAL mode with both the connect-level
``timeout`` and an explicit ``PRAGMA busy_timeout`` (belt and braces —
the pragma also covers statements issued by future connections cloned
from this path), and every write is its own transaction, so concurrent
readers and a writer (or several writer processes racing on
``INSERT OR REPLACE`` of identical rows) are safe.  The cache is
idempotent — both writers compute the same verdict for the same key —
so last-writer-wins is correct.
``tests/test_store.py::test_sqlite_store_multiprocess_hammer`` drives
several processes against one store to hold this under contention.

Single-flight leases (:meth:`~SqliteStore.acquire_lease`) live in a
separate ``leases`` table keyed ``table:key`` with a wall-clock expiry,
granted atomically by an upsert whose ``WHERE`` clause only steals
expired rows — so N worker *processes* sharing one ``--cache-dir`` also
get stampede control, not just N workers behind one network store.
"""

from __future__ import annotations

import sqlite3
import time
from pathlib import Path

from .base import BlobStore

__all__ = ["SCHEMA_VERSION", "STORE_FILENAME", "SqliteStore"]

#: Bump on any change to key derivation or payload encoding.  A store
#: written under a different version is dropped on open (cold start).
#:
#: v1: whole-Sigma fingerprints (PR 2/3).
#: v2: provenance-scoped composite keys — per-relation Sigma
#:     fingerprints over the view's touched relations
#:     (:mod:`repro.propagation.engine.keys`).  v1 stores migrate to
#:     cold on open: their whole-Sigma keys are unreachable under the
#:     composite derivation and must never be misread as warm lines.
SCHEMA_VERSION = 2

#: The only tables the store manages; names are interpolated into SQL and
#: must never come from user input.
_TABLES = ("verdicts", "covers")

#: Default file name inside a ``--cache-dir``.
STORE_FILENAME = "propagation.sqlite"

#: Milliseconds sqlite waits on a locked database before SQLITE_BUSY.
_BUSY_TIMEOUT_MS = 30_000


class SqliteStore(BlobStore):
    """A string-keyed persistent memo store shared across processes.

    Parameters
    ----------
    path:
        The sqlite database file; parent directories are created.
    schema_version:
        Overridable for tests exercising the version-mismatch fallback;
        production callers leave the default (the module-level
        :data:`SCHEMA_VERSION`, read at call time).
    """

    supports_leases = True

    def __init__(self, path: str | Path, schema_version: int | None = None) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.schema_version = int(
            SCHEMA_VERSION if schema_version is None else schema_version
        )
        #: True when opening found (and discarded) an incompatible store.
        self.reset_on_open = False
        self._conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={_BUSY_TIMEOUT_MS}")
        self._ensure_schema()

    @classmethod
    def open_dir(
        cls, cache_dir: str | Path, schema_version: int | None = None
    ) -> "SqliteStore":
        """Open (creating if needed) the store inside *cache_dir*."""
        return cls(Path(cache_dir) / STORE_FILENAME, schema_version=schema_version)

    # ------------------------------------------------------------------
    # Schema management.
    # ------------------------------------------------------------------

    def _ensure_schema(self) -> None:
        with self._conn:
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is not None and row[0] != str(self.schema_version):
                # Incompatible bytes: fall back to a cold, empty store.
                for table in _TABLES:
                    self._conn.execute(f"DROP TABLE IF EXISTS {table}")
                self._conn.execute("DROP TABLE IF EXISTS leases")
                self._conn.execute("DELETE FROM meta")
                self.reset_on_open = True
            for table in _TABLES:
                self._conn.execute(
                    f"CREATE TABLE IF NOT EXISTS {table} "
                    "(key TEXT PRIMARY KEY, payload TEXT NOT NULL, "
                    "version INTEGER NOT NULL)"
                )
            # Single-flight leases: transient coordination state, keyed
            # across tables, expiring by wall clock (cross-process).
            self._conn.execute(
                "CREATE TABLE IF NOT EXISTS leases "
                "(key TEXT PRIMARY KEY, expires REAL NOT NULL)"
            )
            self._conn.execute(
                "INSERT OR REPLACE INTO meta (key, value) "
                "VALUES ('schema_version', ?)",
                (str(self.schema_version),),
            )

    @staticmethod
    def _table(table: str) -> str:
        if table not in _TABLES:
            raise ValueError(f"unknown store table {table!r}; have {_TABLES}")
        return table

    # ------------------------------------------------------------------
    # The blob-store surface.
    # ------------------------------------------------------------------

    def get(self, table: str, key: str) -> str | None:
        """The payload stored under *key* by this schema version, or ``None``.

        A row stamped by a different-version writer (a racing process
        mid rolling upgrade) is invisible — a miss, never stale bytes.
        """
        row = self._conn.execute(
            f"SELECT payload FROM {self._table(table)} "
            "WHERE key = ? AND version = ?",
            (key, self.schema_version),
        ).fetchone()
        return None if row is None else row[0]

    def put(self, table: str, key: str, payload: str) -> None:
        """Store *payload* under *key* (last writer wins; idempotent use)."""
        with self._conn:
            self._conn.execute(
                f"INSERT OR REPLACE INTO {self._table(table)} "
                "(key, payload, version) VALUES (?, ?, ?)",
                (key, payload, self.schema_version),
            )

    def count(self, table: str) -> int:
        """Number of rows in *table* (telemetry / tests)."""
        row = self._conn.execute(
            f"SELECT COUNT(*) FROM {self._table(table)}"
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------------
    # Single-flight leases.
    # ------------------------------------------------------------------

    def acquire_lease(self, table: str, key: str, ttl_s: float) -> bool:
        """Atomically claim ``table:key`` unless a live lease holds it.

        The upsert inserts a fresh row, or steals an existing one only
        when its expiry has passed (the ``WHERE`` guard) — one statement,
        so two racing processes cannot both win.  Wall-clock expiry is
        deliberate: leases must expire across processes, and a crashed
        owner's clock is no longer ticking anywhere else.
        """
        self._table(table)
        now = time.time()
        with self._conn:
            cursor = self._conn.execute(
                "INSERT INTO leases (key, expires) VALUES (?, ?) "
                "ON CONFLICT(key) DO UPDATE SET expires = excluded.expires "
                "WHERE leases.expires < ?",
                (f"{table}:{key}", now + ttl_s, now),
            )
            return cursor.rowcount > 0

    def release_lease(self, table: str, key: str) -> None:
        self._table(table)
        with self._conn:
            self._conn.execute(
                "DELETE FROM leases WHERE key = ?", (f"{table}:{key}",)
            )

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SqliteStore({str(self.path)!r}, v{self.schema_version})"
