"""A stdlib-only ``redis://`` blob-store backend (RESP2 over a socket).

:class:`RedisStore` maps the blob surface onto five Redis commands —
``GET``, ``SET``, ``DEL``, ``SCAN`` and the atomic single-flight grant
``SET key 1 NX PX <ttl-ms>`` — speaking just enough RESP2 to cover them,
so a fleet can share warmth through an existing Redis (or any
RESP-compatible server; the unit tests drive a 60-line in-process fake)
without this repo growing a dependency.

Keyspace layout: ``{namespace}:v{SCHEMA_VERSION}:{table}:{fingerprint}``
(leases under ``...:lease:{table}:{fingerprint}``).  The schema version
is baked into every key, which buys the sqlite store's rolling-upgrade
guarantee for free — an old-version writer and a new-version reader
address disjoint keys, so stale bytes are never misread.

Failure classification matches :class:`~repro.store.remote.RemoteStore`:
connectivity problems raise ``unavailable`` (what the cache degrades
on), server ``-ERR`` replies raise ``bad-request`` (the server answered;
not retryable), and the optional
:class:`~repro.api.transport.RetryPolicy` retries only the former.
TTL quotas come from Redis itself (``ttl_s`` maps to ``SET ... PX``);
size quotas are the Redis deployment's ``maxmemory`` policy — the store
deliberately does not reimplement them client-side.
"""

from __future__ import annotations

import socket
import time
from typing import Any

from ..api.errors import ApiError
from ..api.transport import RetryPolicy
from .base import BlobStore
from .sqlite import SCHEMA_VERSION

__all__ = ["RedisStore"]

_TABLES = ("verdicts", "covers")

DEFAULT_TIMEOUT = 30.0


class RedisStore(BlobStore):
    """The engine's persistent tier on a Redis-compatible server."""

    supports_leases = True

    def __init__(
        self,
        host: str,
        port: int = 6379,
        *,
        db: int = 0,
        namespace: str = "repro",
        ttl_s: float | None = None,
        timeout: float = DEFAULT_TIMEOUT,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._endpoint = f"redis://{host}:{port}/{db}"
        self._address = (host, port)
        self._db = int(db)
        self._prefix = f"{namespace}:v{SCHEMA_VERSION}"
        self.ttl_s = ttl_s
        self._timeout = timeout
        self.retry = retry
        self._sock: socket.socket | None = None
        self._file = None

    @staticmethod
    def _table(table: str) -> str:
        if table not in _TABLES:
            raise ValueError(f"unknown store table {table!r}; have {_TABLES}")
        return table

    def _key(self, table: str, key: str) -> str:
        return f"{self._prefix}:{self._table(table)}:{key}"

    def _lease_key(self, table: str, key: str) -> str:
        return f"{self._prefix}:lease:{self._table(table)}:{key}"

    # ------------------------------------------------------------------
    # RESP2 plumbing.
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                self._address, timeout=self._timeout
            )
        except OSError as exc:
            self._sock = None
            raise ApiError(
                "unavailable", f"cannot connect to {self._endpoint}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")
        if self._db:
            self._command_once("SELECT", str(self._db))

    def _reset(self) -> None:
        file, sock, self._file, self._sock = self._file, self._sock, None, None
        for closeable in (file, sock):
            if closeable is None:
                continue
            try:
                closeable.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _read_reply(self) -> Any:
        line = self._file.readline()
        if not line.endswith(b"\r\n"):
            self._reset()
            raise ApiError(
                "unavailable", f"{self._endpoint}: connection closed mid-reply"
            )
        marker, body = line[:1], line[1:-2]
        if marker == b"+":
            return body.decode()
        if marker == b"-":
            raise ApiError(
                "bad-request", f"{self._endpoint} answered an error: {body.decode()}"
            )
        if marker == b":":
            return int(body)
        if marker == b"$":
            length = int(body)
            if length == -1:
                return None
            data = self._file.read(length + 2)
            if len(data) != length + 2:
                self._reset()
                raise ApiError(
                    "unavailable", f"{self._endpoint}: truncated bulk reply"
                )
            return data[:-2].decode()
        if marker == b"*":
            count = int(body)
            if count == -1:
                return None
            return [self._read_reply() for _ in range(count)]
        self._reset()
        raise ApiError(
            "internal",
            f"{self._endpoint} sent an unknown RESP marker {marker!r}",
        )

    def _command_once(self, *args: str) -> Any:
        if self._sock is None:
            self._connect()
        out = [f"*{len(args)}\r\n".encode()]
        for arg in args:
            data = arg.encode()
            out.append(f"${len(data)}\r\n".encode() + data + b"\r\n")
        try:
            self._file.write(b"".join(out))
            self._file.flush()
            return self._read_reply()
        except OSError as exc:
            self._reset()
            raise ApiError(
                "unavailable", f"{self._endpoint} request failed: {exc}"
            ) from exc

    def _command(self, *args: str) -> Any:
        policy = self.retry
        if policy is None or policy.retries < 1:
            return self._command_once(*args)
        delays = policy.delays()
        while True:
            try:
                return self._command_once(*args)
            except ApiError as exc:
                if exc.kind != "unavailable":
                    raise
                delay = next(delays, None)
                if delay is None:
                    raise
                time.sleep(delay)

    # ------------------------------------------------------------------
    # The blob-store surface.
    # ------------------------------------------------------------------

    def get(self, table: str, key: str) -> str | None:
        return self._command("GET", self._key(table, key))

    def put(self, table: str, key: str, payload: str) -> None:
        if self.ttl_s is not None:
            self._command(
                "SET", self._key(table, key), payload,
                "PX", str(int(self.ttl_s * 1000)),
            )
        else:
            self._command("SET", self._key(table, key), payload)

    def count(self, table: str) -> int:
        pattern = f"{self._prefix}:{self._table(table)}:*"
        cursor, total = "0", 0
        while True:
            reply = self._command("SCAN", cursor, "MATCH", pattern, "COUNT", "512")
            cursor, keys = reply[0], reply[1]
            total += len(keys)
            if cursor == "0":
                return total

    def acquire_lease(self, table: str, key: str, ttl_s: float) -> bool:
        reply = self._command(
            "SET", self._lease_key(table, key), "1",
            "NX", "PX", str(max(1, int(ttl_s * 1000))),
        )
        return reply == "OK"

    def release_lease(self, table: str, key: str) -> None:
        self._command("DEL", self._lease_key(table, key))

    def close(self) -> None:
        self._reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RedisStore({self._endpoint!r}, prefix={self._prefix!r})"
