"""The abstract blob-store surface and its URL scheme registry.

:class:`BlobStore` is the ``get/put/count/close`` surface extracted from
the PR 2 sqlite store (:mod:`repro.store.sqlite`), now one interface with
several backings:

==============================  ========================================
URL scheme                      backend
==============================  ========================================
``sqlite://DIR``                :class:`~repro.store.sqlite.SqliteStore`
                                under ``DIR`` — exactly the
                                ``--cache-dir`` store, addressable by URL.
``store://host:port``           :class:`~repro.store.remote.RemoteStore`
                                — NDJSON client of ``repro store-serve``
                                (:mod:`repro.store.server`), the
                                fleet-shared network tier.
``redis://host:port[/db]``      :class:`~repro.store.redis_backend.RedisStore`
                                — a stdlib-only RESP client for an
                                external Redis (or compatible) server.
``memory://``                   :class:`~repro.store.memory.MemoryStore`
                                — in-process, quota-enforcing (tests,
                                and the default backing of the server).
==============================  ========================================

:func:`open_store` resolves a URL through the registry
(:func:`register_store_scheme` adds schemes, mirroring
:func:`repro.api.transport.register_scheme`); an unknown or malformed
scheme raises a typed :class:`~repro.api.ApiError` of the **format**
kind (exit code 2) — a store URL is configuration, like an input file,
not a request.

Beyond the blob surface, a store may support **single-flight leases** —
the cross-process generalization of the engine's in-batch miss dedup.
``acquire_lease(table, key, ttl_s)`` grants at most one caller per key
until the lease expires or is released; losers :meth:`~BlobStore.wait_for`
the winner's payload instead of redoing the chase.  Lease state is
advisory and TTL-bounded: a crashed owner's lease expires and waiters
fall back to computing locally, so the mechanism can suppress duplicate
work but never wedge correctness.

This module deliberately imports nothing from :mod:`repro.api` at module
level (it loads during ``repro.propagation`` package init, below the api
layer); error types are resolved lazily and the network backends are
imported only when their scheme is opened.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import Callable
from urllib.parse import urlsplit

__all__ = [
    "BlobStore",
    "DEFAULT_LEASE_TTL",
    "open_store",
    "register_store_scheme",
    "validate_store_url",
]

#: Default single-flight lease lifetime (seconds): generous enough for a
#: cold exponential-family chase, finite so a crashed lease owner never
#: wedges its waiters — they time out and compute locally.
DEFAULT_LEASE_TTL = 30.0

#: Default poll interval for :meth:`BlobStore.wait_for` (seconds).
DEFAULT_WAIT_INTERVAL = 0.02


def _format_error(message: str) -> Exception:
    # Lazy: repro.api imports repro.propagation (which imports this
    # package), so the api error type is resolved at raise time only.
    from ..api.errors import ApiError

    return ApiError("format", message)


class BlobStore(ABC):
    """A string-keyed blob store: the engine's persistent memo tier.

    Keys are the stable fingerprints of
    :func:`repro.propagation.cache.stable_digest`; payloads are short
    serialized strings (``"1"``/``"0"`` verdicts, canonical JSON
    covers).  Tables (*scopes*) are a fixed whitelist — ``verdicts`` and
    ``covers`` — and every implementation must reject anything else
    before it reaches a query string.
    """

    #: The URL this store was opened from (set by :func:`open_store`).
    url: str = ""
    #: True when opening found (and discarded) an incompatible store.
    reset_on_open: bool = False
    #: Whether :meth:`acquire_lease` coordinates across clients.  A
    #: backend without real leases leaves this False and every caller
    #: computes locally — correct, just without stampede suppression.
    supports_leases: bool = False

    @abstractmethod
    def get(self, table: str, key: str) -> str | None:
        """The payload stored under *key*, or ``None`` on a miss."""

    @abstractmethod
    def put(self, table: str, key: str, payload: str) -> None:
        """Store *payload* under *key* (last writer wins; idempotent use)."""

    @abstractmethod
    def count(self, table: str) -> int:
        """Number of rows in *table* (telemetry / tests)."""

    @abstractmethod
    def close(self) -> None:
        """Release the backing resource (idempotent)."""

    # ------------------------------------------------------------------
    # Single-flight leases (optional; default = no coordination).
    # ------------------------------------------------------------------

    def acquire_lease(self, table: str, key: str, ttl_s: float) -> bool:
        """Try to become the single flight for *key*.

        ``True`` means this caller owns the computation and must
        :meth:`put` the payload then :meth:`release_lease`; ``False``
        means another flight is in progress — :meth:`wait_for` its
        payload.  The default (no lease support) grants everyone, which
        degrades to today's compute-everywhere behavior.
        """
        return True

    def release_lease(self, table: str, key: str) -> None:
        """Drop a held lease so late waiters stop polling early."""

    def wait_for(
        self,
        table: str,
        key: str,
        timeout_s: float,
        interval_s: float = DEFAULT_WAIT_INTERVAL,
    ) -> str | None:
        """Poll for another flight's payload until *timeout_s* expires.

        Returns the payload as soon as it appears, or ``None`` on
        timeout (the lease owner died — the caller computes locally).
        """
        deadline = time.monotonic() + timeout_s
        while True:
            payload = self.get(table, key)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                return None
            time.sleep(interval_s)

    def __enter__(self) -> "BlobStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# The store scheme registry.
# ----------------------------------------------------------------------

_STORE_SCHEMES: dict[str, Callable[..., BlobStore]] = {}


def register_store_scheme(scheme: str, factory: Callable[..., BlobStore]) -> None:
    """Register ``factory(parts, **options) -> BlobStore`` for *scheme*.

    ``parts`` is the :func:`urllib.parse.urlsplit` of the store URL.
    Registering an existing scheme replaces it (tests and downstream
    deployments can wrap the built-ins).
    """
    _STORE_SCHEMES[scheme] = factory


def _sqlite_factory(parts, **options) -> BlobStore:
    from .sqlite import SqliteStore

    # Both spellings address a directory: ``sqlite:///abs/dir`` (empty
    # netloc, absolute path) and ``sqlite://rel/dir`` (netloc + path).
    cache_dir = (parts.netloc or "") + parts.path
    if not cache_dir:
        raise _format_error(
            f"sqlite store URL {parts.geturl()!r} names no directory; "
            "use sqlite:///abs/path or sqlite://relative/path"
        )
    return SqliteStore.open_dir(cache_dir, **options)


def _store_host_port(parts, *, default_port: int | None = None) -> tuple[str, int]:
    try:
        port = parts.port
    except ValueError as exc:
        raise _format_error(f"bad store URL port: {exc}") from None
    if port is None:
        port = default_port
    if not parts.hostname or port is None:
        raise _format_error(
            f"store URL {parts.geturl()!r} needs the host:port form"
        )
    return parts.hostname, port


def _remote_factory(parts, **options) -> BlobStore:
    from .remote import RemoteStore

    host, port = _store_host_port(parts)
    return RemoteStore(host, port, **options)


def _redis_factory(parts, **options) -> BlobStore:
    from .redis_backend import RedisStore

    host, port = _store_host_port(parts, default_port=6379)
    db = parts.path.strip("/")
    if db:
        if not db.isdigit():
            raise _format_error(
                f"redis store URL {parts.geturl()!r} has a non-numeric "
                f"database index {db!r}"
            )
        options.setdefault("db", int(db))
    return RedisStore(host, port, **options)


def _memory_factory(parts, **options) -> BlobStore:
    from .memory import MemoryStore

    return MemoryStore(**options)


register_store_scheme("sqlite", _sqlite_factory)
register_store_scheme("store", _remote_factory)
register_store_scheme("redis", _redis_factory)
register_store_scheme("memory", _memory_factory)


def _split(url: str):
    parts = urlsplit(url)
    if not parts.scheme:
        raise _format_error(
            f"malformed store URL {url!r}: no scheme; known schemes: "
            + ", ".join(sorted(_STORE_SCHEMES))
        )
    factory = _STORE_SCHEMES.get(parts.scheme)
    if factory is None:
        known = ", ".join(sorted(_STORE_SCHEMES))
        raise _format_error(
            f"unknown store scheme {parts.scheme!r} in {url!r}; "
            f"registered schemes: {known}"
        )
    return parts, factory


def validate_store_url(url: str) -> str:
    """Check *url* parses to a registered scheme, without opening it.

    Configuration surfaces (the service constructor, ``--store-url``)
    call this so a typo fails fast with a typed **format** error instead
    of surfacing on the first query.  Returns *url* unchanged.
    """
    _split(url)
    return url


def open_store(url: str, **options) -> BlobStore:
    """Resolve a store URL into a live :class:`BlobStore`.

    ``options`` are forwarded to the scheme factory (``timeout`` and
    ``retry`` for the network schemes, quota knobs for ``memory://``).
    Unknown or malformed URLs raise the typed **format**
    :class:`~repro.api.ApiError` — never a traceback.  Network stores
    connect lazily: opening a URL whose server is down succeeds, and the
    engine degrades each miss on the dead store to a cache miss.
    """
    parts, factory = _split(url)
    try:
        store = factory(parts, **options)
    except TypeError as exc:
        raise _format_error(
            f"bad options for {parts.scheme!r} store: {exc}"
        ) from exc
    store.url = url
    return store
