"""An in-process blob store with per-scope TTL and size quotas.

:class:`MemoryStore` is two things:

1. the ``memory://`` scheme — a zero-setup store for tests and for
   single-process runs that want quota semantics without a file; and
2. the default backing of the blob-store server
   (:mod:`repro.store.server`), where its quotas become the *server-side*
   resource policy of the fleet-shared tier: each scope (table) is
   bounded to ``max_entries`` rows evicted LRU, and every payload
   expires ``ttl_s`` seconds after its write.  Clients cannot opt out —
   the server enforces, which is what keeps one misbehaving worker from
   pinning the fleet's memory.

Counters (``hits``/``misses``/``writes``/``evictions``/``expirations``
and the lease grant/deny pair) feed the server's ``stats`` op.

Thread-safe: the server handles connections concurrently and the tests
hammer it from thread pools, so every operation takes the store lock.
TTL and lease expiry use the monotonic clock — wall-clock steps must not
mass-expire a tier (unlike :class:`~repro.store.sqlite.SqliteStore`
leases, which cross processes and must use wall time).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict

from .base import BlobStore

__all__ = ["MemoryStore"]

_TABLES = ("verdicts", "covers")


class MemoryStore(BlobStore):
    """A quota-enforcing, thread-safe, in-process blob store.

    Parameters
    ----------
    max_entries:
        Per-scope row bound; the least recently *used* row is evicted
        beyond it.  ``None`` = unbounded.
    ttl_s:
        Per-scope payload lifetime in seconds from the write; an expired
        row reads as a miss and is purged lazily.  ``None`` = forever.
    """

    supports_leases = True

    def __init__(
        self, *, max_entries: int | None = None, ttl_s: float | None = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be positive, got {ttl_s}")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        # table -> key -> (payload, expires_at | None); OrderedDict is the
        # LRU order (most recently used last), exactly like LRUCache.
        self._tables: dict[str, OrderedDict[str, tuple[str, float | None]]] = {
            table: OrderedDict() for table in _TABLES
        }
        self._leases: dict[str, float] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.evictions = 0
        self.expirations = 0
        self.leases_granted = 0
        self.leases_denied = 0

    def _rows(self, table: str) -> OrderedDict:
        try:
            return self._tables[table]
        except KeyError:
            raise ValueError(
                f"unknown store table {table!r}; have {_TABLES}"
            ) from None

    # ------------------------------------------------------------------
    # The blob-store surface.
    # ------------------------------------------------------------------

    def get(self, table: str, key: str) -> str | None:
        with self._lock:
            rows = self._rows(table)
            entry = rows.get(key)
            if entry is not None:
                payload, expires = entry
                if expires is not None and time.monotonic() >= expires:
                    del rows[key]
                    self.expirations += 1
                else:
                    rows.move_to_end(key)
                    self.hits += 1
                    return payload
            self.misses += 1
            return None

    def put(self, table: str, key: str, payload: str) -> None:
        with self._lock:
            rows = self._rows(table)
            expires = None if self.ttl_s is None else time.monotonic() + self.ttl_s
            rows[key] = (payload, expires)
            rows.move_to_end(key)
            self.writes += 1
            if self.max_entries is not None:
                while len(rows) > self.max_entries:
                    rows.popitem(last=False)
                    self.evictions += 1

    def count(self, table: str) -> int:
        with self._lock:
            rows = self._rows(table)
            now = time.monotonic()
            return sum(
                1
                for payload, expires in rows.values()
                if expires is None or now < expires
            )

    def close(self) -> None:
        pass

    # ------------------------------------------------------------------
    # Single-flight leases.
    # ------------------------------------------------------------------

    def acquire_lease(self, table: str, key: str, ttl_s: float) -> bool:
        self._rows(table)  # table whitelist applies to leases too
        now = time.monotonic()
        with self._lock:
            expires = self._leases.get(f"{table}:{key}")
            if expires is not None and now < expires:
                self.leases_denied += 1
                return False
            self._leases[f"{table}:{key}"] = now + ttl_s
            self.leases_granted += 1
            return True

    def release_lease(self, table: str, key: str) -> None:
        self._rows(table)
        with self._lock:
            self._leases.pop(f"{table}:{key}", None)

    def counters(self) -> dict[str, int]:
        """A snapshot of the telemetry counters (the server's ``stats``)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "writes": self.writes,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "leases_granted": self.leases_granted,
                "leases_denied": self.leases_denied,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        cap = "inf" if self.max_entries is None else self.max_entries
        ttl = "inf" if self.ttl_s is None else self.ttl_s
        sizes = {table: len(rows) for table, rows in self._tables.items()}
        return f"MemoryStore({sizes}, max_entries={cap}, ttl_s={ttl})"
