"""The blob-store subsystem: one persistent-tier interface, many backings.

The engine's persistent memo tier (PR 2's sqlite store) generalized into
an abstract :class:`~repro.store.base.BlobStore` behind a URL scheme
registry, so a worker fleet can share cache warmth through a network
store instead of a common filesystem:

- ``sqlite://DIR`` — the local schema-versioned sqlite store (exactly
  ``--cache-dir``), :mod:`repro.store.sqlite`;
- ``store://host:port`` — a ``repro store-serve`` blob-store server
  (:mod:`repro.store.server`), spoken to by
  :class:`~repro.store.remote.RemoteStore`;
- ``redis://host:port[/db]`` — a stdlib-only RESP client for an external
  Redis-compatible server, :mod:`repro.store.redis_backend`;
- ``memory://`` — an in-process quota-enforcing store
  (:mod:`repro.store.memory`; also the server's default backing).

:func:`~repro.store.base.open_store` resolves URLs (typed **format**
errors on unknown/malformed schemes); every backend optionally supports
cross-process **single-flight leases** so N workers missing the same
fingerprint compute one chase (``docs/caching.md``).

Import discipline: this package sits *below* :mod:`repro.api` (the
engine imports it at module load), so only the lazily-loaded network
modules (:mod:`~repro.store.remote`, :mod:`~repro.store.server`,
:mod:`~repro.store.redis_backend`) may import api types at module level.
"""

from .base import (
    DEFAULT_LEASE_TTL,
    BlobStore,
    open_store,
    register_store_scheme,
    validate_store_url,
)
from .memory import MemoryStore
from .sqlite import SCHEMA_VERSION, STORE_FILENAME, SqliteStore

__all__ = [
    "BlobStore",
    "DEFAULT_LEASE_TTL",
    "MemoryStore",
    "SCHEMA_VERSION",
    "STORE_FILENAME",
    "SqliteStore",
    "open_store",
    "register_store_scheme",
    "validate_store_url",
]
