"""The ``store://host:port`` client of the blob-store server.

:class:`RemoteStore` speaks the NDJSON protocol of
:mod:`repro.store.server` over one lazily-opened socket, following the
transport discipline of :class:`repro.api.transport.TcpTransport`:

- the connection opens on the first operation and is dropped and
  re-opened after any failure — a broken socket never poisons later
  requests;
- transport failures (refused connections, EOF or truncated lines
  mid-response) surface as :class:`~repro.api.ApiError` of the
  ``unavailable`` kind, which is exactly what
  :class:`~repro.propagation.cache.TieredCache` and the engine's
  single-flight path degrade on — a dead store is a cache miss, never a
  request failure;
- an optional :class:`~repro.api.transport.RetryPolicy` (the PR 6
  resilience policy, verbatim) retries ``unavailable`` failures with
  bounded exponential backoff.  Every store op is safe to resend: reads
  are pure, ``put`` is idempotent (same key, same computed payload),
  ``unlease`` is a delete, and a replayed ``lease`` whose first attempt
  won but lost its response simply reads as denied — the owner then
  waits for its own write to reappear and times out into a local
  compute, which costs duplicated work, never a wrong answer.

Error *documents* from the server (``bad-request`` for an unknown table,
…) re-raise under their own kind — the server answered; that is not a
transport failure and is never retried.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Mapping

from ..api.errors import ApiError
from ..api.transport import RetryPolicy
from .base import BlobStore

__all__ = ["RemoteStore"]

#: Default socket timeout (seconds).  Store ops are dict-fast server
#: side; anything slower than this is a dead or wedged server.
DEFAULT_TIMEOUT = 30.0


class RemoteStore(BlobStore):
    """A blob store served by ``repro store-serve`` on another host."""

    supports_leases = True

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = DEFAULT_TIMEOUT,
        retry: RetryPolicy | None = None,
    ) -> None:
        self._endpoint = f"store://{host}:{port}"
        self._address = (host, port)
        self._timeout = timeout
        self.retry = retry
        self._sock: socket.socket | None = None
        self._file = None

    # ------------------------------------------------------------------
    # Wire plumbing.
    # ------------------------------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                self._address, timeout=self._timeout
            )
        except OSError as exc:
            self._sock = None
            raise ApiError(
                "unavailable", f"cannot connect to {self._endpoint}: {exc}"
            ) from exc
        self._file = self._sock.makefile("rwb")

    def _reset(self) -> None:
        """Drop a broken connection so the next request reconnects."""
        file, sock, self._file, self._sock = self._file, self._sock, None, None
        for closeable in (file, sock):
            if closeable is None:
                continue
            try:
                closeable.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _request_once(self, doc: Mapping[str, Any]) -> dict:
        if self._sock is None:
            self._connect()
        payload = (json.dumps(doc) + "\n").encode()
        try:
            self._file.write(payload)
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            self._reset()
            raise ApiError(
                "unavailable", f"{self._endpoint} request failed: {exc}"
            ) from exc
        if not line.endswith(b"\n"):
            self._reset()
            detail = "connection closed" if not line else "truncated NDJSON response"
            raise ApiError(
                "unavailable",
                f"{self._endpoint}: {detail} before a complete response",
            )
        try:
            return json.loads(line)
        except json.JSONDecodeError as exc:
            raise ApiError(
                "internal", f"{self._endpoint} sent a malformed response: {exc}"
            ) from exc

    def _call(self, doc: Mapping[str, Any]) -> dict:
        """One store op through the retry loop, unwrapping the envelope."""
        policy = self.retry
        if policy is None or policy.retries < 1:
            envelope = self._request_once(doc)
        else:
            delays = policy.delays()
            while True:
                try:
                    envelope = self._request_once(doc)
                    break
                except ApiError as exc:
                    if exc.kind != "unavailable":
                        raise
                    delay = next(delays, None)
                    if delay is None:
                        raise
                    time.sleep(delay)
        if not envelope.get("ok"):
            error = envelope.get("error") or {}
            raise ApiError(
                error.get("kind", "internal"),
                f"{self._endpoint}: {error.get('message', 'unknown store error')}",
            )
        result = envelope.get("result")
        if not isinstance(result, dict):
            raise ApiError(
                "internal", f"{self._endpoint} sent an envelope without a result"
            )
        return result

    # ------------------------------------------------------------------
    # The blob-store surface.
    # ------------------------------------------------------------------

    def get(self, table: str, key: str) -> str | None:
        return self._call({"op": "get", "table": table, "key": key})["payload"]

    def put(self, table: str, key: str, payload: str) -> None:
        self._call({"op": "put", "table": table, "key": key, "payload": payload})

    def count(self, table: str) -> int:
        return int(self._call({"op": "count", "table": table})["count"])

    def acquire_lease(self, table: str, key: str, ttl_s: float) -> bool:
        return bool(
            self._call(
                {"op": "lease", "table": table, "key": key, "ttl_s": ttl_s}
            )["acquired"]
        )

    def release_lease(self, table: str, key: str) -> None:
        self._call({"op": "unlease", "table": table, "key": key})

    def ping(self) -> dict:
        """The server's liveness/protocol document."""
        return self._call({"op": "ping"})

    def stats(self) -> dict:
        """The server's counters/tables document (fleet observability)."""
        return self._call({"op": "stats"})

    def shutdown(self) -> dict:
        """Ask the server to stop (never retried — not idempotent)."""
        return self._call({"op": "shutdown"})

    def close(self) -> None:
        self._reset()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteStore({self._endpoint!r})"
