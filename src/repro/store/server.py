"""The fleet-shared blob-store server: ``store://`` over NDJSON.

``repro store-serve`` keeps one :class:`~repro.store.base.BlobStore`
(an in-memory quota-enforcing :class:`~repro.store.memory.MemoryStore`
by default, or the sqlite store with ``--cache-dir`` for durability)
behind a line-delimited JSON TCP front end, so an orchestrated worker
fleet shares cache warmth without a common filesystem.  Clients connect
through the ``store://host:port`` scheme
(:class:`~repro.store.remote.RemoteStore`).

Wire protocol — one JSON document per line, one response line per
request, connections persist across requests (the shape of
:mod:`repro.api.server`'s NDJSON front end, minus the engine)::

    {"id": 1, "op": "ping"}
    {"id": 2, "op": "get",     "table": "verdicts", "key": "<fp>"}
    {"id": 3, "op": "put",     "table": "verdicts", "key": "<fp>", "payload": "1"}
    {"id": 4, "op": "count",   "table": "verdicts"}
    {"id": 5, "op": "lease",   "table": "verdicts", "key": "<fp>", "ttl_s": 30}
    {"id": 6, "op": "unlease", "table": "verdicts", "key": "<fp>"}
    {"id": 7, "op": "stats"}
    {"op": "shutdown"}

Responses mirror the api envelope: ``{"id": 1, "ok": true, "result":
{...}}`` on success, ``{"ok": false, "error": {"kind": ..., "message":
...}}`` on failure (kinds from the :mod:`repro.api.errors` taxonomy —
an unknown table or op is ``bad-request``, oversized or non-JSON lines
are ``format``), and the connection survives errors.

``lease``/``unlease`` expose the backing store's single-flight surface,
so the *server* arbitrates which worker computes a missing fingerprint;
``stats`` reports the backing counters (hits/misses/writes, quota
evictions and TTL expirations, lease grants/denials) plus per-table row
counts and the ops served — the fleet-warmth observability endpoint.

Store operations are dict/sqlite-fast, so they run inline on the event
loop (no executor hand-off per request — latency is the product here;
an engine chase never runs in this process).
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from ..api.errors import ApiError, to_api_error
from .base import BlobStore

__all__ = [
    "STORE_PROTOCOL_VERSION",
    "BlobStoreServer",
    "background_store_server",
    "serve_store",
]

#: Bump when the store wire protocol changes incompatibly; ``ping``
#: carries it so clients can refuse to speak to an incompatible server.
STORE_PROTOCOL_VERSION = 1

_MAX_REQUEST_BYTES = 1 << 20


class BlobStoreServer:
    """Serves one :class:`BlobStore` over NDJSON TCP until shutdown."""

    def __init__(
        self, store: BlobStore, *, max_request_bytes: int = _MAX_REQUEST_BYTES
    ) -> None:
        self.store = store
        self.max_request_bytes = max_request_bytes
        self.requests_served = 0
        self._shutdown: asyncio.Event | None = None
        self._conn_writers: set[asyncio.StreamWriter] = set()

    # ------------------------------------------------------------------
    # Request handling (synchronous — store ops are fast).
    # ------------------------------------------------------------------

    def _result(self, doc: Mapping[str, Any]) -> dict:
        op = doc.get("op")
        if op == "ping":
            return {
                "pong": True,
                "protocol": STORE_PROTOCOL_VERSION,
                "backend": type(self.store).__name__,
                "requests_served": self.requests_served,
            }
        if op == "stats":
            counters = (
                self.store.counters()
                if hasattr(self.store, "counters")
                else {}
            )
            tables = {
                table: self.store.count(table) for table in ("verdicts", "covers")
            }
            return {
                "backend": type(self.store).__name__,
                "counters": counters,
                "tables": tables,
                "requests_served": self.requests_served,
                "supports_leases": bool(self.store.supports_leases),
            }
        if op == "shutdown":
            assert self._shutdown is not None
            self._shutdown.set()
            return {"stopping": True}

        table = doc.get("table")
        if not isinstance(table, str):
            raise ApiError("bad-request", f"op {op!r} needs a string 'table'")
        if op == "count":
            return {"count": self.store.count(table)}

        key = doc.get("key")
        if not isinstance(key, str):
            raise ApiError("bad-request", f"op {op!r} needs a string 'key'")
        if op == "get":
            return {"payload": self.store.get(table, key)}
        if op == "put":
            payload = doc.get("payload")
            if not isinstance(payload, str):
                raise ApiError("bad-request", "op 'put' needs a string 'payload'")
            self.store.put(table, key, payload)
            return {"stored": True}
        if op == "lease":
            ttl_s = doc.get("ttl_s", 30.0)
            if not isinstance(ttl_s, (int, float)) or ttl_s <= 0:
                raise ApiError(
                    "bad-request", f"op 'lease' needs a positive 'ttl_s', got {ttl_s!r}"
                )
            return {"acquired": self.store.acquire_lease(table, key, float(ttl_s))}
        if op == "unlease":
            self.store.release_lease(table, key)
            return {"released": True}
        raise ApiError(
            "bad-request",
            f"unknown store op {op!r}; ops are ping, get, put, count, "
            "lease, unlease, stats, shutdown",
        )

    def handle_doc(self, doc: Any) -> dict:
        """Answer one wire document; never raises (errors become documents)."""
        envelope: dict[str, Any] = {}
        if isinstance(doc, Mapping) and "id" in doc:
            envelope["id"] = doc["id"]
        try:
            if not isinstance(doc, Mapping):
                raise ApiError("bad-request", "request must be a JSON object")
            self.requests_served += 1
            envelope["ok"] = True
            envelope["result"] = self._result(doc)
        except Exception as exc:  # noqa: BLE001 - the wire boundary
            # An unknown table surfaces from the backing store as
            # ValueError; classify it as the caller's fault, not ours.
            if isinstance(exc, ValueError) and not isinstance(exc, ApiError):
                exc = ApiError("bad-request", str(exc))
            error = to_api_error(exc)
            envelope["ok"] = False
            envelope["error"] = {"kind": error.kind, "message": error.message}
        return envelope

    # ------------------------------------------------------------------
    # The NDJSON front end.
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_writers.add(writer)
        try:
            while not self._shutdown.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    response = self.handle_doc(None)
                    response["error"] = {
                        "kind": "format",
                        "message": f"request line over {self.max_request_bytes} bytes",
                    }
                    writer.write((json.dumps(response) + "\n").encode())
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as exc:
                    response = {
                        "ok": False,
                        "error": {"kind": "format", "message": f"bad JSON: {exc}"},
                    }
                else:
                    response = self.handle_doc(doc)
                writer.write((json.dumps(response) + "\n").encode())
                await writer.drain()
        except ConnectionError:  # pragma: no cover - client vanished
            pass
        finally:
            self._conn_writers.discard(writer)
            writer.close()

    async def serve(
        self, host: str = "127.0.0.1", port: int = 0, *, announce=None
    ) -> None:
        """Listen until a ``shutdown`` op (or cancellation)."""
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, host, port, limit=self.max_request_bytes
        )
        bound = server.sockets[0].getsockname()
        if announce is not None:
            announce(bound)
        else:
            print(
                f"listening on {bound[0]}:{bound[1]}", file=sys.stderr, flush=True
            )
        async with server:
            await self._shutdown.wait()
        # Sever established connections so blocked clients see EOF (a
        # typed `unavailable`) instead of hanging until their timeout.
        for writer in list(self._conn_writers):
            writer.close()


def serve_store(
    store: BlobStore, host: str = "127.0.0.1", port: int = 0
) -> None:
    """Run the blob-store server to completion (``repro store-serve``)."""
    try:
        asyncio.run(BlobStoreServer(store).serve(host, port))
    finally:
        store.close()


@contextmanager
def background_store_server(store: BlobStore, *, host: str = "127.0.0.1") -> Iterator[str]:
    """Run a blob-store server on a daemon thread; yields its store URL.

    The test/docs twin of :func:`repro.api.server.background_server`:
    tears the server down via its own ``shutdown`` op on exit.
    """
    bound: list = []
    ready = threading.Event()
    server = BlobStoreServer(store)

    def run() -> None:
        def announce(address) -> None:
            bound.append(address)
            ready.set()

        try:
            asyncio.run(server.serve(host, 0, announce=announce))
        finally:
            ready.set()  # never leave the opener hanging on a crash

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    ready.wait(10.0)
    if not bound:
        raise RuntimeError("blob-store server failed to start")
    url = f"store://{bound[0][0]}:{bound[0][1]}"
    try:
        yield url
    finally:
        from .remote import RemoteStore

        try:
            with RemoteStore(bound[0][0], bound[0][1], timeout=5.0) as remote:
                remote.shutdown()
        except Exception:  # pragma: no cover - already down
            pass
        thread.join(10.0)
