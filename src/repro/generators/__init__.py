"""The Section 5 workload generators (schemas, CFDs, SPC views, instances)."""

from .cfd_gen import CONSTANT_RANGE, random_cfd, random_cfds
from .instance_gen import random_satisfying_instance
from .schema_gen import random_schema
from .view_gen import random_spc_view

__all__ = [
    "CONSTANT_RANGE",
    "random_cfd",
    "random_cfds",
    "random_satisfying_instance",
    "random_schema",
    "random_spc_view",
]
