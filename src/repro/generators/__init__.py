"""The Section 5 workload generators (schemas, CFDs, SPC views, instances).

Every ``random_*`` function takes either an explicit ``rng=`` or a
``seed=`` keyword (see :mod:`repro.generators.seeding`); the fuzzer in
:mod:`repro.fuzz` uses ``case_rng`` to derive one private stream per
generated case.
"""

from .cfd_gen import CONSTANT_RANGE, random_cfd, random_cfds
from .instance_gen import random_satisfying_instance
from .schema_gen import random_schema
from .seeding import case_rng, resolve_rng
from .view_gen import random_spc_view, random_spcu_view

__all__ = [
    "CONSTANT_RANGE",
    "case_rng",
    "random_cfd",
    "random_cfds",
    "random_satisfying_instance",
    "random_schema",
    "random_spc_view",
    "random_spcu_view",
    "resolve_rng",
]
