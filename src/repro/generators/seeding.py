"""Reproducible randomness for the workload generators.

Every ``random_*`` function accepts either an explicit
:class:`random.Random` (the original calling convention) or a ``seed=``
keyword; the two are mutually exclusive so a call site can never be
*accidentally* reproducible from one and perturbed by the other.  The
property-based fuzzer (:mod:`repro.fuzz`) relies on ``seed=`` to derive
each case from a ``(run seed, case index)`` pair without touching the
global :mod:`random` state.
"""

from __future__ import annotations

import random

__all__ = ["case_rng", "resolve_rng"]

#: Mixing multiplier for (seed, index) -> stream seed derivation; a large
#: odd constant so neighboring run seeds never collide on small indices.
_STREAM_STRIDE = 1_000_003


def resolve_rng(rng: random.Random | None, seed: int | None) -> random.Random:
    """The generator's randomness source: ``rng`` XOR ``seed``, never both.

    Passing neither is rejected too — silent fallback to global
    :mod:`random` state would make generated workloads irreproducible,
    which is exactly the failure mode the fuzzer's replay files exist to
    prevent.
    """
    if rng is not None and seed is not None:
        raise ValueError("pass either rng= or seed=, not both")
    if rng is None:
        if seed is None:
            raise ValueError("pass rng= or seed= (reproducibility contract)")
        return random.Random(seed)
    return rng


def case_rng(seed: int, index: int) -> random.Random:
    """A private random stream for case *index* of a run seeded *seed*."""
    return random.Random(seed * _STREAM_STRIDE + index)
