"""Random source schemas (Section 5 experimental setting).

The paper: "We considered source relational schemas R consisting of at
least 10 relations, each with 10 to 20 attributes."  Attributes get
infinite (string) domains by default — the cover algorithm's setting —
with an option to sprinkle finite-domain attributes for general-setting
experiments.
"""

from __future__ import annotations

import random

from ..core.domains import STRING, finite
from ..core.schema import Attribute, DatabaseSchema, RelationSchema
from .seeding import resolve_rng


def random_schema(
    rng: random.Random | None = None,
    num_relations: int = 10,
    min_attributes: int = 10,
    max_attributes: int = 20,
    finite_domain_fraction: float = 0.0,
    finite_domain_size: int = 2,
    *,
    seed: int | None = None,
) -> DatabaseSchema:
    """A random database schema.

    ``finite_domain_fraction`` of the attributes (rounded down per
    relation) draw from a fresh finite domain of ``finite_domain_size``
    values; the default 0.0 gives the paper's infinite-domain setting.
    ``seed=`` is the rng-free spelling (see
    :func:`repro.generators.seeding.resolve_rng`).
    """
    rng = resolve_rng(rng, seed)
    if num_relations < 1:
        raise ValueError("need at least one relation")
    if not 0 <= finite_domain_fraction <= 1:
        raise ValueError("finite_domain_fraction must be in [0, 1]")
    relations = []
    for r in range(1, num_relations + 1):
        arity = rng.randint(min_attributes, max_attributes)
        num_finite = int(arity * finite_domain_fraction)
        attributes = []
        for a in range(1, arity + 1):
            name = f"A{a}"
            if a <= num_finite:
                domain = finite(
                    f"enum{finite_domain_size}",
                    [f"e{v}" for v in range(finite_domain_size)],
                )
            else:
                domain = STRING
            attributes.append(Attribute(name, domain))
        relations.append(RelationSchema(f"S{r}", attributes))
    return DatabaseSchema(relations)
