"""The CFD generator of Section 5.

"Given a relational schema R and two natural numbers m and n, the CFD
generator randomly produces a set Sigma consisting of m source CFDs
defined on R, such that the average number of CFDs on each relation in R
is n.  The generator also takes another two parameters LHS and var% as
input: LHS is the maximum number of attributes in each CFD generated, and
var% is the percentage of the attributes which are filled with '_' in the
pattern tuple, while the rest of the attributes draw random values from
their corresponding domains."

The experiments used ``|Sigma|`` from 200 to 2000, LHS from 3 to 9 and
var% from 40% to 50%; pattern constants come from the fixed range
``[1, 100000]`` so that constraints can interact.
"""

from __future__ import annotations

import random
from typing import Any

from ..core.cfd import CFD
from ..core.domains import Domain
from ..core.schema import DatabaseSchema, RelationSchema
from ..core.values import WILDCARD
from .seeding import resolve_rng

#: The constant pool of the paper's generators.
CONSTANT_RANGE = (1, 100000)


def _random_constant(rng: random.Random, domain: Domain) -> Any:
    if domain.is_finite:
        return rng.choice(list(domain))
    return rng.randint(*CONSTANT_RANGE)


def random_cfd(
    rng: random.Random | None = None,
    relation: RelationSchema | None = None,
    max_lhs: int = 9,
    min_lhs: int = 3,
    var_pct: float = 0.4,
    constant_lhs: bool = False,
    *,
    seed: int | None = None,
) -> CFD:
    """One random normal-form CFD on *relation*.

    The LHS size is uniform in ``[min_lhs, max_lhs]`` (clamped to the
    arity minus one so an RHS attribute remains); every pattern position
    is the wildcard with probability ``var_pct`` and a random domain
    constant otherwise.

    ``constant_lhs=True`` is the degenerate corner the fuzzer needs
    first-class: every LHS position is a constant (var% applies to the
    RHS position only), so the CFD fires on exactly one pattern row —
    the shape that exercises coupling and constant-conflict handling the
    paper's 40-50% var% setting essentially never generates.
    """
    rng = resolve_rng(rng, seed)
    if relation is None:
        raise TypeError("random_cfd needs a relation")
    names = list(relation.attribute_names)
    upper = min(max_lhs, len(names) - 1)
    lower = min(min_lhs, upper)
    lhs_size = rng.randint(lower, upper)
    chosen = rng.sample(names, lhs_size + 1)
    lhs_attrs, rhs_attr = chosen[:-1], chosen[-1]

    if constant_lhs:
        lhs = {
            a: _random_constant(rng, relation.domain_of(a)) for a in lhs_attrs
        }
        rhs_value = (
            WILDCARD
            if rng.random() < var_pct
            else _random_constant(rng, relation.domain_of(rhs_attr))
        )
        return CFD(relation.name, lhs, {rhs_attr: rhs_value})

    # "var% of the attributes are filled with '_'" — a deterministic
    # fraction of the pattern positions, not an independent coin flip per
    # position.  (Independent flips occasionally produce all-wildcard-LHS
    # constant-RHS CFDs; a handful of those on the same attribute makes
    # the whole source set inconsistent, which the paper's experiments
    # clearly never hit.)
    positions = lhs_attrs + [rhs_attr]
    num_wild = round(var_pct * len(positions))
    num_wild = min(num_wild, len(positions) - 1)
    wild = set(rng.sample(range(len(positions)), num_wild))
    rhs_index = len(positions) - 1
    if len(wild - {rhs_index}) >= len(lhs_attrs) and rhs_index not in wild:
        # All LHS positions came out wildcard with a constant RHS: that is
        # a *global* constant, and a few of those on one attribute make
        # Sigma inconsistent.  Move one wildcard to the RHS instead.
        wild.discard(min(wild))
        wild.add(rhs_index)

    def entry(index: int, attr: str):
        if index in wild:
            return WILDCARD
        return _random_constant(rng, relation.domain_of(attr))

    lhs = {a: entry(i, a) for i, a in enumerate(lhs_attrs)}
    rhs = {rhs_attr: entry(len(positions) - 1, rhs_attr)}
    return CFD(relation.name, lhs, rhs)


def random_cfds(
    rng: random.Random | None = None,
    schema: DatabaseSchema | None = None,
    count: int = 0,
    max_lhs: int = 9,
    min_lhs: int = 3,
    var_pct: float = 0.4,
    constant_lhs: bool = False,
    *,
    seed: int | None = None,
) -> list[CFD]:
    """``count`` random CFDs spread evenly over the schema's relations.

    Round-robin assignment makes the average number of CFDs per relation
    ``count / |R|`` — the generator's ``n`` parameter.
    """
    rng = resolve_rng(rng, seed)
    if schema is None:
        raise TypeError("random_cfds needs a schema")
    relations = list(schema)
    out: list[CFD] = []
    for i in range(count):
        relation = relations[i % len(relations)]
        out.append(
            random_cfd(
                rng,
                relation,
                max_lhs=max_lhs,
                min_lhs=min_lhs,
                var_pct=var_pct,
                constant_lhs=constant_lhs,
            )
        )
    return out
