"""Random database instances satisfying a set of CFDs.

The paper's algorithm is schema-level (it never touches instances), but
the integration tests need concrete databases to *validate* propagation
empirically: generate ``D |= Sigma``, evaluate ``V(D)``, and check that
every CFD in the computed cover holds on the view.

Generation is repair-based: draw random rows, then run a fixpoint that
rewrites RHS values until every CFD is satisfied (pair violations copy the
first tuple's value, constant violations write the pattern constant).
The loop terminates because each pass strictly reduces the number of
violations on a finite instance or performs a full rewrite sweep; a
safety bound guards pathological inputs (an inconsistent ``Sigma`` can
make repair impossible — the generator then raises).
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from ..algebra.instance import DatabaseInstance
from ..core.cfd import CFD
from ..core.domains import Domain
from ..core.fd import FD
from ..core.schema import DatabaseSchema
from ..core.values import is_const, value_matches
from .seeding import resolve_rng


def _random_value(rng: random.Random, domain: Domain, pool: int) -> Any:
    if domain.is_finite:
        return rng.choice(list(domain))
    return f"v{rng.randint(1, pool)}"


def random_satisfying_instance(
    rng: random.Random | None = None,
    schema: DatabaseSchema | None = None,
    sigma: Iterable[CFD | FD] = (),
    rows_per_relation: int = 20,
    value_pool: int = 8,
    max_repair_rounds: int = 200,
    *,
    seed: int | None = None,
) -> DatabaseInstance:
    """A random instance of *schema* satisfying every dependency in *sigma*.

    ``value_pool`` controls collision frequency: a small pool makes CFD
    premises fire often, which is what makes the resulting instances
    interesting test inputs.
    """
    rng = resolve_rng(rng, seed)
    if schema is None:
        raise TypeError("random_satisfying_instance needs a schema")
    normalized: list[CFD] = []
    for dep in sigma:
        if isinstance(dep, FD):
            dep = CFD.from_fd(dep)
        normalized.extend(dep.normalize())

    rows_by_relation: dict[str, list[dict[str, Any]]] = {}
    for relation in schema:
        rows = []
        for _ in range(rows_per_relation):
            rows.append(
                {
                    a.name: _random_value(rng, a.domain, value_pool)
                    for a in relation.attributes
                }
            )
        rows_by_relation[relation.name] = rows

    for _ in range(max_repair_rounds):
        dirty = False
        for phi in normalized:
            rows = rows_by_relation.get(phi.relation, [])
            if _repair(phi, rows):
                dirty = True
        if not dirty:
            break
    else:
        raise ValueError(
            "repair did not converge; sigma is likely inconsistent"
        )

    return DatabaseInstance(schema, rows_by_relation)


def _repair(phi: CFD, rows: Sequence[dict[str, Any]]) -> bool:
    """One repair pass for a normal-form CFD; True when a row changed."""
    changed = False
    if phi.is_equality:
        a = phi.lhs[0][0]
        b = phi.rhs[0][0]
        for row in rows:
            if row[a] != row[b]:
                row[b] = row[a]
                changed = True
        return changed

    rhs_attr = phi.rhs_attr
    rhs_entry = phi.rhs_entry
    groups: dict[tuple[Any, ...], dict[str, Any]] = {}
    for row in rows:
        if not all(value_matches(row[n], e) for n, e in phi.lhs):
            continue
        if is_const(rhs_entry) and row[rhs_attr] != rhs_entry.value:
            row[rhs_attr] = rhs_entry.value
            changed = True
        key = tuple(row[n] for n, _ in phi.lhs)
        anchor = groups.get(key)
        if anchor is None:
            groups[key] = row
        elif row[rhs_attr] != anchor[rhs_attr]:
            row[rhs_attr] = anchor[rhs_attr]
            changed = True
    return changed
