"""The SPC view generator of Section 5.

"Given a source schema R and three numbers |Y|, |F| and |Ec|, the view
generator randomly produces an SPC view pi_Y(sigma_F(Ec)) defined on R
such that the set Y consists of |Y| projection attributes, the selection
condition F is a conjunction of |F| domain constraints of the form A = B
and A = 'a', and Ec is the Cartesian product of |Ec| relations.  Here each
constant a is randomly picked from a fixed range [1, 100000] such that the
domain constraints may interact with each other."

The experiments used |Y| in 5..50, |F| in 1..10 and |Ec| in 2..11.
"""

from __future__ import annotations

import random

from ..algebra.ops import AttrEq, ConstEq, SelectionAtom
from ..algebra.spc import RelationAtom, SPCView
from ..algebra.spcu import SPCUView
from ..core.schema import DatabaseSchema
from .cfd_gen import CONSTANT_RANGE
from .seeding import resolve_rng


def random_spc_view(
    rng: random.Random | None = None,
    schema: DatabaseSchema | None = None,
    num_projected: int = 25,
    num_selections: int = 10,
    num_atoms: int = 4,
    name: str = "V",
    attr_eq_probability: float = 0.5,
    block_projection: bool = True,
    *,
    seed: int | None = None,
) -> SPCView:
    """One random SPC view in normal form.

    Relations for ``Ec`` are drawn with replacement; each atom renames its
    source attributes to ``t{j}.{attr}``.  Selection atoms are ``A = B``
    with probability ``attr_eq_probability`` (between attributes of the
    same domain) and ``A = 'a'`` otherwise.

    ``Y`` selection has two modes.  ``block_projection=True`` (default)
    takes contiguous per-atom attribute blocks in round-robin order until
    ``num_projected`` attributes are chosen, so whole relations tend to be
    visible through the view — under a uniform ``Y`` essentially no source
    CFD keeps all its attributes projected and covers collapse to a
    handful, which contradicts the cover cardinalities the paper reports
    (Figures 5(b)-8(b)).  ``block_projection=False`` gives the uniform
    sample for comparison.

    ``num_projected=0`` is a supported degenerate corner: the view
    projects *no* attributes (its schema has arity zero), which exercises
    the empty-``Y`` handling the paper's 5..50 range never touches.
    """
    rng = resolve_rng(rng, seed)
    if schema is None:
        raise TypeError("random_spc_view needs a schema")
    relations = list(schema)
    atoms: list[RelationAtom] = []
    view_attrs: list[str] = []
    domains = {}
    for j in range(num_atoms):
        source = rng.choice(relations)
        mapping = {a.name: f"t{j}.{a.name}" for a in source.attributes}
        atoms.append(RelationAtom(source.name, mapping))
        for a in source.attributes:
            view_attrs.append(mapping[a.name])
            domains[mapping[a.name]] = a.domain

    # Track the classes/keys the selection induces so the generated view
    # is never *syntactically* contradictory (two distinct constants on
    # one attribute class would make every view empty — the paper's
    # experiments clearly run on non-degenerate views).  Interaction with
    # the source CFDs is still possible and intended.
    parent: dict[str, str] = {a: a for a in view_attrs}

    def find(a: str) -> str:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    keys: dict[str, int | str] = {}

    selection: list[SelectionAtom] = []
    for _ in range(num_selections):
        for _attempt in range(20):
            if rng.random() < attr_eq_probability and len(view_attrs) >= 2:
                left, right = rng.sample(view_attrs, 2)
                if domains[left] != domains[right]:
                    continue
                ra, rb = find(left), find(right)
                if ra != rb and ra in keys and rb in keys and keys[ra] != keys[rb]:
                    continue
                if ra != rb:
                    parent[rb] = ra
                    if rb in keys:
                        keys[ra] = keys.pop(rb)
                selection.append(AttrEq(left, right))
                break
            attr = rng.choice(view_attrs)
            domain = domains[attr]
            if domain.is_finite:
                value = rng.choice(list(domain))
            else:
                value = rng.randint(*CONSTANT_RANGE)
            root = find(attr)
            if root in keys and keys[root] != value:
                continue
            keys[root] = value
            selection.append(ConstEq(attr, value))
            break

    count = min(num_projected, len(view_attrs))
    if block_projection:
        projection = _block_projection(rng, atoms, count)
    else:
        projection = sorted(rng.sample(view_attrs, count))
    return SPCView(name, schema, atoms, selection, projection)


def random_spcu_view(
    rng: random.Random | None = None,
    schema: DatabaseSchema | None = None,
    num_branches: int = 2,
    num_projected: int = 25,
    num_selections: int = 10,
    num_atoms: int = 4,
    name: str = "U",
    attr_eq_probability: float = 0.5,
    block_projection: bool = True,
    identical_branches: bool = False,
    *,
    seed: int | None = None,
) -> SPCUView:
    """A random SPCU view ``V1 U ... U Vk`` of union-compatible branches.

    Each branch is drawn by :func:`random_spc_view`; the branches are then
    made union-compatible by renaming every branch's projected attributes
    to the shared canonical names ``c0, c1, ...`` (truncated to the
    shortest branch projection, since relation arities vary).  Two
    degenerate corners are first-class: ``num_branches=1`` (a union that
    is really an SPC view) and ``identical_branches=True`` (k copies of
    one branch, so ``V U V U ... U V = V`` must hold through propagation).
    """
    rng = resolve_rng(rng, seed)
    if schema is None:
        raise TypeError("random_spcu_view needs a schema")
    if num_branches < 1:
        raise ValueError("need at least one branch")

    def one_branch(index: int) -> SPCView:
        return random_spc_view(
            rng,
            schema,
            num_projected=num_projected,
            num_selections=num_selections,
            num_atoms=num_atoms,
            name=name,
            attr_eq_probability=attr_eq_probability,
            block_projection=block_projection,
        )

    if identical_branches:
        branches = [one_branch(0)] * num_branches
    else:
        branches = [one_branch(i) for i in range(num_branches)]
    arity = min(len(b.projection) for b in branches)
    branches = [_with_canonical_projection(b, arity) for b in branches]
    return SPCUView(name, branches)


def _with_canonical_projection(view: SPCView, arity: int) -> SPCView:
    """Rename *view*'s first ``arity`` projected attributes to ``c{i}``.

    Union compatibility is positional: every branch must project the same
    attribute-name list.  Non-projected attributes keep their qualified
    ``t{j}.{attr}`` names, which cannot collide with the canonical names.
    """
    kept = view.projection[:arity]
    rename = {old: f"c{i}" for i, old in enumerate(kept)}

    def rn(attr: str) -> str:
        return rename.get(attr, attr)

    atoms = [
        RelationAtom(atom.source, {src: rn(v) for src, v in atom.mapping})
        for atom in view.atoms
    ]
    selection = [
        AttrEq(rn(a.left), rn(a.right))
        if isinstance(a, AttrEq)
        else ConstEq(rn(a.attr), a.value)
        for a in view.selection
    ]
    return SPCView(
        view.name,
        view.source_schema,
        atoms,
        selection,
        [f"c{i}" for i in range(arity)],
    )


def _block_projection(
    rng: random.Random, atoms: list[RelationAtom], count: int
) -> list[str]:
    """Contiguous per-atom attribute blocks, atoms visited round-robin.

    Atom order is shuffled once; attributes are then taken one relation at
    a time in schema order, so a large enough ``count`` exposes whole
    relations through the view.
    """
    order = list(range(len(atoms)))
    rng.shuffle(order)
    projection: list[str] = []
    for j in order:
        for view_name in atoms[j].view_attributes:
            if len(projection) == count:
                return sorted(projection)
            projection.append(view_name)
    return sorted(projection)
